"""Trace-driven latency attribution: where did the p99 go?

Spans say *that* a call took 1.4ms; this module says *where*.  Each
invoke span's simulated time is decomposed into named **segments** by
walking its subtree:

* a span's **self time** (duration minus the durations of its recorded
  children) is attributed to the segment of its category — ``invoke``
  self time is stub/marshal work, ``door`` self time is kernel door
  traversal, ``fabric`` is wire time, ``handler`` is server-side
  delivery, ``skeleton`` is dispatch, ``netserver`` is boundary
  translation;
* **events that carry an amount** pull known waits out of the enclosing
  span's self time into their own segment: ``admission.queued``'s
  ``wait_us`` becomes ``admission_wait``, ``reconnect.retry`` /
  ``reconnect.busy_backoff`` / ``retry.backoff``'s ``backoff_us``
  become ``retry_backoff``, and ``chaos.link_delay``'s ``delay_us``
  becomes ``chaos_delay``.

Calls are grouped two ways — per ``(subcontract, op)`` and per door
(the first ``door``-category child's name) — and each group reports
exact order-statistic quantiles over its call durations plus a
**waterfall**: the mean segment decomposition over all calls and over
the calls at or above the group p99 ("where the p99 went").

The analyzer is offline and deterministic: it consumes span records
(live :class:`~repro.obs.tracer.Span` objects or the JSONL dict form),
never touches the clock, tolerates orphan spans (parents lost to
``TraceRing`` overflow become their own attribution roots and are
counted in the report), and renders byte-identical text/JSON for
identical span sets regardless of input order.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Sequence

from repro.obs.export import _as_records

__all__ = [
    "SEGMENT_FOR_CATEGORY",
    "EVENT_SEGMENTS",
    "attribute",
    "attribution_report",
    "render_attribution",
    "attribution_json",
]

#: span category -> segment its *self* time is attributed to
SEGMENT_FOR_CATEGORY = {
    "invoke": "stub",
    "door": "door",
    "fabric": "wire",
    "netserver": "netserver",
    "handler": "handler",
    "skeleton": "dispatch",
}

#: event name -> (segment, detail key carrying the simulated amount)
EVENT_SEGMENTS = {
    "admission.queued": ("admission_wait", "wait_us"),
    "retry.backoff": ("retry_backoff", "backoff_us"),
    "reconnect.retry": ("retry_backoff", "backoff_us"),
    "reconnect.busy_backoff": ("retry_backoff", "backoff_us"),
    "chaos.link_delay": ("chaos_delay", "delay_us"),
    "saga.journal": ("journal_write", "write_us"),
}

#: catch-all for time a span spent that no child or event explains
#: (including children lost to ring overflow)
_OTHER = "other"


def _event_segments(rec: dict) -> dict[str, float]:
    """Amount-carrying event time on one span, clamped to its duration."""
    out: dict[str, float] = {}
    budget = rec["duration_us"]
    for evt in rec.get("events", ()):
        known = EVENT_SEGMENTS.get(evt.get("name"))
        if known is None:
            continue
        segment, key = known
        amount = evt.get(key)
        if isinstance(amount, (int, float)) and amount > 0.0:
            amount = min(float(amount), budget)
            out[segment] = out.get(segment, 0.0) + amount
    total = sum(out.values())
    if total > budget > 0.0:
        # Events claim more than the span lasted (rounded details);
        # scale down proportionally so segments never exceed the span.
        scale = budget / total
        out = {segment: amount * scale for segment, amount in out.items()}
    return out


def attribute(spans: "Sequence | Sequence[dict]") -> dict:
    """Decompose every invoke span's time into named segments.

    Returns ``{"calls": [...], "orphans": int, "spans": int}`` where
    each call dict carries ``trace_id``/``span_id``, grouping keys
    (``subcontract``, ``op``, ``door``), ``duration_us``, ``status``
    and a ``segments`` mapping whose values sum to ``duration_us``.
    """
    records = _as_records(spans)
    by_id: dict[tuple[int, int], dict] = {}
    for rec in records:
        by_id[(rec["trace_id"], rec["span_id"])] = rec
    children: dict[tuple[int, int], list[dict]] = defaultdict(list)
    orphans = 0
    for rec in records:
        parent = (rec["trace_id"], rec["parent_id"])
        if rec["parent_id"] and parent in by_id:
            children[parent].append(rec)
        elif rec["parent_id"]:
            orphans += 1
    for recs in children.values():
        recs.sort(key=lambda r: (r["start_sim_us"], r["span_id"]))

    def _self_us(rec: dict) -> float:
        kids = children.get((rec["trace_id"], rec["span_id"]), ())
        own = rec["duration_us"] - sum(k["duration_us"] for k in kids)
        return own if own > 0.0 else 0.0

    calls = []
    for rec in records:
        if rec["category"] != "invoke":
            continue
        segments: dict[str, float] = {}
        door_name = None
        # Iterative subtree walk from this invoke, cycle-safe.
        stack = [rec]
        seen: set[tuple[int, int]] = set()
        while stack:
            node = stack.pop()
            node_id = (node["trace_id"], node["span_id"])
            if node_id in seen:
                continue
            seen.add(node_id)
            if (
                door_name is None
                and node is not rec
                and node["category"] == "door"
            ):
                door_name = node["name"]
            events = _event_segments(node)
            own = _self_us(node)
            explained = sum(events.values())
            if explained > own:
                # The event waits span child time too (e.g. a backoff
                # around a whole nested call); keep the event segments,
                # zero the remaining self share.
                own = 0.0
            else:
                own -= explained
            for segment, amount in events.items():
                segments[segment] = segments.get(segment, 0.0) + amount
            segment = SEGMENT_FOR_CATEGORY.get(node["category"], _OTHER)
            if own > 0.0:
                segments[segment] = segments.get(segment, 0.0) + own
            stack.extend(children.get(node_id, ()))
        explained = sum(segments.values())
        unexplained = rec["duration_us"] - explained
        if unexplained > 1e-9:
            segments[_OTHER] = segments.get(_OTHER, 0.0) + unexplained
        elif unexplained < 0.0 and explained > 0.0:
            # Children that overlap in sim time (parallel fabric legs,
            # door handoffs measured on both sides) double-count; scale
            # the waterfall back so segments always sum to the call.
            scale = rec["duration_us"] / explained
            for segment in segments:
                segments[segment] *= scale
        calls.append(
            {
                "trace_id": rec["trace_id"],
                "span_id": rec["span_id"],
                "subcontract": rec.get("subcontract") or "unknown",
                "op": rec["name"],
                "door": door_name or "(local)",
                "duration_us": rec["duration_us"],
                "status": rec["status"],
                "segments": segments,
            }
        )
    calls.sort(key=lambda c: (c["trace_id"], c["span_id"]))
    return {"calls": calls, "orphans": orphans, "spans": len(records)}


def _quantile(sorted_values: list[float], q: float) -> float:
    """Exact nearest-rank quantile over a sorted list (deterministic)."""
    if not sorted_values:
        return 0.0
    index = round(q * (len(sorted_values) - 1))
    return sorted_values[index]


def _aggregate(calls: list[dict], key: str, kind: str) -> list[dict]:
    groups: dict[str | tuple, list[dict]] = defaultdict(list)
    for call in calls:
        if key == "op":
            groups[(call["subcontract"], call["op"])].append(call)
        else:
            groups[call[key]].append(call)
    out = []
    for group_key in sorted(groups, key=str):
        members = groups[group_key]
        durations = sorted(c["duration_us"] for c in members)
        p99 = _quantile(durations, 0.99)
        tail = [c for c in members if c["duration_us"] >= p99] or members

        def _mean_segments(subset: list[dict]) -> dict[str, float]:
            sums: dict[str, float] = {}
            for call in subset:
                for segment, amount in call["segments"].items():
                    sums[segment] = sums.get(segment, 0.0) + amount
            return {
                segment: round(total / len(subset), 3)
                for segment, total in sorted(sums.items())
            }

        label = (
            f"{group_key[0]}.{group_key[1]}" if key == "op" else str(group_key)
        )
        out.append(
            {
                "kind": kind,
                "key": label,
                "count": len(members),
                "errors": sum(1 for c in members if c["status"] != "ok"),
                "total_us": round(sum(durations), 3),
                "p50_us": round(_quantile(durations, 0.50), 3),
                "p90_us": round(_quantile(durations, 0.90), 3),
                "p99_us": round(p99, 3),
                "max_us": round(durations[-1], 3),
                "segments": _mean_segments(members),
                "p99_segments": _mean_segments(tail),
                "p99_calls": len(tail),
            }
        )
    out.sort(key=lambda g: (-g["total_us"], g["key"]))
    return out


def attribution_report(spans: "Sequence | Sequence[dict]") -> dict:
    """The full waterfall report: per-door and per-op groups."""
    attributed = attribute(spans)
    calls = attributed["calls"]
    return {
        "calls": len(calls),
        "spans": attributed["spans"],
        "orphans": attributed["orphans"],
        "doors": _aggregate(calls, "door", "door"),
        "ops": _aggregate(calls, "op", "op"),
    }


def _render_group(group: dict, lines: list[str]) -> None:
    lines.append(
        f"  {group['key']:<40} calls={group['count']:<6} errors={group['errors']:<4}"
        f" p50={group['p50_us']:.2f}us p90={group['p90_us']:.2f}us"
        f" p99={group['p99_us']:.2f}us max={group['max_us']:.2f}us"
    )
    mean_total = sum(group["segments"].values()) or 1.0
    for segment, amount in sorted(
        group["segments"].items(), key=lambda kv: (-kv[1], kv[0])
    ):
        share = 100.0 * amount / mean_total
        lines.append(f"    {segment:<18} {amount:>12.2f}us  {share:5.1f}%  (mean)")
    tail_total = sum(group["p99_segments"].values())
    if tail_total > 0.0:
        lines.append(
            f"    -- where the p99 went ({group['p99_calls']} call(s) >= p99):"
        )
        for segment, amount in sorted(
            group["p99_segments"].items(), key=lambda kv: (-kv[1], kv[0])
        ):
            share = 100.0 * amount / tail_total
            lines.append(f"    {segment:<18} {amount:>12.2f}us  {share:5.1f}%")


def render_attribution(
    spans_or_report: "Sequence | Sequence[dict] | dict",
) -> str:
    """Deterministic text rendering of the attribution waterfall."""
    report = (
        spans_or_report
        if isinstance(spans_or_report, dict)
        else attribution_report(spans_or_report)
    )
    lines = [
        f"latency attribution: {report['calls']} call(s) over"
        f" {report['spans']} span(s), {report['orphans']} orphan(s)"
    ]
    if report["doors"]:
        lines.append("per door:")
        for group in report["doors"]:
            _render_group(group, lines)
    if report["ops"]:
        lines.append("per op:")
        for group in report["ops"]:
            _render_group(group, lines)
    return "\n".join(lines)


def attribution_json(spans_or_report: "Sequence | Sequence[dict] | dict") -> str:
    """The report as canonical (sorted-keys) JSON."""
    report = (
        spans_or_report
        if isinstance(spans_or_report, dict)
        else attribution_report(spans_or_report)
    )
    return json.dumps(report, sort_keys=True, indent=1)
