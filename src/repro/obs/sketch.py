"""DDSketch-style quantile sketch with relative-error guarantees.

PR 3's fixed-bucket :class:`~repro.obs.metrics.Histogram` deliberately
stopped short of percentiles: linear buckets cannot bound the error of
a quantile estimate, so reporting one would be a lie.  The :class:`Sketch`
closes that gap with the DDSketch construction (Masson, Rim & Lee,
VLDB'19): values are bucketed by the integer ``ceil(log_gamma(v))``
where ``gamma = (1 + alpha) / (1 - alpha)``, which guarantees every
quantile estimate is within a *relative* error of ``alpha`` of the true
value — ``p99 = 100ms ± 1ms`` at the default ``alpha = 0.01``, whether
the underlying values are microseconds or minutes.

Three properties matter for this codebase:

* **Mergeable, exactly associative.**  Buckets hold integer counts at
  integer indices, so merging two sketches is integer addition bucket
  by bucket — ``(a + b) + c`` and ``a + (b + c)`` produce *identical*
  bucket maps, and therefore bit-identical quantiles.  This is what
  lets the procfabric supervisor merge per-worker sketches over the
  wire and report fleet quantiles no worse than a single process would.
* **Deterministic.**  Quantile evaluation walks buckets in sorted index
  order; snapshots list buckets in sorted order.  The same inserts in
  any order produce the same quantiles (the float ``sum`` field is the
  one order-dependent value, and is documented as such).
* **Bounded.**  The bucket count grows with the *dynamic range* of the
  data, not its volume: values spanning 1us..100s at ``alpha = 0.01``
  need ~920 buckets, ever.  ``max_buckets`` collapses the lowest
  buckets into the zero bucket if a pathological range exceeds it.

Values must be non-negative (durations, byte counts, depths).  Values
below ``min_value`` (including zero) land in a dedicated zero bucket
and are reported as ``0.0`` by quantile evaluation.
"""

from __future__ import annotations

import math

__all__ = ["Sketch", "SketchMergeError"]


class SketchMergeError(ValueError):
    """Two sketches with different resolution parameters were merged."""


class Sketch:
    """Mergeable relative-error quantile sketch (DDSketch construction).

    ``alpha`` is the relative-error bound: ``quantile(q)`` returns a
    value within ``alpha * true_value`` of the true q-quantile of the
    inserted values.  Sketches only merge with sketches built with the
    same ``alpha`` and ``min_value``.
    """

    __slots__ = (
        "alpha",
        "min_value",
        "max_buckets",
        "_gamma",
        "_log_gamma",
        "_buckets",
        "zero_count",
        "count",
        "sum",
        "min",
        "max",
    )

    def __init__(
        self,
        alpha: float = 0.01,
        *,
        min_value: float = 1e-6,
        max_buckets: int = 4096,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha!r}")
        if min_value <= 0.0:
            raise ValueError(f"min_value must be positive, got {min_value!r}")
        self.alpha = alpha
        self.min_value = min_value
        self.max_buckets = max_buckets
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        #: bucket index -> integer count; index i covers (gamma^(i-1), gamma^i]
        self._buckets: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        #: sum of inserted values — float accumulation, the one field
        #: whose low bits depend on insert order; use for means only
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- insertion ------------------------------------------------------

    def _index(self, value: float) -> int:
        return math.ceil(math.log(value) / self._log_gamma)

    def insert(self, value: float, count: int = 1) -> None:
        """Insert ``value`` with multiplicity ``count`` (integer)."""
        if value < 0.0:
            raise ValueError(f"sketch values must be >= 0, got {value!r}")
        if count <= 0:
            raise ValueError(f"count must be positive, got {count!r}")
        self.count += count
        self.sum += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value < self.min_value:
            self.zero_count += count
            return
        index = self._index(value)
        buckets = self._buckets
        buckets[index] = buckets.get(index, 0) + count
        if len(buckets) > self.max_buckets:
            self._collapse()

    def _collapse(self) -> None:
        """Fold the lowest buckets into the zero bucket to respect
        ``max_buckets``.  Collapsing low (not high) keeps the tail
        quantiles — the ones operators page on — at full resolution."""
        order = sorted(self._buckets)
        while len(self._buckets) > self.max_buckets:
            lowest = order.pop(0)
            self.zero_count += self._buckets.pop(lowest)

    # -- evaluation -----------------------------------------------------

    def _bucket_value(self, index: int) -> float:
        # midpoint (harmonic) of (gamma^(i-1), gamma^i]: relative error
        # against any value in the bucket is <= (gamma-1)/(gamma+1) = alpha
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def quantile(self, q: float) -> float:
        """The q-quantile estimate, within ``alpha`` relative error.

        Deterministic: identical bucket contents (any insert order)
        produce bit-identical results.  Empty sketch returns ``0.0``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        rank = q * (self.count - 1)
        cumulative = self.zero_count
        if rank < cumulative:
            return 0.0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if rank < cumulative:
                return self._bucket_value(index)
        return self._bucket_value(max(self._buckets))

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Sketch(alpha={self.alpha}, count={self.count}, "
            f"buckets={len(self._buckets)})"
        )

    # -- merge / snapshot ----------------------------------------------

    def _check_compatible(self, other_alpha: float, other_min: float) -> None:
        if other_alpha != self.alpha or other_min != self.min_value:
            raise SketchMergeError(
                f"cannot merge sketches with different resolution: "
                f"alpha {self.alpha!r} vs {other_alpha!r}, "
                f"min_value {self.min_value!r} vs {other_min!r}"
            )

    def merge(self, other: "Sketch") -> "Sketch":
        """Fold ``other`` into this sketch in place; returns ``self``.

        Integer bucket counts make the merge exactly associative and
        commutative for every quantile (``sum`` is float-accumulated
        and only mean-grade).
        """
        self._check_compatible(other.alpha, other.min_value)
        buckets = self._buckets
        for index, count in other._buckets.items():
            buckets[index] = buckets.get(index, 0) + count
        self.zero_count += other.zero_count
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        if len(buckets) > self.max_buckets:
            self._collapse()
        return self

    def copy(self) -> "Sketch":
        clone = Sketch(
            self.alpha, min_value=self.min_value, max_buckets=self.max_buckets
        )
        clone._buckets = dict(self._buckets)
        clone.zero_count = self.zero_count
        clone.count = self.count
        clone.sum = self.sum
        clone.min = self.min
        clone.max = self.max
        return clone

    def snapshot(self) -> dict:
        """A JSON-safe, deterministic snapshot (buckets in sorted order)."""
        return {
            "alpha": self.alpha,
            "min_value": self.min_value,
            "zero_count": self.zero_count,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": [[index, self._buckets[index]] for index in sorted(self._buckets)],
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "Sketch":
        """Rebuild a sketch from :meth:`snapshot` output (wire format)."""
        sketch = cls(snap["alpha"], min_value=snap["min_value"])
        sketch._buckets = {int(index): int(count) for index, count in snap["buckets"]}
        sketch.zero_count = int(snap["zero_count"])
        sketch.count = int(snap["count"])
        sketch.sum = float(snap["sum"])
        sketch.min = math.inf if snap["min"] is None else float(snap["min"])
        sketch.max = -math.inf if snap["max"] is None else float(snap["max"])
        return sketch
