"""``python -m repro.obs`` — the trace toolchain CLI.

Subcommands:

* ``demo``         run the two-machine demo, print the trace tree, and
  optionally export JSONL / Chrome trace files;
* ``tree``         render a trace tree from a JSONL export;
* ``summary``      render the span-latency summary from a JSONL export;
* ``metrics``      run the demo and dump the per-subcontract metrics;
* ``attribution``  latency-attribution waterfall (from a JSONL export,
  or the demo when no path is given);
* ``slo``          run the demo with windowed telemetry and evaluate
  the default SLO policies;
* ``report``       demo + windows: attribution, SLO states, and the
  windowed snapshot in one deterministic report (the CI artifact).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.attribution import (
    attribution_json,
    attribution_report,
    render_attribution,
)
from repro.obs.demo import run_demo
from repro.obs.export import (
    load_jsonl,
    render_metrics,
    render_summary,
    render_tree,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.slo import SloEngine, SloPolicy, render_slo, slo_json


def _demo_engine() -> SloEngine:
    """The demo's SLO policies: one per demo subcontract scope."""
    return SloEngine(
        [
            SloPolicy(
                name="cluster-latency",
                scope="cluster",
                latency_p_us=5_000.0,
                fast_windows=1,
                slow_windows=8,
            ),
            SloPolicy(
                name="caching-errors",
                scope="caching",
                max_error_rate=0.01,
                fast_windows=1,
                slow_windows=8,
            ),
        ]
    )


def _cmd_demo(args: argparse.Namespace) -> int:
    env, tracer = run_demo()
    spans = tracer.spans()
    if args.jsonl:
        count = write_jsonl(spans, args.jsonl)
        print(f"wrote {count} spans to {args.jsonl}")
    if args.chrome:
        count = write_chrome_trace(spans, args.chrome)
        print(f"wrote {count} trace events to {args.chrome}")
    print(render_tree(spans))
    print()
    print(render_summary(spans))
    print()
    print(render_metrics(tracer.metrics))
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    print(render_tree(load_jsonl(args.path)))
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    print(render_summary(load_jsonl(args.path)))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    env, tracer = run_demo()
    print(render_metrics(tracer.metrics))
    return 0


def _cmd_attribution(args: argparse.Namespace) -> int:
    if args.path:
        records = load_jsonl(args.path)
    else:
        _, tracer = run_demo()
        records = tracer.spans()
    report = attribution_report(records)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(attribution_json(report))
            fh.write("\n")
        print(f"wrote attribution report to {args.json}")
    print(render_attribution(report))
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    _, tracer = run_demo(windows=True)
    states = _demo_engine().evaluate(tracer.windows)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(slo_json(states))
            fh.write("\n")
        print(f"wrote SLO states to {args.json}")
    print(render_slo(states))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    _, tracer = run_demo(windows=True)
    report = attribution_report(tracer.spans())
    states = _demo_engine().evaluate(tracer.windows)
    if args.attribution:
        with open(args.attribution, "w", encoding="utf-8") as fh:
            fh.write(attribution_json(report))
            fh.write("\n")
        print(f"wrote attribution report to {args.attribution}")
    if args.slo:
        with open(args.slo, "w", encoding="utf-8") as fh:
            fh.write(slo_json(states))
            fh.write("\n")
        print(f"wrote SLO states to {args.slo}")
    if args.windows:
        with open(args.windows, "w", encoding="utf-8") as fh:
            json.dump(tracer.windows.snapshot(), fh, sort_keys=True, indent=1)
            fh.write("\n")
        print(f"wrote windowed snapshot to {args.windows}")
    print(render_attribution(report))
    print()
    print(render_slo(states))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render invocation traces and per-subcontract metrics.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the two-machine demo scenario")
    demo.add_argument("--jsonl", help="also write spans to this JSONL file")
    demo.add_argument("--chrome", help="also write a Chrome trace_event file")
    demo.set_defaults(func=_cmd_demo)

    tree = sub.add_parser("tree", help="render a trace tree from a JSONL export")
    tree.add_argument("path", help="JSONL file written by write_jsonl")
    tree.set_defaults(func=_cmd_tree)

    summary = sub.add_parser("summary", help="span-latency summary from JSONL")
    summary.add_argument("path", help="JSONL file written by write_jsonl")
    summary.set_defaults(func=_cmd_summary)

    metrics = sub.add_parser("metrics", help="run the demo and dump metrics")
    metrics.set_defaults(func=_cmd_metrics)

    attribution = sub.add_parser(
        "attribution", help="latency-attribution waterfall (JSONL or demo)"
    )
    attribution.add_argument(
        "path", nargs="?", help="JSONL export; omitted = run the demo"
    )
    attribution.add_argument("--json", help="also write the report as JSON")
    attribution.set_defaults(func=_cmd_attribution)

    slo = sub.add_parser("slo", help="demo SLO states over windowed telemetry")
    slo.add_argument("--json", help="also write the states as JSON")
    slo.set_defaults(func=_cmd_slo)

    report = sub.add_parser(
        "report", help="demo attribution + SLO + windows in one report"
    )
    report.add_argument("--attribution", help="write attribution JSON here")
    report.add_argument("--slo", help="write SLO-state JSON here")
    report.add_argument("--windows", help="write the windowed snapshot here")
    report.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
