"""``python -m repro.obs`` — the trace toolchain CLI.

Subcommands:

* ``demo``     run the two-machine demo, print the trace tree, and
  optionally export JSONL / Chrome trace files;
* ``tree``     render a trace tree from a JSONL export;
* ``summary``  render the span-latency summary from a JSONL export;
* ``metrics``  run the demo and dump the per-subcontract metrics.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.demo import run_demo
from repro.obs.export import (
    load_jsonl,
    render_metrics,
    render_summary,
    render_tree,
    write_chrome_trace,
    write_jsonl,
)


def _cmd_demo(args: argparse.Namespace) -> int:
    env, tracer = run_demo()
    spans = tracer.spans()
    if args.jsonl:
        count = write_jsonl(spans, args.jsonl)
        print(f"wrote {count} spans to {args.jsonl}")
    if args.chrome:
        count = write_chrome_trace(spans, args.chrome)
        print(f"wrote {count} trace events to {args.chrome}")
    print(render_tree(spans))
    print()
    print(render_summary(spans))
    print()
    print(render_metrics(tracer.metrics))
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    print(render_tree(load_jsonl(args.path)))
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    print(render_summary(load_jsonl(args.path)))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    env, tracer = run_demo()
    print(render_metrics(tracer.metrics))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render invocation traces and per-subcontract metrics.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the two-machine demo scenario")
    demo.add_argument("--jsonl", help="also write spans to this JSONL file")
    demo.add_argument("--chrome", help="also write a Chrome trace_event file")
    demo.set_defaults(func=_cmd_demo)

    tree = sub.add_parser("tree", help="render a trace tree from a JSONL export")
    tree.add_argument("path", help="JSONL file written by write_jsonl")
    tree.set_defaults(func=_cmd_tree)

    summary = sub.add_parser("summary", help="span-latency summary from JSONL")
    summary.add_argument("path", help="JSONL file written by write_jsonl")
    summary.set_defaults(func=_cmd_summary)

    metrics = sub.add_parser("metrics", help="run the demo and dump metrics")
    metrics.set_defaults(func=_cmd_metrics)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
