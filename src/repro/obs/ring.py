"""Fixed-capacity span collection, one ring per domain.

Spans are recorded where they finish — in the domain that opened them —
so collection never crosses the domain-isolation boundary and concurrent
domains never contend on a shared list.  The ring is lock-free under the
GIL: the slot index comes from :func:`itertools.count` (a single atomic
C-level increment) and the write is a single ``STORE_SUBSCR`` into a
preallocated list.  When the ring wraps, the oldest spans are simply
overwritten; :attr:`dropped` says how many were lost.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.obs.tracer import Span

__all__ = ["TraceRing", "DEFAULT_RING_CAPACITY"]

#: default spans retained per domain before the ring wraps
DEFAULT_RING_CAPACITY = 4096


class TraceRing:
    """A bounded ring of finished spans for one domain."""

    __slots__ = ("capacity", "owner", "domain_name", "_slots", "_counter")

    def __init__(
        self, capacity: int = DEFAULT_RING_CAPACITY, owner: Any = None, domain_name: str = ""
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: the tracer this ring belongs to; a replacement tracer must not
        #: adopt a predecessor's rings
        self.owner = owner
        self.domain_name = domain_name
        self._slots: list["Span | None"] = [None] * capacity
        self._counter = itertools.count()

    def record(self, span: "Span") -> None:
        """Store one finished span, overwriting the oldest on wrap."""
        seq = next(self._counter)
        span.seq = seq
        self._slots[seq % self.capacity] = span

    def spans(self) -> list["Span"]:
        """Retained spans in the order they were recorded."""
        out = [s for s in self._slots if s is not None]
        out.sort(key=lambda s: s.seq)
        return out

    @property
    def recorded(self) -> int:
        """Total spans ever recorded (including overwritten ones)."""
        retained = [s.seq for s in self._slots if s is not None]
        return max(retained) + 1 if retained else 0

    @property
    def dropped(self) -> int:
        """Spans lost to ring wraparound."""
        return self.recorded - sum(1 for s in self._slots if s is not None)

    def __len__(self) -> int:
        return sum(1 for s in self._slots if s is not None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TraceRing {self.domain_name!r} {len(self)}/{self.capacity}"
            f" dropped={self.dropped}>"
        )
