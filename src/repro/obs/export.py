"""Trace exporters and renderers: JSONL, Chrome trace_event, CLI text.

Two wire formats:

* **JSONL** — one :func:`span_record` dict per line; loss-free (all
  events, attributes, wall deltas) and trivially greppable.
* **Chrome ``trace_event``** — a JSON object loadable in
  ``chrome://tracing`` / Perfetto.  Machines map to processes and
  domains to threads (via ``M`` metadata records), spans become ``X``
  complete events timed in simulated microseconds, and span events
  become ``i`` instant events.

The render helpers turn the same span list into the CLI's trace tree,
latency summary, and metrics dump.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import TYPE_CHECKING, Any, Iterable, Sequence

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Span

__all__ = [
    "span_record",
    "load_jsonl",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "render_tree",
    "render_summary",
    "render_metrics",
]


def span_record(span: "Span") -> dict:
    """The loss-free dict form of one span (one JSONL line)."""
    record = {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "category": span.category,
        "subcontract": span.subcontract,
        "domain": span.domain_name,
        "machine": span.machine_name,
        "start_sim_us": span.start_sim_us,
        "end_sim_us": span.end_sim_us,
        "duration_us": span.duration_us,
        "wall_us": span.wall_us,
        "status": span.status,
    }
    if span.error_type is not None:
        record["error_type"] = span.error_type
        record["error_message"] = span.error_message
    if span.attrs:
        record["attrs"] = dict(span.attrs)
    if span.events:
        record["events"] = list(span.events)
    return record


def write_jsonl(spans: "Iterable[Span]", path: str) -> int:
    """Write one JSON record per span; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span_record(span), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def load_jsonl(path: str) -> list[dict]:
    """Read back records written by :func:`write_jsonl`."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def chrome_trace(spans: "Sequence[Span]") -> dict:
    """Spans as a Chrome ``trace_event`` document (dict, JSON-ready).

    Machines become processes, domains become threads; ids are assigned
    in first-seen order and named with ``M`` metadata events so the
    viewer shows real names instead of numbers.
    """
    pids: dict[str, int] = {}
    tids: dict[str, int] = {}
    events: list[dict] = []
    # Spans whose parent was lost to TraceRing overflow still render —
    # flagged so a viewer knows the gap is collection, not causality.
    present = {(span.trace_id, span.span_id) for span in spans}

    def _pid(machine: str) -> int:
        pid = pids.get(machine)
        if pid is None:
            pid = pids[machine] = len(pids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": machine or "(no machine)"},
                }
            )
        return pid

    def _tid(machine: str, domain: str) -> int:
        tid = tids.get(domain)
        if tid is None:
            tid = tids[domain] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": _pid(machine),
                    "tid": tid,
                    "args": {"name": domain},
                }
            )
        return tid

    for span in spans:
        pid = _pid(span.machine_name)
        tid = _tid(span.machine_name, span.domain_name)
        args: dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "status": span.status,
            "wall_us": round(span.wall_us, 3),
        }
        if span.subcontract:
            args["subcontract"] = span.subcontract
        if span.error_type:
            args["error_type"] = span.error_type
        if span.parent_id and (span.trace_id, span.parent_id) not in present:
            args["orphan"] = True
        args.update(span.attrs)
        events.append(
            {
                "ph": "X",
                "name": f"{span.category}:{span.name}",
                "cat": span.category,
                "pid": pid,
                "tid": tid,
                "ts": span.start_sim_us,
                "dur": span.duration_us,
                "args": args,
            }
        )
        for evt in span.events:
            detail = {k: v for k, v in evt.items() if k not in ("name", "ts_us")}
            detail["span_id"] = span.span_id
            events.append(
                {
                    "ph": "i",
                    "name": evt["name"],
                    "cat": span.category,
                    "pid": pid,
                    "tid": tid,
                    "ts": evt["ts_us"],
                    "s": "t",
                    "args": detail,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: "Sequence[Span]", path: str) -> int:
    """Write the Chrome trace document; returns the event count."""
    doc = chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return len(doc["traceEvents"])


# -- text renderers ----------------------------------------------------


def _as_records(spans: "Sequence[Span] | Sequence[dict]") -> list[dict]:
    out = []
    for span in spans:
        out.append(span if isinstance(span, dict) else span_record(span))
    return out


def render_tree(spans: "Sequence[Span] | Sequence[dict]") -> str:
    """ASCII trace trees: one root block per trace id, children indented."""
    records = _as_records(spans)
    by_trace: dict[int, list[dict]] = defaultdict(list)
    for rec in records:
        by_trace[rec["trace_id"]].append(rec)

    lines: list[str] = []
    for trace_id in sorted(by_trace):
        trace = sorted(by_trace[trace_id], key=lambda r: (r["start_sim_us"], r["span_id"]))
        present = {r["span_id"] for r in trace}
        children: dict[int, list[dict]] = defaultdict(list)
        roots = []
        for rec in trace:
            if rec["parent_id"] in present:
                children[rec["parent_id"]].append(rec)
            else:
                roots.append(rec)
        lines.append(f"trace {trace_id}")

        def _walk(rec: dict, depth: int) -> None:
            mark = "" if rec["status"] == "ok" else "  !! " + str(
                rec.get("error_type") or rec["status"]
            )
            sub = f" [{rec['subcontract']}]" if rec.get("subcontract") else ""
            lines.append(
                f"{'  ' * depth}- {rec['category']}:{rec['name']}{sub}"
                f"  @{rec['domain']}/{rec['machine'] or '-'}"
                f"  {rec['duration_us']:.2f}us{mark}"
            )
            for evt in rec.get("events", ()):
                detail = ", ".join(
                    f"{k}={v}" for k, v in evt.items() if k not in ("name", "ts_us")
                )
                suffix = f" ({detail})" if detail else ""
                lines.append(f"{'  ' * (depth + 1)}* {evt['name']}{suffix}")
            for child in children.get(rec["span_id"], ()):
                _walk(child, depth + 1)

        for root in roots:
            _walk(root, 1)
    return "\n".join(lines)


def render_summary(spans: "Sequence[Span] | Sequence[dict]") -> str:
    """Per-(category, name) latency table: count, total, mean, max, errors.

    Orphan spans — parent lost to TraceRing overflow — are counted in
    their group like any other span, and a footer reports how many of
    the rendered spans were orphans so a truncated collection is visible
    in the summary itself.
    """
    records = _as_records(spans)
    groups: dict[tuple[str, str], list[dict]] = defaultdict(list)
    present: set[tuple[int, int]] = set()
    for rec in records:
        groups[(rec["category"], rec["name"])].append(rec)
        present.add((rec["trace_id"], rec["span_id"]))
    orphans = sum(
        1
        for rec in records
        if rec["parent_id"] and (rec["trace_id"], rec["parent_id"]) not in present
    )

    header = f"{'span':<42} {'count':>6} {'total_us':>12} {'mean_us':>10} {'max_us':>10} {'errors':>6}"
    lines = [header, "-" * len(header)]
    for (category, name), recs in sorted(
        groups.items(), key=lambda kv: -sum(r["duration_us"] for r in kv[1])
    ):
        durations = [r["duration_us"] for r in recs]
        errors = sum(1 for r in recs if r["status"] != "ok")
        lines.append(
            f"{category + ':' + name:<42} {len(recs):>6} {sum(durations):>12.2f}"
            f" {sum(durations) / len(durations):>10.2f} {max(durations):>10.2f}"
            f" {errors:>6}"
        )
    if orphans:
        lines.append(
            f"({orphans} orphan span(s): parent records lost to ring overflow)"
        )
    return "\n".join(lines)


def render_metrics(metrics: "MetricsRegistry | dict") -> str:
    """Human-readable per-subcontract metrics dump."""
    snapshot = metrics if isinstance(metrics, dict) else metrics.snapshot()
    lines: list[str] = []
    for scope in sorted(snapshot):
        lines.append(f"[{scope}]")
        scoped = snapshot[scope]
        for name, value in sorted(scoped.get("counters", {}).items()):
            lines.append(f"  {name:<28} {value}")
        for name, hist in sorted(scoped.get("histograms", {}).items()):
            lines.append(
                f"  {name:<28} count={hist['count']} mean={hist['mean']:.2f}"
                f" sum={hist['sum']:.2f}"
            )
            bounds = hist["bounds"]
            counts = hist["counts"]
            for i, count in enumerate(counts):
                if not count:
                    continue
                if i < len(bounds):
                    label = f"< {bounds[i]:g}"
                else:
                    label = f">= {bounds[-1]:g}"
                lines.append(f"    {label:<24} {count}")
    return "\n".join(lines)
