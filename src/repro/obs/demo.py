"""The two-machine demo scenario behind ``python -m repro.obs demo``.

Machines ``alpha`` (client + its cache manager) and ``beta`` (server +
audit domains).  The server exports a **cluster** counter whose
implementation makes a *nested* call to a singleton audit object in a
sibling domain, and a **caching** store whose reads route through the
client machine's cache front — so one run exercises the acceptance
chain: client stub -> door -> fabric -> netserver -> skeleton -> nested
server-side call, with cache hit/miss and cluster member-choice
annotations on the spans.
"""

from __future__ import annotations

from repro.idl.compiler import compile_idl
from repro.marshal.buffer import MarshalBuffer
from repro.obs.tracer import Tracer, install_tracer
from repro.runtime.env import Environment
from repro.subcontracts.caching import CachingServer
from repro.subcontracts.cluster import ClusterServer
from repro.subcontracts.singleton import SingletonServer

__all__ = ["DEMO_IDL", "build_demo_world", "run_demo"]

DEMO_IDL = """
interface counter {
    int32 add(int32 n);
    int32 total();
}

interface store {
    string get(string key);
    void put(string key, string value);
}

interface audit {
    void record(string what);
}
"""


class AuditImpl:
    """Singleton audit log living in its own domain on beta."""

    def __init__(self) -> None:
        self.entries: list[str] = []

    def record(self, what: str) -> None:
        self.entries.append(what)


class CounterImpl:
    """Cluster-exported counter; every add makes a nested audit call."""

    def __init__(self, audit) -> None:
        self.value = 0
        self.audit = audit

    def add(self, n: int) -> int:
        self.value += n
        self.audit.record(f"add:{n}")
        return self.value

    def total(self) -> int:
        return self.value


class StoreImpl:
    """Caching-exported read-mostly store."""

    def __init__(self) -> None:
        self.data = {"motd": "subcontracts hide machinery"}
        self.reads = 0

    def get(self, key: str) -> str:
        self.reads += 1
        return self.data.get(key, "")

    def put(self, key: str, value: str) -> None:
        self.data[key] = value


def _ship(env: Environment, src, dst, obj, binding):
    buffer = MarshalBuffer(env.kernel)
    obj._subcontract.marshal(obj, buffer)
    buffer.seal_for_transmission(src)
    return binding.unmarshal_from(buffer, dst)


def build_demo_world(windows: bool = False) -> dict:
    """Stand up the two-machine world with tracing installed.

    ``windows=True`` also attaches a :class:`WindowedSeries` (small
    windows so the short demo workload still spreads across several),
    which is what the CLI's attribution/SLO subcommands feed on.
    """
    env = Environment()
    tracer = install_tracer(env.kernel)
    if windows:
        from repro.obs.windows import install_windows

        install_windows(tracer, window_us=2_000.0, retention=64)

    alpha = env.machine("alpha")
    beta = env.machine("beta")
    env.install_cache_manager(alpha)

    client = env.create_domain(alpha, "client")
    server = env.create_domain(beta, "server")
    audit_domain = env.create_domain(beta, "audit")

    module = compile_idl(DEMO_IDL)
    counter_binding = module.binding("counter")
    store_binding = module.binding("store")
    audit_binding = module.binding("audit")

    audit_impl = AuditImpl()
    audit_exported = SingletonServer(audit_domain).export(audit_impl, audit_binding)
    # The server domain holds a proxy to the audit object: calls made
    # from inside the counter handler are nested server-side calls.
    audit_proxy = _ship(env, audit_domain, server, audit_exported, audit_binding)

    counter_impl = CounterImpl(audit_proxy)
    counter_exported = ClusterServer(server).export(counter_impl, counter_binding)
    counter = _ship(env, server, client, counter_exported, counter_binding)

    store_impl = StoreImpl()
    store_exported = CachingServer(server).export(store_impl, store_binding)
    store = _ship(env, server, client, store_exported, store_binding)

    return {
        "env": env,
        "tracer": tracer,
        "counter": counter,
        "store": store,
        "counter_impl": counter_impl,
        "store_impl": store_impl,
        "audit_impl": audit_impl,
    }


def run_demo(windows: bool = False) -> tuple[Environment, Tracer]:
    """Run the scenario; returns the environment and its tracer."""
    world = build_demo_world(windows=windows)
    counter = world["counter"]
    store = world["store"]

    counter.add(3)  # cluster call with a nested audit call
    counter.add(4)
    assert counter.total() == 7

    assert store.get("motd")  # cache miss: forwarded to the server
    assert store.get("motd")  # cache hit: served on alpha
    store.put("k", "v")  # write-through, invalidates the front
    assert store.get("k") == "v"

    return world["env"], world["tracer"]
