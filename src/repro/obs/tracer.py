"""The tracer: spans, causal context, and the no-op disabled mode.

One :class:`Tracer` serves one kernel (``kernel.tracer``); every kernel
boots with the preallocated :data:`NULL_TRACER`, whose class-level
``enabled = False`` is the *only* thing hot paths ever read from it.

Span model
----------

A span is one timed unit of work, in one domain, with a name and a
category describing which layer did the work::

    invoke     client stub -> subcontract (remote_call / fused stub)
    door       kernel door traversal (door_call)
    fabric     cross-machine forwarding (NetworkFabric.carry)
    netserver  door-identifier translation at a machine boundary
    handler    server-side door delivery (_deliver / rawnet receive)
    skeleton   server subcontract -> server stubs dispatch

Causality is carried two ways:

* **within a call chain on one thread** — a per-thread span stack; a new
  span's parent is the stack top, which is how a nested ``remote_call``
  made from inside a server-side handler joins its caller's trace;
* **across the transmission boundary** — the kernel's traced door leg
  stamps ``(trace_id, span_id)`` into the communication buffer's
  out-of-band ``trace_ctx`` slot (the same out-of-band channel the door
  vector uses), and the delivery leg starts the handler span from that
  context alone.  Domain isolation holds: no Python object crosses, only
  the two integers, and the rawnet subcontract proves the point by
  carrying the same pair in-band in its packet headers
  (:meth:`~repro.marshal.codec.Encoder.put_trace_ctx`).

Timestamps are simulated microseconds from the kernel's ``SimClock``;
wall-clock deltas (``time.perf_counter``) ride along so real-hardware
profiles can be read off the same spans.  While tracing is enabled the
tracer charges its own probe cost to the clock (``trace_span`` per span,
``trace_event`` per event) so traced sim-time is honest about the
instrumentation; disabled runs charge nothing and stay bit-for-bit
identical to an untraced tree.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import (
    BYTES_BUCKETS,
    LATENCY_BUCKETS_US,
    RETRY_BUCKETS,
    MetricsRegistry,
)
from repro.obs.ring import DEFAULT_RING_CAPACITY, TraceRing

if TYPE_CHECKING:
    from repro.kernel.domain import Domain
    from repro.kernel.nucleus import Kernel

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "install_tracer"]


class Span:
    """One timed unit of work; also a context manager (records errors)."""

    __slots__ = (
        "tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "category",
        "subcontract",
        "domain_name",
        "machine_name",
        "start_sim_us",
        "end_sim_us",
        "start_wall_s",
        "end_wall_s",
        "status",
        "error_type",
        "error_message",
        "events",
        "attrs",
        "seq",
        "_ring",
        "_ended",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: int,
        span_id: int,
        parent_id: int,
        name: str,
        category: str,
        domain: "Domain",
        ring: TraceRing,
    ) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.subcontract: str | None = None
        self.domain_name = domain.name
        machine = domain.machine
        self.machine_name = machine.name if machine is not None else ""
        self.start_sim_us = 0.0
        self.end_sim_us = 0.0
        self.start_wall_s = 0.0
        self.end_wall_s = 0.0
        self.status = "ok"
        self.error_type: str | None = None
        self.error_message: str | None = None
        self.events: list[dict] = []
        self.attrs: dict[str, Any] = {}
        self.seq = -1
        self._ring = ring
        self._ended = False

    # -- annotation ----------------------------------------------------

    @property
    def ctx(self) -> tuple[int, int]:
        """The wire form of this span: ``(trace_id, span_id)``."""
        return (self.trace_id, self.span_id)

    @property
    def duration_us(self) -> float:
        return self.end_sim_us - self.start_sim_us

    @property
    def wall_us(self) -> float:
        return (self.end_wall_s - self.start_wall_s) * 1e6

    def annotate(self, **attrs: Any) -> None:
        """Attach key/value attributes to this span."""
        self.attrs.update(attrs)

    def event(self, name: str, **detail: Any) -> None:
        """Record a point-in-time event on this span."""
        clock = self.tracer.clock
        clock.charge(_EV_TRACE_EVENT)
        evt = {"name": name, "ts_us": clock.now_us}
        if detail:
            evt.update(detail)
        self.events.append(evt)

    def record_error(self, exc: BaseException) -> None:
        """Mark this span failed; called once per failing span."""
        self.status = "error"
        self.error_type = type(exc).__name__
        self.error_message = str(exc)

    # -- completion ----------------------------------------------------

    def end(self) -> None:
        """Finish the span: stamp end times, pop the stack, record it.

        Idempotent — a second ``end`` (e.g. an explicit call inside a
        ``with`` block) is a no-op.
        """
        if self._ended:
            return
        self._ended = True
        tracer = self.tracer
        self.end_sim_us = tracer.clock.now_us
        self.end_wall_s = time.perf_counter()  # springlint: disable=clock-discipline -- spans record real wall-clock deltas alongside simulated time by design
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # out-of-order end: remove without disturbing others
            try:
                stack.remove(self)
            except ValueError:
                pass
        tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc is not None:
            self.record_error(exc)
        self.end()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.trace_id}/{self.span_id} {self.category}:{self.name!r}"
            f" parent={self.parent_id} {self.status}>"
        )


#: precomputed charge-site names (clock-discipline: no hot-path formatting)
_EV_TRACE_SPAN = "trace_span"
_EV_TRACE_EVENT = "trace_event"
_EV_WINDOW_PROBE = "window_probe"


class Tracer:
    """Live tracer for one kernel: spans, per-domain rings, metrics."""

    #: hot paths read only this; NullTracer's False makes them no-ops
    enabled = True

    def __init__(
        self, kernel: "Kernel", ring_capacity: int = DEFAULT_RING_CAPACITY
    ) -> None:
        self.kernel = kernel
        self.clock = kernel.clock
        self.ring_capacity = ring_capacity
        self.metrics = MetricsRegistry()
        #: optional WindowedSeries (repro.obs.windows.install_windows);
        #: None keeps the windowed feed at one attr read per span/event
        self.windows = None
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._local = threading.local()
        self._rings: list[TraceRing] = []
        self._ring_lock = threading.Lock()

    # -- plumbing ------------------------------------------------------

    def _stack(self) -> list[Span]:
        try:
            return self._local.stack
        except AttributeError:
            stack: list[Span] = []
            self._local.stack = stack
            return stack

    def _ring_for(self, domain: "Domain") -> TraceRing:
        ring = domain._trace_ring
        if ring is not None and ring.owner is self:
            return ring
        with self._ring_lock:
            ring = domain._trace_ring
            if ring is None or ring.owner is not self:
                ring = TraceRing(self.ring_capacity, owner=self, domain_name=domain.name)
                domain._trace_ring = ring
                self._rings.append(ring)
            return ring

    def _finish(self, span: Span) -> None:
        span._ring.record(span)
        windows = self.windows
        if windows is not None:
            self.clock.charge(_EV_WINDOW_PROBE)
            windows.record_span(span)
        if span.category != "invoke":
            return
        scope = span.subcontract or "unknown"
        metrics = self.metrics
        metrics.counter(scope, "invocations").inc()
        if span.status != "ok":
            metrics.counter(scope, "errors").inc()
        metrics.histogram(scope, "invoke_sim_us", LATENCY_BUCKETS_US).observe(
            span.duration_us
        )
        attrs = span.attrs
        request_bytes = attrs.get("request_bytes")
        if request_bytes is not None:
            metrics.histogram(scope, "request_bytes", BYTES_BUCKETS).observe(
                request_bytes
            )
        reply_bytes = attrs.get("reply_bytes")
        if reply_bytes is not None:
            metrics.histogram(scope, "reply_bytes", BYTES_BUCKETS).observe(reply_bytes)
        retries = attrs.get("retries")
        if retries is not None:
            metrics.histogram(scope, "retries", RETRY_BUCKETS).observe(retries)

    # -- span creation -------------------------------------------------

    def _begin(
        self,
        domain: "Domain",
        name: str,
        category: str,
        trace_id: int,
        parent_id: int,
        attrs: dict,
    ) -> Span:
        clock = self.clock
        clock.charge(_EV_TRACE_SPAN)
        span = Span(
            self,
            trace_id,
            next(self._span_ids),
            parent_id,
            name,
            category,
            domain,
            self._ring_for(domain),
        )
        span.start_sim_us = clock.now_us
        span.start_wall_s = time.perf_counter()  # springlint: disable=clock-discipline -- spans record real wall-clock deltas alongside simulated time by design
        if attrs:
            span.attrs.update(attrs)
        self._stack().append(span)
        return span

    def begin_span(
        self, domain: "Domain", name: str, category: str = "span", **attrs: Any
    ) -> Span:
        """Open a span; its parent is the calling thread's current span."""
        stack = self._stack()
        if stack:
            top = stack[-1]
            trace_id, parent_id = top.trace_id, top.span_id
        else:
            trace_id, parent_id = next(self._trace_ids), 0
        return self._begin(domain, name, category, trace_id, parent_id, attrs)

    def begin_invoke(
        self, domain: "Domain", op: str, subcontract_id: str, **attrs: Any
    ) -> Span:
        """Open the client-side invocation span for one operation."""
        span = self.begin_span(domain, op, "invoke", **attrs)
        span.subcontract = subcontract_id
        return span

    def begin_handler(
        self,
        domain: "Domain",
        name: str,
        ctx: "tuple[int, int] | None",
        **attrs: Any,
    ) -> Span:
        """Open a server-side span parented ONLY by the wire context.

        ``ctx`` is the ``(trace_id, parent span_id)`` pair recovered from
        the transmission (buffer ``trace_ctx`` slot, or a rawnet packet
        header); the thread stack is deliberately not consulted, so the
        causal link is exactly what crossed the wire.
        """
        if ctx is not None:
            trace_id, parent_id = ctx
        else:
            trace_id, parent_id = next(self._trace_ids), 0
        return self._begin(domain, name, "handler", trace_id, parent_id, attrs)

    # -- current-span conveniences (safe no-ops with no span open) -----

    def current(self) -> Span | None:
        """The calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def current_ctx(self) -> tuple[int, int] | None:
        """Wire context of the current span, for in-band transports."""
        stack = self._stack()
        return stack[-1].ctx if stack else None

    def event(self, name: str, subcontract: str | None = None, **detail: Any) -> None:
        """Annotate the current span with a point event and count it.

        This is the one call subcontracts make at their routing decisions;
        with no span open (untraced entry point) the event is dropped,
        but the per-subcontract counter still ticks.
        """
        if subcontract is not None:
            self.metrics.counter(subcontract, "events:" + name).inc()  # springlint: disable=metrics-naming -- generic relay: the literal name is at the caller's emit site
        windows = self.windows
        if windows is not None:
            clock = self.clock
            clock.charge(_EV_WINDOW_PROBE)
            windows.record_event(name, subcontract, detail, clock.now_us)
        stack = self._stack()
        if stack:
            stack[-1].event(name, **detail)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the current span, if one is open."""
        stack = self._stack()
        if stack:
            stack[-1].attrs.update(attrs)

    # -- collection ----------------------------------------------------

    def rings(self) -> list[TraceRing]:
        with self._ring_lock:
            return list(self._rings)

    def spans(self) -> list[Span]:
        """All retained spans across every domain ring, in id order."""
        out: list[Span] = []
        for ring in self.rings():
            out.extend(ring.spans())
        out.sort(key=lambda s: (s.trace_id, s.span_id))
        return out

    def dropped(self) -> int:
        """Total spans lost to ring wraparound across all domains."""
        return sum(ring.dropped for ring in self.rings())


class NullTracer:
    """The preinstalled disabled tracer: one attribute, all no-ops.

    Hot paths check ``kernel.tracer.enabled`` and never call further; the
    method surface exists only so cold paths and tests may call through
    unconditionally.
    """

    enabled = False
    metrics = None
    windows = None

    def begin_span(self, *args: Any, **kwargs: Any) -> "_NullSpan":
        return _NULL_SPAN

    def begin_invoke(self, *args: Any, **kwargs: Any) -> "_NullSpan":
        return _NULL_SPAN

    def begin_handler(self, *args: Any, **kwargs: Any) -> "_NullSpan":
        return _NULL_SPAN

    def current(self) -> None:
        return None

    def current_ctx(self) -> None:
        return None

    def event(self, *args: Any, **kwargs: Any) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        return None

    def spans(self) -> list:
        return []

    def dropped(self) -> int:
        return 0


class _NullSpan:
    """Inert span returned by :class:`NullTracer`."""

    __slots__ = ()

    status = "ok"

    def annotate(self, **attrs: Any) -> None:
        return None

    def event(self, name: str, **detail: Any) -> None:
        return None

    def record_error(self, exc: BaseException) -> None:
        return None

    def end(self) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()

#: the process-wide disabled tracer every kernel boots with
NULL_TRACER = NullTracer()


def install_tracer(
    kernel: "Kernel", ring_capacity: int = DEFAULT_RING_CAPACITY
) -> Tracer:
    """Create a :class:`Tracer` and install it on ``kernel``."""
    tracer = Tracer(kernel, ring_capacity=ring_capacity)
    kernel.tracer = tracer
    return tracer
