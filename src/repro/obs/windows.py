"""Windowed time series: counters + quantile sketches over sim time.

PR 3's :class:`~repro.obs.metrics.MetricsRegistry` is *cumulative* —
counts since boot, useful for totals, useless for "what was the p99
over the last 50ms".  A :class:`WindowedSeries` buckets the same feed
into fixed-width **tumbling windows on the simulated clock**: window
``i`` covers ``[i * window_us, (i + 1) * window_us)``, each window
holds its own counters and :class:`~repro.obs.sketch.Sketch` per
``(scope, name)`` key, and a bounded retention ring keeps the last
``retention`` windows (older windows are evicted and counted in
``dropped_windows`` — same accounting philosophy as ``TraceRing``).

Because the window boundary is simulated time, windowed telemetry is
as deterministic as the run that produced it: the same seed produces
bit-identical window snapshots, which is what makes SLO evaluation
(:mod:`repro.obs.slo`) replayable and lets the acceptance soak compare
reports across runs byte for byte.

The feed is the tracer (:func:`install_windows` attaches a series to a
live :class:`~repro.obs.tracer.Tracer`); the uninstalled posture is the
usual one-attr-read-plus-branch (``tracer.windows is None``) so runs
without windowing charge nothing and stay bit-for-bit identical.
While installed, every recorded span/event charges ``window_probe``
sim time (see ``CostModel.window_probe_us``), keeping windowed runs
honest about their own instrumentation — and still deterministic.

Snapshots are JSON-safe and fully sorted; ``merge_window_snapshots``
merges per-process snapshots window-by-window (the procfabric
supervisor's ``merged_windows``), and ``snapshot_quantile`` recomputes
any quantile *offline* from a snapshot — exactly equal to the live
value, because sketch quantiles depend only on integer bucket counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.obs.sketch import Sketch

if TYPE_CHECKING:
    from repro.obs.tracer import Span, Tracer

__all__ = [
    "WindowedSeries",
    "WindowMergeError",
    "install_windows",
    "uninstall_windows",
    "merge_window_snapshots",
    "snapshot_quantile",
    "snapshot_counter_total",
]

#: default window width: 50 simulated milliseconds
DEFAULT_WINDOW_US = 50_000.0
#: default retention ring length (windows)
DEFAULT_RETENTION = 64


class WindowMergeError(ValueError):
    """Window snapshots with different geometry were merged."""


class _Window:
    """One tumbling window: counters and sketches keyed by (scope, name)."""

    __slots__ = ("index", "counters", "sketches")

    def __init__(self, index: int) -> None:
        self.index = index
        self.counters: dict[tuple[str, str], int] = {}
        self.sketches: dict[tuple[str, str], Sketch] = {}


class WindowedSeries:
    """Tumbling sim-time windows of counters and quantile sketches."""

    def __init__(
        self,
        window_us: float = DEFAULT_WINDOW_US,
        retention: int = DEFAULT_RETENTION,
        alpha: float = 0.01,
    ) -> None:
        if window_us <= 0.0:
            raise ValueError(f"window_us must be positive, got {window_us!r}")
        if retention < 1:
            raise ValueError(f"retention must be >= 1, got {retention!r}")
        self.window_us = float(window_us)
        self.retention = retention
        self.alpha = alpha
        self._slots: list[_Window | None] = [None] * retention
        self.dropped_windows = 0
        self.recorded = 0

    # -- feed -----------------------------------------------------------

    def _window_at(self, now_us: float) -> _Window | None:
        index = int(now_us // self.window_us)
        slot = index % self.retention
        window = self._slots[slot]
        if window is not None and window.index == index:
            return window
        if window is not None and window.index > index:
            # A straggler older than the evicted window it belonged to
            # (cross-thread clock skew); nothing to attribute it to.
            return None
        if window is not None:
            self.dropped_windows += 1
        window = _Window(index)
        self._slots[slot] = window
        return window

    def count(self, scope: str, name: str, now_us: float, n: int = 1) -> None:
        """Add ``n`` to counter ``(scope, name)`` in the window at ``now_us``."""
        window = self._window_at(now_us)
        if window is None:
            return
        key = (scope, name)
        window.counters[key] = window.counters.get(key, 0) + n
        self.recorded += 1

    def observe(self, scope: str, name: str, value: float, now_us: float) -> None:
        """Insert ``value`` into sketch ``(scope, name)`` in the window at ``now_us``."""
        window = self._window_at(now_us)
        if window is None:
            return
        key = (scope, name)
        sketch = window.sketches.get(key)
        if sketch is None:
            sketch = Sketch(self.alpha)
            window.sketches[key] = sketch
        sketch.insert(value)
        self.recorded += 1

    def record_span(self, span: "Span") -> None:
        """Tracer feed: fold one finished span into the current window.

        * ``invoke`` spans: per-subcontract ``invocations``/``errors``
          counters and an ``invoke_sim_us`` sketch (the windowed twin of
          the cumulative metrics the tracer already keeps);
        * ``door`` spans: a per-door duration sketch and call counter
          under scope ``"door"`` — the "p99 per door per window" feed;
        * ``handler`` spans: the same per-door feed under ``"handler"``,
          named by the door label.  This is the *server-side* view: in a
          process-fabric worker the client-side ``door`` span lives in
          the supervisor, so the handler sketch is the worker's only
          per-door signal;
        * ``fabric`` spans: per-hop duration sketch under ``"fabric"``;
        * other categories: a cheap per-category counter under ``"span"``.
        """
        now = span.end_sim_us
        category = span.category
        if category == "invoke":
            scope = span.subcontract or "unknown"
            self.count(scope, "invocations", now)
            if span.status != "ok":
                self.count(scope, "errors", now)
            self.observe(scope, "invoke_sim_us", span.duration_us, now)
        elif category in ("door", "handler"):
            self.count(category, span.name, now)
            self.observe(category, span.name + ".sim_us", span.duration_us, now)
            if span.status != "ok":
                self.count(category, span.name + ".errors", now)
        elif category == "fabric":
            self.observe("fabric", span.name + ".sim_us", span.duration_us, now)
        else:
            self.count("span", category, now)

    def record_event(
        self, name: str, subcontract: str | None, detail: dict, now_us: float
    ) -> None:
        """Tracer feed: count one event; sketch its ``*_us`` details.

        Any numeric detail key ending in ``_us`` (``wait_us``,
        ``backoff_us``, ``delay_us``...) becomes a windowed sketch named
        ``<event>.<key>`` — which is how admission waits, retry backoff
        and chaos link delay get windowed quantiles without new plumbing
        at each emit site.
        """
        scope = subcontract or "event"
        self.count(scope, name, now_us)
        for key, value in detail.items():
            if key.endswith("_us") and isinstance(value, (int, float)):
                self.observe(scope, name + "." + key, value, now_us)

    # -- queries --------------------------------------------------------

    def windows(self) -> list[_Window]:
        """Retained windows, oldest first (sorted by window index)."""
        present = [w for w in self._slots if w is not None]
        present.sort(key=lambda w: w.index)
        return present

    def _selected(self, last: int | None) -> list[_Window]:
        windows = self.windows()
        if last is not None and last >= 0:
            windows = windows[-last:] if last else []
        return windows

    def merged_sketch(
        self, scope: str, name: str, last: int | None = None
    ) -> Sketch:
        """Merge the ``(scope, name)`` sketch across the last ``last``
        retained windows (all retained windows when ``None``)."""
        merged = Sketch(self.alpha)
        for window in self._selected(last):
            sketch = window.sketches.get((scope, name))
            if sketch is not None:
                merged.merge(sketch)
        return merged

    def quantile(
        self, scope: str, name: str, q: float, last: int | None = None
    ) -> float:
        """Quantile of ``(scope, name)`` over the last ``last`` windows."""
        return self.merged_sketch(scope, name, last).quantile(q)

    def counter_total(
        self, scope: str, name: str, last: int | None = None
    ) -> int:
        """Sum of counter ``(scope, name)`` over the last ``last`` windows."""
        total = 0
        for window in self._selected(last):
            total += window.counters.get((scope, name), 0)
        return total

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self, last: int | None = None) -> dict:
        """A JSON-safe, deterministic snapshot of retained windows.

        Counters and sketches are listed as sorted ``[scope, name, ...]``
        triples so equal series produce byte-identical JSON.
        """
        windows = []
        for window in self._selected(last):
            windows.append(
                {
                    "index": window.index,
                    "start_us": window.index * self.window_us,
                    "counters": [
                        [scope, name, window.counters[(scope, name)]]
                        for scope, name in sorted(window.counters)
                    ],
                    "sketches": [
                        [scope, name, window.sketches[(scope, name)].snapshot()]
                        for scope, name in sorted(window.sketches)
                    ],
                }
            )
        return {
            "window_us": self.window_us,
            "retention": self.retention,
            "alpha": self.alpha,
            "dropped_windows": self.dropped_windows,
            "windows": windows,
        }


def merge_window_snapshots(*snapshots: dict) -> dict:
    """Merge window snapshots from several series (e.g. one per worker
    process) into one, window index by window index.

    All snapshots must share ``window_us`` and ``alpha`` — windows cut
    at different boundaries or sketched at different resolutions do not
    merge meaningfully, and raising beats silently blending them
    (:class:`WindowMergeError`).  Counter merge is integer addition;
    sketch merge is the exactly-associative bucket merge, so the merged
    quantiles are independent of merge order.
    """
    snapshots = tuple(s for s in snapshots if s)
    if not snapshots:
        return {
            "window_us": DEFAULT_WINDOW_US,
            "retention": DEFAULT_RETENTION,
            "alpha": 0.01,
            "dropped_windows": 0,
            "windows": [],
        }
    first = snapshots[0]
    by_index: dict[int, dict] = {}
    dropped = 0
    for snap in snapshots:
        if snap["window_us"] != first["window_us"] or snap["alpha"] != first["alpha"]:
            raise WindowMergeError(
                f"cannot merge window snapshots with different geometry: "
                f"window_us {first['window_us']!r} vs {snap['window_us']!r}, "
                f"alpha {first['alpha']!r} vs {snap['alpha']!r}"
            )
        dropped += snap.get("dropped_windows", 0)
        for window in snap["windows"]:
            index = window["index"]
            merged = by_index.get(index)
            if merged is None:
                by_index[index] = {
                    "index": index,
                    "start_us": window["start_us"],
                    "counters": {
                        (scope, name): value
                        for scope, name, value in window["counters"]
                    },
                    "sketches": {
                        (scope, name): Sketch.from_snapshot(sketch)
                        for scope, name, sketch in window["sketches"]
                    },
                }
                continue
            counters = merged["counters"]
            for scope, name, value in window["counters"]:
                key = (scope, name)
                counters[key] = counters.get(key, 0) + value
            sketches = merged["sketches"]
            for scope, name, snap_sketch in window["sketches"]:
                key = (scope, name)
                incoming = Sketch.from_snapshot(snap_sketch)
                if key in sketches:
                    sketches[key].merge(incoming)
                else:
                    sketches[key] = incoming
    windows = []
    for index in sorted(by_index):
        merged = by_index[index]
        windows.append(
            {
                "index": index,
                "start_us": merged["start_us"],
                "counters": [
                    [scope, name, merged["counters"][(scope, name)]]
                    for scope, name in sorted(merged["counters"])
                ],
                "sketches": [
                    [scope, name, merged["sketches"][(scope, name)].snapshot()]
                    for scope, name in sorted(merged["sketches"])
                ],
            }
        )
    return {
        "window_us": first["window_us"],
        "retention": max(s["retention"] for s in snapshots),
        "alpha": first["alpha"],
        "dropped_windows": dropped,
        "windows": windows,
    }


def _snapshot_windows(snapshot: dict, last: int | None) -> Iterable[dict]:
    windows = sorted(snapshot.get("windows", ()), key=lambda w: w["index"])
    if last is not None and last >= 0:
        windows = windows[-last:] if last else []
    return windows


def snapshot_quantile(
    snapshot: dict, scope: str, name: str, q: float, last: int | None = None
) -> float:
    """Recompute a quantile offline from a snapshot dict.

    Bit-identical to the live ``WindowedSeries.quantile`` on the series
    that produced the snapshot: quantile evaluation reads only integer
    bucket counts, which round-trip exactly through the snapshot.
    """
    merged = Sketch(snapshot["alpha"])
    for window in _snapshot_windows(snapshot, last):
        for sketch_scope, sketch_name, sketch in window["sketches"]:
            if sketch_scope == scope and sketch_name == name:
                merged.merge(Sketch.from_snapshot(sketch))
    return merged.quantile(q)


def snapshot_counter_total(
    snapshot: dict, scope: str, name: str, last: int | None = None
) -> int:
    """Sum a counter offline from a snapshot dict."""
    total = 0
    for window in _snapshot_windows(snapshot, last):
        for counter_scope, counter_name, value in window["counters"]:
            if counter_scope == scope and counter_name == name:
                total += value
    return total


def install_windows(
    tracer: "Tracer",
    window_us: float = DEFAULT_WINDOW_US,
    retention: int = DEFAULT_RETENTION,
    alpha: float = 0.01,
) -> WindowedSeries:
    """Attach a :class:`WindowedSeries` to a live tracer.

    The tracer feeds it from ``_finish`` (every recorded span) and
    ``event`` (every subcontract event), charging ``window_probe`` sim
    time per update.  Requires an enabled tracer — windowing without a
    span feed would silently record nothing.
    """
    if not getattr(tracer, "enabled", False):
        raise ValueError("install_windows requires an enabled tracer")
    series = WindowedSeries(window_us=window_us, retention=retention, alpha=alpha)
    tracer.windows = series
    return series


def uninstall_windows(tracer: "Tracer") -> None:
    """Detach the windowed series; the tracer feed reverts to a no-op."""
    tracer.windows = None
