"""Observability for the subcontract runtime: causal tracing + metrics.

The paper's whole point is that subcontracts hide machinery — replication,
caching, reconnection — behind an unchanged stub boundary.  This package
makes that hidden machinery observable per call: every invocation opens a
**span** carrying a trace id and parent span id, the context rides the
communication buffer across doors/fabric/netserver/skeleton hops, and the
subcontracts annotate spans with the routing decisions they make (cluster
member chosen, cache hit or miss, replicon failover, reconnect retries,
rawnet retransmits).

Design constraints (see ``docs/observability.md``):

* **Near-zero disabled cost.**  Every kernel has a ``tracer`` attribute,
  preinstalled as the no-op :data:`NULL_TRACER`; hot paths pay exactly one
  attribute read plus one branch (``if kernel.tracer.enabled:``) and
  delegate to a separate traced twin, so the disabled fast path stays
  branch-for-branch what PR 1 tuned.
* **Simulated and wall time.**  Span timestamps come from the kernel's
  deterministic :class:`~repro.kernel.clock.SimClock`; wall-clock deltas
  ride along for profiling real hardware.  The tracer's own probe cost is
  charged to the clock (``trace_span`` / ``trace_event``) only while
  tracing is enabled, so disabled runs are bit-for-bit identical.
* **Per-domain ring collection.**  Finished spans land in a fixed-size
  per-domain ring (no lock, no unbounded growth); exporters and the CLI
  merge the rings.

The v2 analysis layer builds on the same feed (see
``docs/observability.md``): :class:`~repro.obs.sketch.Sketch` gives
relative-error quantiles, :class:`~repro.obs.windows.WindowedSeries`
buckets them into tumbling sim-time windows,
:mod:`repro.obs.attribution` decomposes call latency into named
segments, and :mod:`repro.obs.slo` evaluates declarative SLO policies
with burn-rate alerting — all deterministic, all mergeable across
processes, and all served back through the runtime's own doors by
:mod:`repro.services.obsd`.
"""

from __future__ import annotations

from repro.obs.attribution import (
    attribution_json,
    attribution_report,
    render_attribution,
)
from repro.obs.export import (
    chrome_trace,
    render_metrics,
    render_summary,
    render_tree,
    span_record,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsMergeError,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.ring import TraceRing
from repro.obs.sketch import Sketch, SketchMergeError
from repro.obs.slo import SloEngine, SloPolicy, render_slo, slo_json
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer, install_tracer
from repro.obs.windows import (
    WindowedSeries,
    WindowMergeError,
    install_windows,
    merge_window_snapshots,
    snapshot_counter_total,
    snapshot_quantile,
    uninstall_windows,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsMergeError",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Sketch",
    "SketchMergeError",
    "SloEngine",
    "SloPolicy",
    "Span",
    "TraceRing",
    "Tracer",
    "WindowMergeError",
    "WindowedSeries",
    "attribution_json",
    "attribution_report",
    "chrome_trace",
    "install_tracer",
    "install_windows",
    "merge_snapshots",
    "merge_window_snapshots",
    "render_attribution",
    "render_metrics",
    "render_slo",
    "render_summary",
    "render_tree",
    "slo_json",
    "snapshot_counter_total",
    "snapshot_quantile",
    "span_record",
    "uninstall_windows",
    "write_chrome_trace",
    "write_jsonl",
]
