"""Declarative SLOs over windowed telemetry, with burn-rate alerting.

An :class:`SloPolicy` states a target over a ``(scope, name)`` pair in
a :class:`~repro.obs.windows.WindowedSeries` — a latency quantile
ceiling, an error-rate ceiling, a goodput floor, or any combination —
and the :class:`SloEngine` evaluates it with the standard multi-window
burn-rate construction: a window *violates* when any target is missed
inside it, and the policy's alert state comes from the fraction of
violating windows over a short (``fast_windows``) and a long
(``slow_windows``) lookback:

* ``page`` — the fast burn is at/above ``fast_burn`` *and* the slow
  burn is at/above ``slow_burn``: the violation is both current and
  sustained (a single glitchy window never pages);
* ``warn`` — exactly one of the two burns trips: either a fresh spike
  the long window has not yet confirmed, or a slow bleed the current
  window happens not to show;
* ``ok`` — neither trips.

Everything runs on simulated time over deterministic windows, so the
same seed produces the same alert states — the soak test diffs whole
SLO reports across runs byte for byte.  Evaluation reads only *closed*
data structures (no clock access, no wall time): it can run live
against a series or offline against a merged snapshot dict pulled over
the wire (``evaluate_snapshot``), and both paths produce identical
states for identical windows, because sketch quantiles depend only on
integer bucket counts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs.sketch import Sketch
from repro.obs.windows import _snapshot_windows

if TYPE_CHECKING:
    from repro.obs.windows import WindowedSeries

__all__ = ["SloPolicy", "SloEngine", "render_slo", "slo_json"]


@dataclass(frozen=True)
class SloPolicy:
    """One service-level objective over windowed telemetry.

    ``scope``/``latency_metric`` name the sketch carrying latencies
    (e.g. ``("counter", "invoke_sim_us")`` for a subcontract, or
    ``("door", "<door-label>.sim_us")`` for one door); ``calls`` and
    ``errors`` name the counters used for error rate and goodput.
    Unset targets are not evaluated.
    """

    name: str
    scope: str
    latency_metric: str = "invoke_sim_us"
    calls: str = "invocations"
    errors: str = "errors"
    #: latency target: quantile ``latency_q`` must stay <= this
    latency_p_us: float | None = None
    latency_q: float = 0.99
    #: error-rate ceiling (errors / calls), evaluated per window
    max_error_rate: float | None = None
    #: goodput floor: (calls - errors) per window must reach this
    min_goodput_per_window: float | None = None
    #: lookbacks, in windows
    fast_windows: int = 2
    slow_windows: int = 12
    #: burn thresholds: fraction of violating windows in each lookback
    fast_burn: float = 1.0
    slow_burn: float = 0.5

    def __post_init__(self) -> None:
        if self.fast_windows < 1 or self.slow_windows < self.fast_windows:
            raise ValueError(
                f"need 1 <= fast_windows <= slow_windows, got "
                f"{self.fast_windows}/{self.slow_windows}"
            )
        if not 0.0 < self.latency_q < 1.0:
            raise ValueError(f"latency_q must be in (0, 1), got {self.latency_q!r}")
        if (
            self.latency_p_us is None
            and self.max_error_rate is None
            and self.min_goodput_per_window is None
        ):
            raise ValueError(f"SLO {self.name!r} sets no target")


class _WindowView:
    """Uniform per-window accessor over live windows or snapshot dicts."""

    __slots__ = ("index", "_counters", "_sketches", "_alpha")

    def __init__(self, index: int, counters, sketches, alpha: float) -> None:
        self.index = index
        self._counters = counters
        self._sketches = sketches
        self._alpha = alpha

    def counter(self, scope: str, name: str) -> int:
        return self._counters.get((scope, name), 0)

    def quantile(self, scope: str, name: str, q: float) -> float | None:
        sketch = self._sketches.get((scope, name))
        if sketch is None:
            return None
        if isinstance(sketch, dict):
            sketch = Sketch.from_snapshot(sketch)
        return sketch.quantile(q)


def _live_views(series: "WindowedSeries") -> list[_WindowView]:
    return [
        _WindowView(w.index, w.counters, w.sketches, series.alpha)
        for w in series.windows()
    ]


def _snapshot_views(snapshot: dict) -> list[_WindowView]:
    views = []
    for window in _snapshot_windows(snapshot, None):
        counters = {
            (scope, name): value for scope, name, value in window["counters"]
        }
        sketches = {
            (scope, name): sketch for scope, name, sketch in window["sketches"]
        }
        views.append(
            _WindowView(window["index"], counters, sketches, snapshot["alpha"])
        )
    return views


class SloEngine:
    """Evaluates a set of policies against windowed telemetry."""

    def __init__(self, policies: "list[SloPolicy] | tuple[SloPolicy, ...]" = ()) -> None:
        self.policies: list[SloPolicy] = list(policies)

    def add(self, policy: SloPolicy) -> SloPolicy:
        self.policies.append(policy)
        return policy

    # -- evaluation -----------------------------------------------------

    def _violates(self, policy: SloPolicy, view: _WindowView) -> tuple[bool, dict]:
        measured: dict = {}
        violated = False
        calls = view.counter(policy.scope, policy.calls)
        errors = view.counter(policy.scope, policy.errors)
        if policy.latency_p_us is not None:
            quantile = view.quantile(
                policy.scope, policy.latency_metric, policy.latency_q
            )
            measured["latency_p_us"] = quantile
            if quantile is not None and quantile > policy.latency_p_us:
                violated = True
        if policy.max_error_rate is not None:
            rate = errors / calls if calls else 0.0
            measured["error_rate"] = round(rate, 6)
            if rate > policy.max_error_rate:
                violated = True
        if policy.min_goodput_per_window is not None:
            goodput = calls - errors
            measured["goodput"] = goodput
            if goodput < policy.min_goodput_per_window:
                violated = True
        return violated, measured

    def _evaluate_views(self, views: list[_WindowView]) -> list[dict]:
        views = sorted(views, key=lambda v: v.index)
        states = []
        for policy in self.policies:
            lookback = views[-policy.slow_windows :]
            verdicts = [self._violates(policy, view) for view in lookback]
            violations = [v for v, _ in verdicts]
            fast = violations[-policy.fast_windows :]
            fast_burn = sum(fast) / len(fast) if fast else 0.0
            slow_burn = (
                sum(violations) / len(violations) if violations else 0.0
            )
            fast_hot = fast_burn >= policy.fast_burn and bool(fast)
            slow_hot = slow_burn >= policy.slow_burn and bool(violations)
            if fast_hot and slow_hot:
                state = "page"
            elif fast_hot or slow_hot:
                state = "warn"
            else:
                state = "ok"
            states.append(
                {
                    "policy": policy.name,
                    "scope": policy.scope,
                    "state": state,
                    "fast_burn": round(fast_burn, 4),
                    "slow_burn": round(slow_burn, 4),
                    "windows_evaluated": len(lookback),
                    "violating_windows": sum(violations),
                    "last": verdicts[-1][1] if verdicts else {},
                }
            )
        return states

    def evaluate(self, series: "WindowedSeries") -> list[dict]:
        """Alert states against a live series (one dict per policy)."""
        return self._evaluate_views(_live_views(series))

    def evaluate_snapshot(self, snapshot: dict) -> list[dict]:
        """Alert states against a snapshot dict (wire-format telemetry)."""
        return self._evaluate_views(_snapshot_views(snapshot))


def render_slo(states: list[dict]) -> str:
    """Deterministic text rendering of SLO alert states."""
    if not states:
        return "no SLO policies configured"
    width = max(len(s["policy"]) for s in states)
    lines = []
    for state in states:
        last = ", ".join(
            f"{key}={value}" for key, value in sorted(state["last"].items())
        )
        lines.append(
            f"{state['policy']:<{width}}  [{state['state']:>4}]"
            f"  fast_burn={state['fast_burn']:<6} slow_burn={state['slow_burn']:<6}"
            f" windows={state['violating_windows']}/{state['windows_evaluated']}"
            f"{('  ' + last) if last else ''}"
        )
    return "\n".join(lines)


def slo_json(states: list[dict]) -> str:
    """Alert states as canonical (sorted-keys) JSON."""
    return json.dumps(states, sort_keys=True, indent=1)
