"""Kernel error hierarchy.

The Spring nucleus reports door failures to callers so that subcontracts
can react: replicon prunes a dead replica on a communication error,
reconnectable re-resolves its object name when a door has gone away, and
ordinary subcontracts surface the failure to the application.  The error
taxonomy below mirrors the distinctions those subcontracts rely on.
"""

from __future__ import annotations

__all__ = [
    "KernelError",
    "InvalidDoorError",
    "DoorRevokedError",
    "DoorAccessError",
    "DomainCrashedError",
    "CommunicationError",
    "NetworkPartitionError",
    "ServerDiedError",
    "ServerBusyError",
    "DeadlineExceeded",
]


class KernelError(Exception):
    """Base class for all errors raised by the Spring nucleus emulation."""


class InvalidDoorError(KernelError):
    """A door identifier does not name any live door.

    Raised when an identifier was deleted, never issued, or belongs to a
    door whose server domain has been destroyed.
    """


class DoorRevokedError(InvalidDoorError):
    """The server explicitly revoked the door (Section 5.2.3).

    Revocation invalidates every outstanding identifier at once; clients
    discover it on their next invocation.
    """


class DoorAccessError(KernelError):
    """A domain used a door identifier it does not own.

    Door identifiers function as software capabilities: only the
    legitimate owner of an identifier may issue a call on its door
    (Section 3.3).  Attempting to use another domain's identifier is a
    protection violation, not a communication failure.
    """


class DomainCrashedError(KernelError):
    """An operation was attempted by or on a crashed domain."""


class CommunicationError(KernelError):
    """A call could not reach the target door.

    This is the failure subcontracts treat as 'the replica/server is
    unreachable' — replicon prunes the target, reconnectable begins its
    recovery protocol.
    """


class NetworkPartitionError(CommunicationError):
    """The network fabric refused to carry the call between two machines."""


class ServerDiedError(CommunicationError):
    """The server domain crashed while (or before) handling the call."""


class ServerBusyError(CommunicationError):
    """The server shed the call under overload (admission control).

    Raised by the :class:`~repro.runtime.admission.AdmissionController`
    when a door's bounded wait queue is full, or when the call's stamped
    deadline would be spent before it could reach the front.  Busy is
    *not* dead: the call never ran, the server is healthy, and the error
    is retryable.  ``retry_after_us`` carries the server's seeded-jitter
    hint of when capacity should free up; retry policies honour it as
    the floor of their next backoff, and circuit breakers must not count
    it as a failure.
    """

    def __init__(self, message: str, retry_after_us: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_us = retry_after_us


class DeadlineExceeded(CommunicationError):
    """The call's deadline expired before it completed.

    A ``deadline_us`` installed with :func:`repro.runtime.deadline.deadline`
    travels in the wire context next to the trace context and is enforced
    at the door, fabric, and network-server legs.  It is a communication
    failure — the server may or may not have executed the operation — but
    retry policies treat it as *non-retryable*: the caller's time budget
    is spent, so retrying would only dishonour the deadline further.
    """
