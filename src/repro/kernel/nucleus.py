"""The Spring nucleus emulation: kernel-mediated door operations.

All operations on doors and door identifiers go through the kernel
(Section 3.3): construction, destruction, copying, transmission, and of
course cross-domain calls.  The kernel also implements:

* capability enforcement — only the owning domain may use an identifier;
* refcounting with *unreferenced notification* — when the last identifier
  for a door is deleted, the door's server is told so it can reclaim the
  underlying state (Section 7);
* revocation — a server invalidates every outstanding identifier at once
  (Section 5.2.3);
* domain crash semantics — a crashed domain's doors die and its
  identifiers evaporate, which is exactly the failure the reconnectable
  subcontract (Section 8.3) exists to mask.

Calls between domains on *different machines* are delegated to the network
fabric installed by :mod:`repro.net`; the kernel only ever performs the
local leg, matching the paper's split between the nucleus and the network
servers.
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Callable

from repro.kernel.clock import CostModel, SimClock
from repro.kernel.doors import (
    Door,
    DoorHandler,
    DoorIdentifier,
    DoorState,
    TransitDoorRef,
)
from repro.kernel.domain import Domain
from repro.kernel.errors import (
    DeadlineExceeded,
    DoorAccessError,
    DoorRevokedError,
    InvalidDoorError,
    ServerDiedError,
)
from repro.obs.tracer import NULL_TRACER

if TYPE_CHECKING:
    from repro.marshal.buffer import MarshalBuffer

__all__ = ["Kernel"]

#: ``REPRO_TSAN=1`` in the environment => every new kernel installs the
#: happens-before race detector on itself (read once at import; the
#: per-call cost stays one attribute read + one branch either way).
_TSAN_FROM_ENV = os.environ.get("REPRO_TSAN", "") not in ("", "0")


class _ThreadDeadline(threading.local):
    """Per-thread deadline slot with a class-level default.

    The default makes the unset read (`self._deadline.value`) an ordinary
    attribute lookup; ``getattr(local, "value", None)`` on a fresh thread
    is AttributeError-driven and ~6x slower — too hot for the gate that
    runs on every door call.
    """

    value: float | None = None


class _ThreadIdem(threading.local):
    """Per-thread idempotency-key slot, class-level default like
    :class:`_ThreadDeadline` (the unset read must stay one attribute
    lookup — this slot is consulted on every door call)."""

    value: int | None = None


class Kernel:
    """One Spring nucleus instance.

    A single kernel may host many domains; :mod:`repro.net` groups domains
    into machines and installs a fabric hook for cross-machine calls.  In
    tests that don't care about machines, all domains share one kernel and
    every door call is a local (cross-domain, same-machine) call.
    """

    def __init__(self, cost_model: CostModel | None = None) -> None:
        self.clock = SimClock(cost_model)
        self.domains: dict[int, Domain] = {}
        self.doors: dict[int, Door] = {}
        # Guards the kernel's capability tables.  Held only across table
        # mutations — never across a door handler, so nested and
        # concurrent calls proceed (domains have threads, Section 3.3).
        self._table_lock = threading.RLock()
        #: optional hook installed by the network layer: called for door
        #: calls whose server lives on a different machine than the caller.
        self.fabric: Callable[[Domain, Door, "MarshalBuffer"], "MarshalBuffer"] | None = None
        # Nested door-call depth is tracked per thread (a chain of nested
        # calls lives on one thread), so the delivery path updates it
        # without touching the table lock.
        self._depth = threading.local()
        #: the observability tracer; preinstalled no-op so hot paths pay
        #: exactly one attribute read + one branch when tracing is off.
        #: Replaced by repro.obs.install_tracer.
        self.tracer = NULL_TRACER
        #: the fault plane (repro.runtime.chaos.FaultPlane) or None; like
        #: the tracer, uninstalled costs one attribute read + one branch
        #: per interception point and zero simulated time.
        self.chaos = None
        # Per-thread absolute call deadline (sim-us); installed by
        # repro.runtime.deadline.deadline() and stamped onto buffers at
        # door_call so the budget follows the call across machines.
        self._deadline = _ThreadDeadline()
        # Per-thread idempotency key; installed by
        # repro.runtime.idem.idempotency_key() and stamped onto buffers
        # at door_call.  Cleared around handler delivery: the key names
        # ONE logical request, so calls a handler makes never inherit it.
        self._idem = _ThreadIdem()
        #: count of live idempotency_key contexts (any thread).  Zero on
        #: the unkeyed fast path, so door_call's stamp gate is one plain
        #: attribute read + branch — the thread-local is only consulted
        #: while some thread actually holds a key.
        self._idem_depth = 0
        # Kernel-scoped sequence counters (txn ids, saga ids, idempotency
        # keys).  Process-global counters leak state between worlds and
        # break seed-swept replays; these reset with the kernel.
        self._seqs: dict[str, int] = {}
        #: the admission controller (repro.runtime.admission) or None;
        #: like chaos, uninstalled costs one attribute read + one branch
        #: at each gate (local door launch, fabric incoming leg) and zero
        #: simulated time.
        self.admission = None
        #: the happens-before race detector (repro.runtime.tsan) or
        #: None; uninstalled costs one attribute read + one branch at
        #: each sync-edge hook and zero simulated time either way.
        self.tsan = None
        if _TSAN_FROM_ENV:
            from repro.runtime.tsan import install_tsan

            install_tsan(self)

    @property
    def call_depth(self) -> int:
        """Depth of the calling thread's nested door-call chain."""
        return getattr(self._depth, "value", 0)

    def next_seq(self, kind: str) -> int:
        """Allocate the next kernel-scoped sequence number for ``kind``.

        Used for identifiers that must be deterministic per world
        (transaction ids, saga ids, idempotency keys): two worlds built
        from the same seed allocate the same numbers in the same order,
        regardless of what other tests ran in the process before them.
        """
        with self._table_lock:
            value = self._seqs.get(kind, 0) + 1
            self._seqs[kind] = value
            return value

    # ------------------------------------------------------------------
    # domains
    # ------------------------------------------------------------------

    def create_domain(self, name: str) -> Domain:
        """Boot a new domain (address space + threads)."""
        with self._table_lock:
            domain = Domain(self, name)
            self.domains[domain.uid] = domain
        ts = self.tsan
        if ts is not None:
            ts.on_domain_created(domain)
        return domain

    def crash_domain(self, domain: Domain) -> None:
        """Terminate a domain abruptly.

        Every door the domain serves becomes DEAD (future calls raise
        :class:`ServerDiedError` wrapped as a communication failure) and
        every identifier the domain owns is deleted — without running
        unreferenced notifications into the crashed domain itself.
        """
        with self._table_lock:
            if not domain.alive:
                return
            domain.alive = False
            for door in list(domain.served_doors.values()):
                door.state = DoorState.DEAD
            # Deleting the crashed domain's identifiers may drop other
            # (still-alive) servers' doors to zero references; those
            # servers do get their unreferenced notification.
            for ident in list(domain.door_ids.values()):
                self._release_identifier(ident)
            domain.door_ids.clear()

    # ------------------------------------------------------------------
    # door construction / destruction
    # ------------------------------------------------------------------

    def create_door(
        self,
        server: Domain,
        handler: DoorHandler,
        unreferenced: Callable[[Door], None] | None = None,
        label: str = "",
    ) -> DoorIdentifier:
        """Create a door served by ``server`` and return its first identifier.

        The returned identifier is owned by ``server``; the server passes
        it (or copies of it) to clients through marshalled objects.
        """
        server.check_alive()
        self.clock.charge("door_create")
        with self._table_lock:
            door = Door(server, handler, unreferenced, label)
            self.doors[door.uid] = door
            server.served_doors[door.uid] = door
            return self._issue_identifier(door, server)

    def copy_door_id(self, domain: Domain, ident: DoorIdentifier) -> DoorIdentifier:
        """Duplicate an identifier (kernel door-id copy; Section 7 simplex copy).

        Copying is permitted even when the door is dead or revoked —
        holding or passing a stale capability is legal (compare Mach dead
        names); only *calls* on it fail.
        """
        domain.check_alive()
        self.clock.charge("door_copy")
        with self._table_lock:
            self._check_usable(domain, ident, for_call=False)
            return self._issue_identifier(ident.door, domain, allow_inactive=True)

    def delete_door_id(self, domain: Domain, ident: DoorIdentifier) -> None:
        """Delete an identifier the domain owns (Section 7 simplex consume).

        When the door's last identifier disappears the kernel notifies the
        door's target so the server-side subcontract can clean up.
        """
        domain.check_alive()
        self.clock.charge("door_delete")
        with self._table_lock:
            if not domain.owns(ident):
                raise DoorAccessError(
                    f"domain {domain.name!r} does not own identifier #{ident.uid}"
                )
            self._release_identifier(ident)

    def revoke_door(self, server: Domain, door: Door) -> None:
        """Server-side revocation (Section 5.2.3).

        The server discards a piece of state even though clients still
        hold objects pointing at it; revoking the underlying door
        effectively prevents further incoming calls.  Outstanding
        identifiers remain in client tables but every use raises
        :class:`DoorRevokedError`.
        """
        server.check_alive()
        with self._table_lock:
            if door.uid not in server.served_doors:
                raise DoorAccessError(
                    f"domain {server.name!r} does not serve door #{door.uid}"
                )
            door.state = DoorState.REVOKED

    # ------------------------------------------------------------------
    # transmission (marshal-layer support)
    # ------------------------------------------------------------------

    def detach_door_id(self, domain: Domain, ident: DoorIdentifier) -> TransitDoorRef:
        """Move an identifier out of a domain and into transit.

        Used when a subcontract marshals an object: the object's door
        identifiers leave the sender's address space (marshal *deletes all
        the local state associated with the object*, Section 5.1.1) but
        keep their refcount unit so the door stays referenced in flight.
        """
        domain.check_alive()
        with self._table_lock:
            self._check_usable(domain, ident, for_call=False)
            domain._disown(ident)
            ident.valid = False
            return TransitDoorRef(ident.door)

    def attach_door_id(self, domain: Domain, transit: TransitDoorRef) -> DoorIdentifier:
        """Materialise an in-transit door reference as a domain-owned identifier."""
        domain.check_alive()
        with self._table_lock:
            if not transit.live:
                raise InvalidDoorError("transit door reference already consumed")
            transit.live = False
            # The refcount unit transfers from the transit ref to the
            # new identifier.
            ident = DoorIdentifier(transit.door, domain)
            domain._adopt(ident)
            return ident

    def discard_transit(self, transit: TransitDoorRef) -> None:
        """Drop an in-transit reference (message destroyed undelivered)."""
        with self._table_lock:
            if not transit.live:
                return
            transit.live = False
            self._drop_ref(transit.door)

    # ------------------------------------------------------------------
    # invocation
    # ------------------------------------------------------------------

    def door_call(
        self, caller: Domain, ident: DoorIdentifier, buffer: "MarshalBuffer"
    ) -> "MarshalBuffer":
        """Execute a cross-address-space call through a door.

        The kernel validates the capability, charges the door-traversal
        cost, translates the buffer's door vector into transit form, and
        delivers the call to the door's handler (normally the server-side
        subcontract).  Cross-machine calls are handed to the network
        fabric, which forwards them to the remote machine's kernel leg.
        """
        caller.check_alive()

        # Deadline gate: refuse to launch a call whose budget is spent.
        # Checked before the capability, so a spent budget wins over a
        # dead door — retry loops must see DeadlineExceeded (which they
        # refuse to retry), not a retryable ServerDiedError.
        dl = self._deadline.value
        if dl is not None and self.clock.now_us >= dl:
            raise DeadlineExceeded(
                f"deadline passed before calling door #{ident.uid} "
                f"({self.clock.now_us - dl:.1f} us over budget)"
            )

        with self._table_lock:
            self._check_usable(caller, ident, for_call=True)
            door = ident.door
            server = door.server
        if not server.alive:
            raise ServerDiedError(
                f"server domain {server.name!r} of door #{door.uid} has crashed"
            )

        # Stamp the deadline onto the buffer's out-of-band slot so the
        # budget follows the call across machines (release/recycle clear
        # the slot, so unbounded calls need no write here).
        if dl is not None:
            buffer.deadline_us = dl

        # Stamp the idempotency key the same way; a retry loop reusing
        # this buffer re-stamps the same key, which is the point.  Gated
        # on the live-context count so the unkeyed path never pays the
        # thread-local read.
        if self._idem_depth:
            ik = self._idem.value
            if ik is not None:
                buffer.idem_key = ik

        chaos = self.chaos
        if chaos is not None:
            chaos.on_door_call(caller, door)

        buffer.seal_for_transmission(caller)

        # Race-detector edge: the request carries the caller's clock to
        # the handler, the reply carries the handler's clock back.
        ts = self.tsan
        if ts is not None:
            ts.on_door_send(door, buffer)

        if self.tracer.enabled:
            reply = self._traced_door_call(caller, door, server, buffer, self.tracer)
            if ts is not None:
                ts.on_reply_receive(reply)
            return reply

        if (
            self.fabric is not None
            and caller.machine is not None
            and server.machine is not None
            and caller.machine is not server.machine
        ):
            reply = self.fabric(caller, door, buffer)
        else:
            admission = self.admission
            if admission is not None:
                reply = self._admitted_local_call(admission, door, buffer)
            else:
                self.clock.charge("door_call")
                # Tracing was just checked off for this same synchronous
                # call: go straight to the untraced delivery body.
                reply = self._deliver_untraced(door, buffer)
        reply.seal_for_transmission(server)
        if ts is not None:
            ts.on_reply_receive(reply)
        return reply

    def _admitted_local_call(
        self, admission, door: Door, buffer: "MarshalBuffer"
    ) -> "MarshalBuffer":
        """Local door-call tail with an admission controller installed.

        The gate sits below the deadline gate (a spent budget beats a
        busy-shed) and above handler dispatch; a shed call raises
        ServerBusyError before the door traversal is even charged.
        """
        permit = admission.admit(door, buffer)
        self.clock.charge("door_call")
        if permit is None:
            return self._deliver(door, buffer)
        try:
            return self._deliver(door, buffer)
        finally:
            admission.complete(permit)

    def _traced_door_call(
        self,
        caller: Domain,
        door: Door,
        server: Domain,
        buffer: "MarshalBuffer",
        tracer,
    ) -> "MarshalBuffer":
        """Traced twin of the door-call tail: opens the door span and
        stamps the trace context onto the buffer's out-of-band slot so it
        crosses the transmission boundary without touching the marshalled
        bytes (domain isolation: only the two integers travel)."""
        remote = (
            self.fabric is not None
            and caller.machine is not None
            and server.machine is not None
            and caller.machine is not server.machine
        )
        name = door.label or f"door#{door.uid}"
        with tracer.begin_span(
            caller, name, "door", door=door.uid, server=server.name, remote=remote
        ) as span:
            buffer.trace_ctx = span.ctx
            try:
                if remote:
                    reply = self.fabric(caller, door, buffer)
                else:
                    admission = self.admission
                    if admission is not None:
                        reply = self._admitted_local_call(admission, door, buffer)
                    else:
                        self.clock.charge("door_call")
                        reply = self._deliver(door, buffer)
            finally:
                buffer.trace_ctx = None
            reply.seal_for_transmission(server)
            return reply

    def _deliver(self, door: Door, buffer: "MarshalBuffer") -> "MarshalBuffer":
        """Run the handler leg of a door call on the server's machine."""
        if self.tracer.enabled:
            return self._traced_deliver(door, buffer, self.tracer)
        return self._deliver_untraced(door, buffer)

    def _deliver_untraced(self, door: Door, buffer: "MarshalBuffer") -> "MarshalBuffer":
        """Untraced delivery body (callers that already know tracing is
        off for this call — the local door-call tail — skip the re-check)."""
        server = door.server
        if not server.alive or door.state is DoorState.DEAD:
            raise ServerDiedError(
                f"server domain {server.name!r} of door #{door.uid} has crashed"
            )
        if door.state is DoorState.REVOKED:
            raise DoorRevokedError(f"door #{door.uid} has been revoked")
        with self._table_lock:
            door.calls_handled += 1
        # The request has been consumed: this is where a crash-mid-call
        # lands (server dies before replying) and where an expired
        # deadline is refused on arrival, before the handler runs.
        dl = buffer.deadline_us
        if dl is not None and self.clock.now_us >= dl:
            raise DeadlineExceeded(
                f"deadline passed before door #{door.uid} handler ran "
                f"({self.clock.now_us - dl:.1f} us over budget)"
            )
        chaos = self.chaos
        if chaos is not None:
            chaos.on_deliver(door)
        depth_local = self._depth
        depth = getattr(depth_local, "value", 0)
        depth_local.value = depth + 1
        # The idempotency key names exactly one logical request: clear
        # the thread slot while the handler runs so its nested calls
        # don't inherit the caller's key, and restore it for the
        # caller's retry loop.  Gated on the buffer's slot — door_call
        # stamps it whenever the thread slot is set, so an unkeyed
        # delivery pays one __slots__ read + branch, never the (much
        # slower) thread-local read.
        if buffer.idem_key is not None:
            idem_local = self._idem
            ik = idem_local.value
            if ik is not None:
                idem_local.value = None
        else:
            ik = None
        ts = self.tsan
        if ts is not None:
            ts.on_door_receive(door, buffer)
        try:
            reply = door.handler(buffer)
        finally:
            depth_local.value = depth
            if ik is not None:
                idem_local.value = ik
        if ts is not None:
            ts.on_reply_send(reply)
        return reply

    def _traced_deliver(
        self, door: Door, buffer: "MarshalBuffer", tracer
    ) -> "MarshalBuffer":
        """Traced twin of :meth:`_deliver`: the handler span's parent is
        taken ONLY from the context that crossed the wire (the buffer's
        out-of-band slot), never from the delivering thread's stack."""
        server = door.server
        if not server.alive or door.state is DoorState.DEAD:
            raise ServerDiedError(
                f"server domain {server.name!r} of door #{door.uid} has crashed"
            )
        if door.state is DoorState.REVOKED:
            raise DoorRevokedError(f"door #{door.uid} has been revoked")
        with self._table_lock:
            door.calls_handled += 1
        dl = buffer.deadline_us
        if dl is not None and self.clock.now_us >= dl:
            raise DeadlineExceeded(
                f"deadline passed before door #{door.uid} handler ran "
                f"({self.clock.now_us - dl:.1f} us over budget)"
            )
        chaos = self.chaos
        if chaos is not None:
            chaos.on_deliver(door)
        depth_local = self._depth
        depth = getattr(depth_local, "value", 0)
        depth_local.value = depth + 1
        # Same key hygiene as the untraced body: the handler's own calls
        # must not inherit the caller's idempotency key.
        if buffer.idem_key is not None:
            idem_local = self._idem
            ik = idem_local.value
            if ik is not None:
                idem_local.value = None
        else:
            ik = None
        ts = self.tsan
        if ts is not None:
            ts.on_door_receive(door, buffer)
        name = door.label or f"door#{door.uid}"
        try:
            with tracer.begin_handler(server, name, buffer.trace_ctx, door=door.uid):
                reply = door.handler(buffer)
        finally:
            depth_local.value = depth
            if ik is not None:
                idem_local.value = ik
        if ts is not None:
            ts.on_reply_send(reply)
        return reply

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _issue_identifier(
        self, door: Door, owner: Domain, allow_inactive: bool = False
    ) -> DoorIdentifier:
        if door.state is not DoorState.ACTIVE and not allow_inactive:
            raise InvalidDoorError(f"door #{door.uid} is {door.state.value}")
        ident = DoorIdentifier(door, owner)
        door.refcount += 1
        owner._adopt(ident)
        return ident

    def _release_identifier(self, ident: DoorIdentifier) -> None:
        if not ident.valid:
            return
        ident.valid = False
        ident.owner._disown(ident)
        self._drop_ref(ident.door)

    def _drop_ref(self, door: Door) -> None:
        door.refcount -= 1
        if door.refcount < 0:  # pragma: no cover - invariant guard
            raise AssertionError(f"door #{door.uid} refcount went negative")
        if door.refcount == 0:
            self._door_unreferenced(door)

    def _door_unreferenced(self, door: Door) -> None:
        """Last identifier gone: notify the door's target, then retire it."""
        server = door.server
        server.served_doors.pop(door.uid, None)
        self.doors.pop(door.uid, None)
        was_active = door.state is DoorState.ACTIVE
        door.state = DoorState.DEAD
        if was_active and server.alive and door.unreferenced is not None:
            door.unreferenced(door)

    def _check_usable(
        self, domain: Domain, ident: DoorIdentifier, for_call: bool
    ) -> None:
        if not domain.owns(ident):
            raise DoorAccessError(
                f"domain {domain.name!r} does not own identifier #{ident.uid}"
            )
        if not ident.valid:
            raise InvalidDoorError(f"identifier #{ident.uid} is no longer valid")
        door = ident.door
        if not for_call:
            # Holding, copying, and transmitting stale capabilities is
            # legal; only calls on them fail.
            return
        if door.state is DoorState.REVOKED:
            raise DoorRevokedError(f"door #{door.uid} has been revoked")
        if door.state is DoorState.DEAD:
            # Calls on a dead door are a communication failure — the
            # signal replicon and reconnectable recover from.
            raise ServerDiedError(f"server of door #{door.uid} has crashed")

    # ------------------------------------------------------------------
    # introspection (tests, benches)
    # ------------------------------------------------------------------

    def live_door_count(self) -> int:
        """Number of doors currently registered with the kernel (E4)."""
        return len(self.doors)
