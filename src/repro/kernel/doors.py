"""Doors: the Spring nucleus' object-oriented IPC endpoints (Section 3.3).

A *door* is a communication endpoint created by a server domain.  Threads
in other domains execute cross-address-space calls through it.  The domain
that creates a door receives a *door identifier*, which it can pass to
other domains so that they can issue calls to the associated door.

The kernel manages every operation on doors and door identifiers —
construction, destruction, copying, and transmission — and door
identifiers function as software capabilities: only the legitimate owner
of an identifier may issue a call on its door.

This module defines the passive data structures; all state transitions go
through :class:`repro.kernel.nucleus.Kernel`.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.kernel.domain import Domain
    from repro.marshal.buffer import MarshalBuffer

__all__ = ["Door", "DoorIdentifier", "DoorState", "TransitDoorRef", "DoorHandler"]

#: Server-side entry point a door delivers incoming calls to.  It receives
#: the (already kernel-translated) argument buffer and returns the reply
#: buffer.  In practice this is a server-side subcontract's call processor
#: (Section 5.2.2), occasionally the server stubs directly.
DoorHandler = Callable[["MarshalBuffer"], "MarshalBuffer"]

_door_uids = itertools.count(1)
_ident_uids = itertools.count(1)


class DoorState(enum.Enum):
    """Lifecycle of a door."""

    ACTIVE = "active"
    REVOKED = "revoked"  # server revoked it (Section 5.2.3)
    DEAD = "dead"        # server domain crashed or door fully released


class Door:
    """A kernel communication endpoint owned by a server domain.

    Attributes:
        uid: kernel-wide unique door number.
        server: the domain that created the door and receives its calls.
        handler: where incoming calls are delivered.
        unreferenced: optional upcall run when the last outstanding
            identifier for this door is deleted, so the server-side
            subcontract can clean up (Section 7, simplex consume).
    """

    def __init__(
        self,
        server: "Domain",
        handler: DoorHandler,
        unreferenced: Callable[["Door"], None] | None = None,
        label: str = "",
    ) -> None:
        self.uid = next(_door_uids)
        self.server = server
        self.handler = handler
        self.unreferenced = unreferenced
        self.label = label
        self.state = DoorState.ACTIVE
        #: outstanding identifiers (owned or in transit) naming this door
        self.refcount = 0
        #: statistics, used by benches (E4) and tests
        self.calls_handled = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" {self.label!r}" if self.label else ""
        return (
            f"<Door #{self.uid}{tag} {self.state.value}"
            f" refs={self.refcount} server={self.server.name!r}>"
        )


class DoorIdentifier:
    """A capability naming a door, owned by exactly one domain.

    Identifiers are unforgeable in this emulation because the marshal
    layer never serialises them as bytes: they travel out-of-band in a
    buffer's door vector and are translated by the kernel at transmission
    time (compare Mach port rights).
    """

    def __init__(self, door: Door, owner: "Domain") -> None:
        self.uid = next(_ident_uids)
        self.door = door
        self.owner = owner
        self.valid = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "valid" if self.valid else "invalid"
        return (
            f"<DoorIdentifier #{self.uid} door=#{self.door.uid}"
            f" owner={self.owner.name!r} {status}>"
        )


class TransitDoorRef:
    """A door reference detached from any domain, riding in a buffer.

    Created when a door identifier is marshalled (the sender's identifier
    is consumed); converted back into a domain-owned identifier when the
    receiving domain unmarshals it.  While in transit it holds one unit of
    the door's refcount, so a door cannot become unreferenced while a
    message naming it is in flight.
    """

    def __init__(self, door: Door) -> None:
        self.door = door
        self.live = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "live" if self.live else "consumed"
        return f"<TransitDoorRef door=#{self.door.uid} {status}>"
