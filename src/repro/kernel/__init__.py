"""Spring nucleus emulation: domains, doors, and the kernel call gate.

This package reproduces the substrate described in Section 3.3 of the
paper ("Doors") and [Hamilton & Kougiouris 1993]: an object-oriented IPC
mechanism in which door identifiers function as software capabilities and
the kernel mediates their construction, destruction, copying, and
transmission.
"""

from repro.kernel.clock import ClockWindow, CostModel, SimClock
from repro.kernel.domain import Domain
from repro.kernel.doors import Door, DoorIdentifier, DoorState, TransitDoorRef
from repro.kernel.errors import (
    CommunicationError,
    DomainCrashedError,
    DoorAccessError,
    DoorRevokedError,
    InvalidDoorError,
    KernelError,
    NetworkPartitionError,
    ServerDiedError,
)
from repro.kernel.nucleus import Kernel

__all__ = [
    "ClockWindow",
    "CostModel",
    "SimClock",
    "Domain",
    "Door",
    "DoorIdentifier",
    "DoorState",
    "TransitDoorRef",
    "Kernel",
    "KernelError",
    "InvalidDoorError",
    "DoorRevokedError",
    "DoorAccessError",
    "DomainCrashedError",
    "CommunicationError",
    "NetworkPartitionError",
    "ServerDiedError",
]
