"""Simulated clock used for hardware-independent cost accounting.

The paper's quantitative claims (Section 9.3) are about *added* cost:
subcontract adds "less than 2 microseconds" to a minimal remote call on a
SPARCstation 2.  We cannot reproduce SPARCstation absolute numbers, but we
can reproduce the structure of the accounting: every local call, indirect
call, door traversal, byte marshalled, and network hop has a configurable
simulated cost, and benchmarks report both wall-clock time (via
pytest-benchmark) and simulated microseconds (via this clock).

The clock is deliberately simple — a monotonically increasing float plus a
cost table — so that tests can assert exact charge sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CostModel", "SimClock"]


@dataclass(frozen=True)
class CostModel:
    """Per-event simulated costs, in microseconds.

    Defaults are loosely calibrated to the early-90s numbers the paper's
    citations report (Springs doors ~O(100) microseconds cross-domain,
    indirect procedure calls well under a microsecond), so the *ratios*
    the paper relies on hold: a local call is vastly cheaper than a door
    call, which is cheaper than a network call, and subcontract's extra
    indirect calls are a tiny fraction of any cross-domain call.
    """

    local_call_us: float = 0.2
    indirect_call_us: float = 0.4
    door_call_us: float = 110.0
    network_hop_us: float = 1200.0
    marshal_byte_us: float = 0.01
    marshal_door_id_us: float = 3.0
    door_create_us: float = 45.0
    door_copy_us: float = 5.0
    door_delete_us: float = 4.0
    library_load_us: float = 25000.0
    memory_copy_byte_us: float = 0.005


class SimClock:
    """Accumulates simulated time for a kernel instance.

    The clock never goes backwards.  ``charge`` adds a named cost from the
    cost model; ``advance`` adds an explicit duration (used by the network
    fabric's latency model).  A per-category tally is kept so benches can
    report a breakdown (e.g. how much of a call was door traversal versus
    marshalling).
    """

    def __init__(self, model: CostModel | None = None) -> None:
        import threading

        self.model = model or CostModel()
        self._now_us = 0.0
        self._tally: dict[str, float] = {}
        # Domains are "an address space plus a collection of threads";
        # concurrent callers may charge the clock simultaneously.
        self._lock = threading.Lock()

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds since kernel boot."""
        return self._now_us

    def charge(self, event: str, count: float = 1.0) -> float:
        """Charge ``count`` occurrences of ``event`` from the cost model.

        ``event`` must name a ``CostModel`` field without the ``_us``
        suffix (e.g. ``"door_call"``).  Returns the charged duration.
        """
        unit = getattr(self.model, f"{event}_us")
        duration = unit * count
        with self._lock:
            self._now_us += duration
            self._tally[event] = self._tally.get(event, 0.0) + duration
        return duration

    def advance(self, duration_us: float, category: str = "explicit") -> None:
        """Advance the clock by an explicit duration (e.g. network latency)."""
        if duration_us < 0:
            raise ValueError(f"cannot advance clock by {duration_us} us")
        with self._lock:
            self._now_us += duration_us
            self._tally[category] = self._tally.get(category, 0.0) + duration_us

    def tally(self) -> dict[str, float]:
        """Return a copy of the per-category simulated-time breakdown."""
        return dict(self._tally)

    def reset_tally(self) -> None:
        """Zero the per-category breakdown without rewinding the clock."""
        self._tally.clear()


class ClockWindow:
    """Measure simulated time across a region: ``with ClockWindow(clock) as w``."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self.elapsed_us = 0.0
        self._start = 0.0

    def __enter__(self) -> "ClockWindow":
        self._start = self._clock.now_us
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed_us = self._clock.now_us - self._start


__all__.append("ClockWindow")
