"""Simulated clock used for hardware-independent cost accounting.

The paper's quantitative claims (Section 9.3) are about *added* cost:
subcontract adds "less than 2 microseconds" to a minimal remote call on a
SPARCstation 2.  We cannot reproduce SPARCstation absolute numbers, but we
can reproduce the structure of the accounting: every local call, indirect
call, door traversal, byte marshalled, and network hop has a configurable
simulated cost, and benchmarks report both wall-clock time (via
pytest-benchmark) and simulated microseconds (via this clock).

The clock is deliberately simple in its *model* — a monotonically
increasing float plus a cost table, so tests can assert exact charge
sequences — but its *implementation* is built for the invocation hot
path: charges go to per-thread tally shards (no lock, no contention) and
are merged only when ``now_us`` or ``tally()`` is read.  Batching the
bookkeeping this way changes when a charge becomes visible to a reader in
another thread, never the simulated total: within one thread, charges
accumulate in exactly the order they are made, so single-threaded charge
sequences produce bit-for-bit the same floats as a single shared
accumulator would.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields

__all__ = ["CostModel", "SimClock"]


@dataclass(frozen=True)
class CostModel:
    """Per-event simulated costs, in microseconds.

    Defaults are loosely calibrated to the early-90s numbers the paper's
    citations report (Springs doors ~O(100) microseconds cross-domain,
    indirect procedure calls well under a microsecond), so the *ratios*
    the paper relies on hold: a local call is vastly cheaper than a door
    call, which is cheaper than a network call, and subcontract's extra
    indirect calls are a tiny fraction of any cross-domain call.
    """

    local_call_us: float = 0.2
    indirect_call_us: float = 0.4
    door_call_us: float = 110.0
    network_hop_us: float = 1200.0
    marshal_byte_us: float = 0.01
    marshal_door_id_us: float = 3.0
    door_create_us: float = 45.0
    door_copy_us: float = 5.0
    door_delete_us: float = 4.0
    library_load_us: float = 25000.0
    memory_copy_byte_us: float = 0.005
    # Tracing probe costs (repro.obs): charged only while a tracer is
    # enabled, so untraced runs accumulate bit-for-bit identical totals.
    trace_span_us: float = 0.6
    trace_event_us: float = 0.15
    # Windowed-telemetry probe cost (repro.obs v2): charged per sketch/
    # counter update only while a WindowedSeries is installed on the
    # tracer; uninstalled runs charge nothing.
    window_probe_us: float = 0.1


class _TallyShard:
    """One thread's private slice of a clock's accounting.

    Shards are append-only registered and never removed: a shard outlives
    its thread so the time it charged is never forgotten.
    """

    __slots__ = ("total_us", "events")

    def __init__(self) -> None:
        self.total_us = 0.0
        self.events: dict[str, float] = {}


class SimClock:
    """Accumulates simulated time for a kernel instance.

    The clock never goes backwards.  ``charge`` adds a named cost from the
    cost model; ``advance`` adds an explicit duration (used by the network
    fabric's latency model).  A per-category tally is kept so benches can
    report a breakdown (e.g. how much of a call was door traversal versus
    marshalling).

    Concurrency: domains are "an address space plus a collection of
    threads", so concurrent callers may charge the clock simultaneously.
    Each thread charges its own :class:`_TallyShard`; readers merge the
    shards.  Shard floats only ever grow, so reads are monotonic.
    """

    def __init__(self, model: CostModel | None = None) -> None:
        self.model = model or CostModel()
        #: event name -> unit cost, precomputed so the hot path never
        #: builds an f-string or takes a getattr on a dataclass.
        self._units: dict[str, float] = {
            f.name[:-3]: getattr(self.model, f.name) for f in fields(self.model)
        }
        self._marshal_byte_us = self._units["marshal_byte"]
        self._local = threading.local()
        self._shards: list[_TallyShard] = []
        # Guards shard registration only — never a charge.
        self._register_lock = threading.Lock()

    # -- shard plumbing ------------------------------------------------

    def _new_shard(self) -> _TallyShard:
        shard = _TallyShard()
        with self._register_lock:
            self._shards.append(shard)
        self._local.shard = shard
        return shard

    # -- writes (hot path, lock-free) ----------------------------------

    def charge(self, event: str, count: float = 1.0) -> float:
        """Charge ``count`` occurrences of ``event`` from the cost model.

        ``event`` must name a ``CostModel`` field without the ``_us``
        suffix (e.g. ``"door_call"``).  Returns the charged duration.
        """
        try:
            unit = self._units[event]
        except KeyError:
            # Unknown events keep the historical AttributeError contract;
            # cost-model subclasses with extra fields get memoised here.
            unit = getattr(self.model, f"{event}_us")
            self._units[event] = unit
        duration = unit * count
        try:
            shard = self._local.shard
        except AttributeError:
            shard = self._new_shard()
        shard.total_us += duration
        events = shard.events
        events[event] = events.get(event, 0.0) + duration
        return duration

    def charge_bytes(self, count: int) -> float:
        """Batched ``marshal_byte`` charge: one call per marshalled item.

        Identical float arithmetic to ``charge("marshal_byte", count)``
        (unit * count, accumulated once), just without the event lookup.
        """
        duration = self._marshal_byte_us * count
        try:
            shard = self._local.shard
        except AttributeError:
            shard = self._new_shard()
        shard.total_us += duration
        events = shard.events
        events["marshal_byte"] = events.get("marshal_byte", 0.0) + duration
        return duration

    def advance(self, duration_us: float, category: str = "explicit") -> None:
        """Advance the clock by an explicit duration (e.g. network latency)."""
        if duration_us < 0:
            raise ValueError(f"cannot advance clock by {duration_us} us")
        try:
            shard = self._local.shard
        except AttributeError:
            shard = self._new_shard()
        shard.total_us += duration_us
        events = shard.events
        events[category] = events.get(category, 0.0) + duration_us

    # -- reads (merge shards) ------------------------------------------

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds since kernel boot."""
        shards = self._shards
        if len(shards) == 1:
            return shards[0].total_us
        total = 0.0
        for shard in shards:
            total += shard.total_us
        return total

    def tally(self) -> dict[str, float]:
        """Return a merged copy of the per-category simulated-time breakdown."""
        merged: dict[str, float] = {}
        with self._register_lock:
            shards = list(self._shards)
        for shard in shards:
            for event, spent_us in list(shard.events.items()):
                merged[event] = merged.get(event, 0.0) + spent_us
        return merged

    def reset_tally(self) -> None:
        """Zero the per-category breakdown without rewinding the clock."""
        with self._register_lock:
            shards = list(self._shards)
        for shard in shards:
            shard.events.clear()


class ClockWindow:
    """Measure simulated time across a region: ``with ClockWindow(clock) as w``."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self.elapsed_us = 0.0
        self._start = 0.0

    def __enter__(self) -> "ClockWindow":
        self._start = self._clock.now_us
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed_us = self._clock.now_us - self._start


__all__.append("ClockWindow")
