"""Domains: Spring's unit of protection (Section 3.3).

"Spring applications run as separate *domains*.  Each domain is an address
space plus a collection of threads."

In this emulation a domain is an isolated object space: the only supported
ways for state to leave a domain are (a) bytes written into a marshal
buffer and (b) kernel-translated door identifiers.  Python references are
never handed across domains by the library itself; tests assert this
discipline at the marshal layer.

Each domain carries a subcontract registry (attached lazily by
:mod:`repro.core.registry`) because Section 6.2's dynamic discovery is a
per-domain event: *this* program may not yet have the replicon library
loaded even though its peer does.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any

from repro.kernel.errors import DomainCrashedError
from repro.marshal.buffer import MarshalBuffer

if TYPE_CHECKING:
    from repro.kernel.doors import DoorIdentifier
    from repro.kernel.nucleus import Kernel

__all__ = ["Domain"]

_domain_uids = itertools.count(1)


class Domain:
    """An address space plus a collection of threads.

    Domains are created through :meth:`Kernel.create_domain`; they keep a
    back-reference to their kernel so higher layers (marshal buffers,
    subcontracts) can reach kernel services through the domain they are
    acting for.
    """

    def __init__(self, kernel: "Kernel", name: str) -> None:
        self.uid = next(_domain_uids)
        self.kernel = kernel
        self.name = name
        self.alive = True
        #: door identifiers owned by this domain, keyed by identifier uid
        self.door_ids: dict[int, "DoorIdentifier"] = {}
        #: doors this domain serves (it created them), keyed by door uid
        self.served_doors: dict[int, Any] = {}
        #: machine this domain runs on; assigned by repro.net.machine
        self.machine: Any | None = None
        #: per-domain subcontract registry; attached by repro.core.registry
        self.subcontract_registry: Any | None = None
        #: scratch storage for services running in this domain
        self.locals: dict[str, Any] = {}
        #: free-list of reusable marshal buffers (invocation hot path)
        self._buffer_pool: list[MarshalBuffer] = []
        #: pool-lifecycle counters; at quiescence acquires == releases,
        #: which is the no-leak invariant the chaos soak asserts
        self.buffer_acquires = 0
        self.buffer_releases = 0
        #: per-domain span ring; attached lazily by repro.obs when tracing
        self._trace_ring: Any | None = None

    # ------------------------------------------------------------------
    # marshal-buffer pool (invocation hot path)
    # ------------------------------------------------------------------

    def acquire_buffer(self) -> MarshalBuffer:
        """Take a reusable marshal buffer from this domain's free-list.

        The buffer's :meth:`~repro.marshal.buffer.MarshalBuffer.release`
        resets it and returns it here.  List append/pop are atomic under
        the GIL, so domain threads share the pool without a lock.
        """
        self.buffer_acquires += 1
        pool = self._buffer_pool
        if pool:
            buffer = pool.pop()
            ts = self.kernel.tsan
            if ts is not None:
                ts.on_buffer_acquire(buffer)
            buffer._pooled = False
            # Re-arm the real streams (release() left use-after-release
            # sentinels in their place) before the pristine check reads them.
            buffer._enc = buffer._real_enc
            buffer._dec = buffer._real_dec
            buffer._released_at = None
            buffer._check_pristine()
            return buffer
        buffer = MarshalBuffer(self.kernel)
        buffer._home = self
        return buffer

    # ------------------------------------------------------------------
    # capability bookkeeping (called only by the kernel)
    # ------------------------------------------------------------------

    def _adopt(self, ident: "DoorIdentifier") -> None:
        self.door_ids[ident.uid] = ident

    def _disown(self, ident: "DoorIdentifier") -> None:
        self.door_ids.pop(ident.uid, None)

    def owns(self, ident: "DoorIdentifier") -> bool:
        """True when this domain is the current legitimate owner of ``ident``."""
        return ident.uid in self.door_ids and ident.owner is self

    def check_alive(self) -> None:
        """Raise :class:`DomainCrashedError` unless this domain is running."""
        if not self.alive:
            raise DomainCrashedError(f"domain {self.name!r} has crashed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "alive" if self.alive else "crashed"
        return f"<Domain #{self.uid} {self.name!r} {status} ids={len(self.door_ids)}>"
