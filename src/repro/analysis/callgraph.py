"""Whole-program context for springlint: module index plus call graph.

springlint's first rules worked a module at a time, with one level of
call resolution inside a single file.  That misses exactly the defects a
distributed runtime grows: a lock-ordering cycle threaded through three
modules, or a shared structure mutated from a helper two calls away from
the lock that guards it.  This module supplies the missing context:

* :class:`Program` — every parsed :class:`SourceModule` of a run, with
  a lazily built :class:`CallGraph`; handed to whole-program rules via
  :meth:`repro.analysis.engine.Rule.begin`;
* :class:`CallGraph` — an index of every function and class in the
  program, import tables per module, and best-effort static call
  resolution (``self`` methods including inherited ones, same-module
  and imported functions, module-alias attributes, constructor calls,
  and attribute calls through *annotated* receivers such as
  ``rep: RepliconRep``).

Resolution is deliberately conservative: an unresolvable call simply
contributes no edge.  Rules built on the graph therefore under-report
rather than invent findings — the right polarity for a linter whose
clean run gates CI.

Everything here is derived from source text (``ast``), never from
importing the analyzed code, so the graph builds for broken trees and
deliberately racy fixtures alike.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:
    from repro.analysis.engine import SourceModule

__all__ = ["CallGraph", "FunctionInfo", "Program", "module_name_for"]

#: (module path, class name or None, function name) — the identity of a
#: function definition program-wide.  Nested functions are keyed by a
#: dotted function name ("export.handler").
FuncKey = tuple[str, "str | None", str]


def module_name_for(path: str) -> str:
    """Best-effort dotted module name for a file path.

    Paths under a ``src`` component use the package layout
    (``.../src/repro/runtime/tsan.py`` -> ``repro.runtime.tsan``);
    anything else (test fixtures, scratch files) falls back to the stem.
    """
    parts = path.replace("\\", "/").split("/")
    stem_parts = parts[:-1] + [parts[-1].rsplit(".", 1)[0]]
    if "src" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("src")
        dotted = stem_parts[anchor + 1 :]
        if dotted:
            if dotted[-1] == "__init__":
                dotted = dotted[:-1]
            if dotted:
                return ".".join(dotted)
    return stem_parts[-1]


class FunctionInfo:
    """One function definition: its AST, owner class, and annotations."""

    __slots__ = ("key", "node", "module", "class_name", "annotations", "calls")

    def __init__(
        self,
        key: FuncKey,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        module: "SourceModule",
        class_name: str | None,
    ) -> None:
        self.key = key
        self.node = node
        self.module = module
        self.class_name = class_name
        #: local/parameter name -> annotated type name (last component)
        self.annotations: dict[str, str] = {}
        #: every ast.Call in the body (nested defs excluded)
        self.calls: list[ast.Call] = []


def _annotation_name(node: ast.expr | None) -> str | None:
    """The bare class name an annotation denotes, if recognizable."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotations: 'RepliconRep', 'RepliconRep | None'
        text = node.value.split("|")[0].strip().strip('"')
        return text.rsplit(".", 1)[-1] or None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # X | None: take the non-None side
        for side in (node.left, node.right):
            name = _annotation_name(side)
            if name and name != "None":
                return name
    if isinstance(node, ast.Subscript):
        # Optional[X] and friends: look inside
        return _annotation_name(
            node.slice if not isinstance(node.slice, ast.Tuple) else None
        )
    return None


class _FunctionCollector(ast.NodeVisitor):
    """Fill one FunctionInfo: annotations and calls, skipping nested defs
    (each nested def is collected as its own function)."""

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info

    def visit_Call(self, node: ast.Call) -> None:
        self.info.calls.append(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            name = _annotation_name(node.annotation)
            if name:
                self.info.annotations[node.target.id] = name
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass


class CallGraph:
    """Function index + import tables + static call resolution."""

    def __init__(self, modules: Iterable["SourceModule"]) -> None:
        self.modules = list(modules)
        #: FuncKey -> FunctionInfo
        self.functions: dict[FuncKey, FunctionInfo] = {}
        #: (module path, class name) -> list of base-class names
        self.class_bases: dict[tuple[str, str], list[str]] = {}
        #: bare class name -> module paths defining it (program-wide)
        self.class_sites: dict[str, list[str]] = {}
        #: module path -> {local alias -> dotted module name}
        self.module_aliases: dict[str, dict[str, str]] = {}
        #: module path -> {local name -> (dotted module, original name)}
        self.from_imports: dict[str, dict[str, tuple[str, str]]] = {}
        #: dotted module name -> module path
        self.dotted_paths: dict[str, str] = {}
        self._callees: dict[FuncKey, tuple[FuncKey, ...]] = {}
        for module in self.modules:
            self.dotted_paths[module_name_for(module.path)] = module.path
        for module in self.modules:
            self._index_module(module)

    # -- construction ----------------------------------------------------

    def _index_module(self, module: "SourceModule") -> None:
        path = module.path
        aliases = self.module_aliases.setdefault(path, {})
        froms = self.from_imports.setdefault(path, {})
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".", 1)[0]
                    aliases[local] = item.name if item.asname else item.name.split(".", 1)[0]
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    prefix_parts = module_name_for(path).split(".")
                    prefix_parts = prefix_parts[: len(prefix_parts) - node.level]
                    base = ".".join(prefix_parts + ([node.module] if node.module else []))
                for item in node.names:
                    local = item.asname or item.name
                    dotted_child = f"{base}.{item.name}" if base else item.name
                    if dotted_child in self.dotted_paths:
                        # ``from pkg import mod``: the name is a module
                        aliases[local] = dotted_child
                    else:
                        froms[local] = (base, item.name)
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, None, node.name, node)
            elif isinstance(node, ast.ClassDef):
                self.class_bases[(path, node.name)] = [
                    b
                    for b in (
                        base.id
                        if isinstance(base, ast.Name)
                        else base.attr
                        if isinstance(base, ast.Attribute)
                        else None
                        for base in node.bases
                    )
                    if b
                ]
                self.class_sites.setdefault(node.name, []).append(path)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._index_function(module, node.name, item.name, item)

    def _index_function(
        self,
        module: "SourceModule",
        class_name: str | None,
        func_name: str,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> None:
        key: FuncKey = (module.path, class_name, func_name)
        info = FunctionInfo(key, node, module, class_name)
        for arg in (
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
        ):
            name = _annotation_name(arg.annotation)
            if name:
                info.annotations[arg.arg] = name
        collector = _FunctionCollector(info)
        for stmt in node.body:
            collector.visit(stmt)
        self.functions[key] = info
        # Nested defs become their own dotted-named functions.
        for stmt in node.body:
            self._index_nested(module, class_name, func_name, stmt)

    def _index_nested(
        self,
        module: "SourceModule",
        class_name: str | None,
        outer: str,
        stmt: ast.stmt,
    ) -> None:
        # Only defs at this nesting level: a def's own body is indexed by
        # the recursive _index_function call, under its dotted name.
        todo: list[ast.AST] = [stmt]
        while todo:
            node = todo.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(
                    module, class_name, f"{outer}.{node.name}", node
                )
                continue
            if isinstance(node, ast.ClassDef):
                continue
            todo.extend(ast.iter_child_nodes(node))

    # -- resolution ------------------------------------------------------

    def resolve_class(self, module_path: str, name: str) -> str | None:
        """The module path defining class ``name`` as seen from a module."""
        if (module_path, name) in self.class_bases:
            return module_path
        froms = self.from_imports.get(module_path, {})
        if name in froms:
            dotted, orig = froms[name]
            target = self.dotted_paths.get(dotted)
            if target is not None and (target, orig) in self.class_bases:
                return target
        sites = self.class_sites.get(name, ())
        if len(sites) == 1:
            return sites[0]
        return None

    def _method_on(self, class_path: str, class_name: str, meth: str) -> FuncKey | None:
        """Find ``meth`` on a class or (by name) up its base chain."""
        seen: set[tuple[str, str]] = set()
        stack = [(class_path, class_name)]
        while stack:
            path, cls = stack.pop()
            if (path, cls) in seen:
                continue
            seen.add((path, cls))
            key = (path, cls, meth)
            if key in self.functions:
                return key
            for base in self.class_bases.get((path, cls), ()):
                base_path = self.resolve_class(path, base)
                if base_path is not None:
                    stack.append((base_path, base))
        return None

    def resolve_call(
        self,
        caller: FunctionInfo,
        call: ast.Call,
        extra_annotations: dict[str, str] | None = None,
    ) -> FuncKey | None:
        """The FuncKey a call statically resolves to, or None."""
        module_path = caller.module.path
        func = call.func
        ann = caller.annotations
        if extra_annotations:
            ann = {**ann, **extra_annotations}
        if isinstance(func, ast.Name):
            name = func.id
            direct = (module_path, None, name)
            if direct in self.functions:
                return direct
            froms = self.from_imports.get(module_path, {})
            if name in froms:
                dotted, orig = froms[name]
                target = self.dotted_paths.get(dotted)
                if target is not None:
                    imported = (target, None, orig)
                    if imported in self.functions:
                        return imported
                    # ``from mod import Cls`` then ``Cls()``: constructor
                    if (target, orig) in self.class_bases:
                        return self._method_on(target, orig, "__init__")
            if (module_path, name) in self.class_bases:
                return self._method_on(module_path, name, "__init__")
            return None
        if isinstance(func, ast.Attribute):
            meth = func.attr
            value = func.value
            if isinstance(value, ast.Name):
                receiver = value.id
                if receiver == "self" and caller.class_name is not None:
                    owner = caller.class_name.split(".", 1)[0]
                    return self._method_on(module_path, owner, meth)
                if receiver in ann:
                    cls = ann[receiver]
                    cls_path = self.resolve_class(module_path, cls)
                    if cls_path is not None:
                        return self._method_on(cls_path, cls, meth)
                aliases = self.module_aliases.get(module_path, {})
                if receiver in aliases:
                    target = self.dotted_paths.get(aliases[receiver])
                    if target is not None:
                        key = (target, None, meth)
                        if key in self.functions:
                            return key
                        if (target, meth) in self.class_bases:
                            return self._method_on(target, meth, "__init__")
                # ``Cls.method(...)`` through the class itself (classes
                # are the only bare names resolve_class recognizes, so a
                # plain variable receiver falls through to None here)
                cls_path = self.resolve_class(module_path, receiver)
                if cls_path is not None:
                    return self._method_on(cls_path, receiver, meth)
        return None

    def callees(self, key: FuncKey) -> tuple[FuncKey, ...]:
        """Every function a function's body can statically reach (one hop)."""
        cached = self._callees.get(key)
        if cached is not None:
            return cached
        info = self.functions.get(key)
        if info is None:
            self._callees[key] = ()
            return ()
        out: list[FuncKey] = []
        seen: set[FuncKey] = set()
        for call in info.calls:
            resolved = self.resolve_call(info, call)
            if resolved is not None and resolved not in seen:
                seen.add(resolved)
                out.append(resolved)
        result = tuple(out)
        self._callees[key] = result
        return result

    def call_sites(self) -> Iterator[tuple[FunctionInfo, ast.Call, FuncKey]]:
        """Yield every statically resolved call in the program."""
        for info in self.functions.values():
            for call in info.calls:
                resolved = self.resolve_call(info, call)
                if resolved is not None:
                    yield info, call, resolved


class Program:
    """Everything a whole-program rule can see: modules + call graph."""

    def __init__(self, modules: Iterable["SourceModule"]) -> None:
        self.modules = list(modules)
        self.by_path = {m.path: m for m in self.modules}
        self._callgraph: CallGraph | None = None

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = CallGraph(self.modules)
        return self._callgraph
