"""lock-ordering: the static lock-acquisition graph must be acyclic.

Distributed runtimes deadlock the boring way: thread A holds lock X and
wants Y while thread B holds Y and wants X.  The fix is a global
acquisition order, and an acquisition order is easy to check statically:
build a directed graph with an edge X -> Y whenever the code can acquire
Y while holding X, and demand the graph has no cycles.

Lock acquisitions are recognized as ``with`` statements whose context
expression *names* a lock — a bare name or attribute whose identifier
contains ``lock`` (but not ``clock``; ``ClockWindow`` is not a mutex).
Call expressions (``with Foo():``) are ignored: those are constructors
or context-manager factories, not held mutexes.  Locks are keyed as
``ClassName.attr`` for ``self`` attributes (so every method of a class
shares one node per lock field) and by qualified function name for
locals.

Edges come from two places:

* **lexical nesting** — a ``with b_lock:`` inside a ``with a_lock:``
  adds a -> b;
* **one-level calls** — calling ``self.method()`` or a same-module
  function while holding a lock adds an edge to every lock that callee
  acquires at its top level.  Deeper transitive resolution is
  deliberately out of scope; one level catches the classic
  "public method takes the lock, calls another public method that takes
  another lock" pattern without whole-program points-to analysis.

Cycles are reported once per cycle, as warnings, at the site of the
first edge the walker saw.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, Rule, SourceModule

__all__ = ["LockOrderingRule"]


def _lock_name(expr: ast.expr) -> str | None:
    """The identifier a ``with`` context names, if it looks like a lock."""
    if isinstance(expr, ast.Name):
        ident = expr.id
    elif isinstance(expr, ast.Attribute):
        ident = expr.attr
    else:
        return None  # calls, subscripts: not a held lock object
    lowered = ident.lower()
    if "lock" in lowered and "clock" not in lowered:
        return ident
    return None


class _FunctionScan(ast.NodeVisitor):
    """Collect lock acquisitions and calls-under-lock for one function."""

    def __init__(self, rule: "LockOrderingRule", module: SourceModule,
                 class_name: str | None, func_name: str) -> None:
        self.rule = rule
        self.module = module
        self.class_name = class_name
        self.func_name = func_name
        #: stack of lock keys currently held (lexically)
        self.held: list[str] = []
        #: lock keys acquired anywhere in this function body
        self.acquired: set[str] = set()

    def _key(self, expr: ast.expr, ident: str) -> str:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and self.class_name
        ):
            return f"{self.class_name}.{ident}"
        if isinstance(expr, ast.Attribute):
            return ident  # cls-level or module object attribute: key by field
        return f"{self.class_name or self.module.path}.{self.func_name}.{ident}"

    def visit_With(self, node: ast.With) -> None:
        taken: list[str] = []
        for item in node.items:
            ident = _lock_name(item.context_expr)
            if ident is None:
                continue
            key = self._key(item.context_expr, ident)
            self.acquired.add(key)
            for holder in self.held:
                if holder != key:
                    self.rule.add_edge(holder, key, self.module, node)
            self.held.append(key)
            taken.append(key)
        for stmt in node.body:
            self.visit(stmt)
        for _ in taken:
            self.held.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if self.held:
            callee = None
            if (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and self.class_name
            ):
                callee = (self.class_name, node.func.attr)
            elif isinstance(node.func, ast.Name):
                callee = (None, node.func.id)
            if callee is not None:
                self.rule.add_call_edge(
                    list(self.held), self.module, callee, node
                )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are scanned as their own functions

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass


class LockOrderingRule(Rule):
    name = "lock-ordering"
    description = (
        "the static lock-acquisition graph (with-blocks plus one level "
        "of calls) must contain no cycles"
    )

    def __init__(self) -> None:
        #: lock key -> {lock key acquired while holding it}
        self.edges: dict[str, dict[str, tuple[SourceModule, int, int]]] = {}
        #: (module_key, class_or_None, func_name) -> set of lock keys
        self._acquires: dict[tuple[str, str | None, str], set[str]] = {}
        #: deferred call edges: (held-keys, module, callee, site)
        self._pending_calls: list[
            tuple[list[str], SourceModule, tuple[str | None, str], ast.Call]
        ] = []

    def add_edge(
        self, frm: str, to: str, module: SourceModule, site: ast.AST
    ) -> None:
        self.edges.setdefault(frm, {}).setdefault(
            to, (module, site.lineno, site.col_offset)
        )

    def add_call_edge(
        self,
        held: list[str],
        module: SourceModule,
        callee: tuple[str | None, str],
        site: ast.Call,
    ) -> None:
        self._pending_calls.append((held, module, callee, site))

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(module, None, node)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._scan_function(module, node.name, item)
        return iter(())

    def _scan_function(
        self,
        module: SourceModule,
        class_name: str | None,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        scan = _FunctionScan(self, module, class_name, node.name)
        for stmt in node.body:
            scan.visit(stmt)
        self._acquires[(module.path, class_name, node.name)] = scan.acquired

    def finish(self) -> Iterator[Finding]:
        # Resolve one level of calls: an edge from every held lock to
        # every lock the callee acquires.  Same-class methods match on
        # (class, name); bare names match a same-module function.
        for held, module, (cls, name), site in self._pending_calls:
            acquired = self._acquires.get((module.path, cls, name))
            if not acquired:
                continue
            for frm in held:
                for to in acquired:
                    if frm != to:
                        self.add_edge(frm, to, module, site)
        self._pending_calls = []

        yield from self._report_cycles()
        self.edges = {}
        self._acquires = {}

    def _report_cycles(self) -> Iterator[Finding]:
        reported: set[frozenset[str]] = set()
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {node: WHITE for node in self.edges}

        def walk(node: str, path: list[str]) -> Iterator[Finding]:
            color[node] = GRAY
            path.append(node)
            for succ in self.edges.get(node, {}):
                if color.get(succ, WHITE) == GRAY:
                    cycle = path[path.index(succ):] + [succ]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        module, line, col = self.edges[node][succ]
                        yield Finding(
                            rule=self.name,
                            path=module.path,
                            line=line,
                            col=col,
                            severity="warning",
                            message=(
                                "lock-ordering cycle: "
                                + " -> ".join(cycle)
                            ),
                            hint="pick one global acquisition order for "
                            "these locks and acquire them in that order "
                            "everywhere",
                        )
                elif color.get(succ, WHITE) == WHITE:
                    yield from walk(succ, path)
            path.pop()
            color[node] = BLACK

        for node in list(self.edges):
            if color.get(node, WHITE) == WHITE:
                yield from walk(node, [])
