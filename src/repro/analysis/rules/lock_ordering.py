"""lock-ordering: the static lock-acquisition graph must be acyclic.

Distributed runtimes deadlock the boring way: thread A holds lock X and
wants Y while thread B holds Y and wants X.  The fix is a global
acquisition order, and an acquisition order is easy to check statically:
build a directed graph with an edge X -> Y whenever the code can acquire
Y while holding X, and demand the graph has no cycles.

Lock acquisitions are recognized as ``with`` statements whose context
expression *names* a lock — a bare name or attribute whose identifier
contains ``lock`` (but not ``clock``; ``ClockWindow`` is not a mutex).
Call expressions (``with Foo():``) are ignored: those are constructors
or context-manager factories, not held mutexes.  Locks are keyed as
``ClassName.attr`` for ``self`` attributes and for attributes of
receivers whose class is known from an annotation in scope
(``rep: RepliconRep`` makes ``rep.lock`` the program-wide node
``RepliconRep.lock``), and by qualified function name for locals.

This is a whole-program rule.  Edges come from two places:

* **lexical nesting** — a ``with b_lock:`` inside a ``with a_lock:``
  adds a -> b;
* **calls under lock, resolved transitively** — calling any function
  the project-wide call graph can resolve (``self`` methods including
  inherited ones, same-module and imported functions, module aliases,
  annotated receivers) while holding a lock adds an edge to every lock
  that callee acquires *anywhere in its transitive call closure*, across
  module boundaries and at arbitrary depth.  The one-level, same-module
  analysis this replaces missed exactly the cycles that matter in a
  layered runtime: subcontract code holding its rep lock while a helper
  two modules down re-enters a kernel lock.

Cycles are reported once per cycle, as warnings, at the site of the
first edge the walker saw.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.engine import Finding, Rule, SourceModule

if TYPE_CHECKING:
    from repro.analysis.callgraph import FunctionInfo, Program

__all__ = ["LockOrderingRule"]


def _lock_name(expr: ast.expr) -> str | None:
    """The identifier a ``with`` context names, if it looks like a lock."""
    if isinstance(expr, ast.Name):
        ident = expr.id
    elif isinstance(expr, ast.Attribute):
        ident = expr.attr
    else:
        return None  # calls, subscripts: not a held lock object
    lowered = ident.lower()
    if "lock" in lowered and "clock" not in lowered:
        return ident
    return None


class _FunctionScan(ast.NodeVisitor):
    """Collect lock acquisitions and calls-under-lock for one function."""

    def __init__(self, rule: "LockOrderingRule", info: "FunctionInfo") -> None:
        self.rule = rule
        self.info = info
        self.module = info.module
        #: stack of lock keys currently held (lexically)
        self.held: list[str] = []
        #: lock keys acquired anywhere in this function body
        self.acquired: set[str] = set()
        #: (held-keys snapshot, call node) for every call made under lock
        self.calls_under_lock: list[tuple[list[str], ast.Call]] = []

    def _key(self, expr: ast.expr, ident: str) -> str:
        info = self.info
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            receiver = expr.value.id
            if receiver == "self" and info.class_name:
                return f"{info.class_name.split('.', 1)[0]}.{ident}"
            # A receiver with a known class annotation names the same
            # program-wide lock node from every module that touches it.
            cls = info.annotations.get(receiver)
            if cls:
                return f"{cls}.{ident}"
        if isinstance(expr, ast.Attribute):
            return ident  # unknown receiver: key by field name alone
        return f"{info.class_name or self.module.path}.{info.key[2]}.{ident}"

    def visit_With(self, node: ast.With) -> None:
        taken: list[str] = []
        for item in node.items:
            ident = _lock_name(item.context_expr)
            if ident is None:
                continue
            key = self._key(item.context_expr, ident)
            self.acquired.add(key)
            for holder in self.held:
                if holder != key:
                    self.rule.add_edge(holder, key, self.module, node)
            self.held.append(key)
            taken.append(key)
        for stmt in node.body:
            self.visit(stmt)
        for _ in taken:
            self.held.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if self.held:
            self.calls_under_lock.append((list(self.held), node))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are scanned as their own functions

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass


class LockOrderingRule(Rule):
    name = "lock-ordering"
    description = (
        "the static lock-acquisition graph (with-blocks plus the "
        "transitive call closure, across modules) must contain no cycles"
    )
    whole_program = True

    def __init__(self) -> None:
        self._program: "Program | None" = None
        #: lock key -> {lock key acquired while holding it -> first site}
        self.edges: dict[str, dict[str, tuple[SourceModule, int, int]]] = {}

    def begin(self, program: "Program") -> None:
        self._program = program

    def add_edge(
        self, frm: str, to: str, module: SourceModule, site: ast.AST
    ) -> None:
        self.edges.setdefault(frm, {}).setdefault(
            to, (module, site.lineno, site.col_offset)
        )

    def finish(self) -> Iterator[Finding]:
        if self._program is None:
            return
        graph = self._program.callgraph

        # Pass 1: lexical edges, per-function acquire sets, and the
        # calls each function makes while holding a lock.
        direct: dict[tuple, set[str]] = {}
        pending: list[tuple["FunctionInfo", list[str], ast.Call]] = []
        for info in graph.functions.values():
            scan = _FunctionScan(self, info)
            for stmt in info.node.body:
                scan.visit(stmt)
            direct[info.key] = scan.acquired
            for held, call in scan.calls_under_lock:
                pending.append((info, held, call))

        # Pass 2: the transitive acquire closure of every function — a
        # fixpoint over the call graph, so a lock taken three calls and
        # two modules away still reaches the holder.
        closure = {key: set(locks) for key, locks in direct.items()}
        changed = True
        while changed:
            changed = False
            for key in closure:
                mine = closure[key]
                before = len(mine)
                for callee in graph.callees(key):
                    callee_locks = closure.get(callee)
                    if callee_locks:
                        mine |= callee_locks
                if len(mine) != before:
                    changed = True

        # Pass 3: call edges — every lock held at the call site orders
        # before every lock the callee's closure can acquire.
        for info, held, call in pending:
            resolved = graph.resolve_call(info, call)
            if resolved is None:
                continue
            for to in closure.get(resolved, ()):
                for frm in held:
                    if frm != to:
                        self.add_edge(frm, to, info.module, call)

        yield from self._report_cycles()
        self.edges = {}
        self._program = None

    def _report_cycles(self) -> Iterator[Finding]:
        reported: set[frozenset[str]] = set()
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {node: WHITE for node in self.edges}

        def walk(node: str, path: list[str]) -> Iterator[Finding]:
            color[node] = GRAY
            path.append(node)
            for succ in self.edges.get(node, {}):
                if color.get(succ, WHITE) == GRAY:
                    cycle = path[path.index(succ):] + [succ]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        module, line, col = self.edges[node][succ]
                        yield Finding(
                            rule=self.name,
                            path=module.path,
                            line=line,
                            col=col,
                            severity="warning",
                            message=(
                                "lock-ordering cycle: "
                                + " -> ".join(cycle)
                            ),
                            hint="pick one global acquisition order for "
                            "these locks and acquire them in that order "
                            "everywhere",
                        )
                elif color.get(succ, WHITE) == WHITE:
                    yield from walk(succ, path)
            path.pop()
            color[node] = BLACK

        for node in list(self.edges):
            if color.get(node, WHITE) == WHITE:
                yield from walk(node, [])
