"""span-balance: every tracing span begun on a path must be ended.

The observability layer (``repro.obs.tracer``) hands out :class:`Span`
objects from ``begin_span`` / ``begin_invoke`` / ``begin_handler``.  A
span that is never ended stays on the tracer's per-thread stack forever:
every later span in that thread parents under it, trace trees go bogus,
and the per-domain ring never sees the record.  The sanctioned idioms
are exactly the ones the buffer-lifecycle rule sanctions for pooled
buffers — which is why this rule *is* that rule with a different
vocabulary:

* ``with tracer.begin_invoke(...) as span:`` — ``__exit__`` ends it on
  every path, including exceptions (the preferred form);
* ``span = tracer.begin_span(...)`` followed by ``span.end()`` in a
  ``finally`` block;
* returning the span to transfer ownership to the caller.

Unlike buffers, spans *are* context managers, so ``with`` over an
acquisition (or over an already-tracked span variable) counts as
balanced.  ``Span.end()`` is idempotent at runtime, so a double end is
not a crash — but it is dead code that usually marks a refactoring
mistake, and reads of a span after ``end()`` silently record nothing,
so both are still flagged.
"""

from __future__ import annotations

from repro.analysis.rules.buffer_lifecycle import (
    BufferLifecycleRule,
    _FunctionAnalysis,
)

__all__ = ["SpanBalanceRule"]


class _SpanAnalysis(_FunctionAnalysis):
    acquire_methods = frozenset({"begin_span", "begin_invoke", "begin_handler"})
    ctor_names = frozenset()
    releasers = frozenset({"end"})
    discarders = frozenset()
    noun = "span"
    acquired_word = "begun"
    closed_word = "ended"
    release_word = "end"
    leak_hint = (
        "use `with tracer.begin_...(...) as span:`, end() it in a "
        "finally block, or return it to transfer ownership"
    )
    double_hint = (
        "Span.end() is idempotent at runtime, but the second call is "
        "dead code; remove it"
    )
    use_hint = (
        "an ended span records nothing; annotate()/event() before end(), "
        "or let the with-statement end it"
    )
    context_managed = True


class SpanBalanceRule(BufferLifecycleRule):
    name = "span-balance"
    description = (
        "tracer.begin_span()/begin_invoke()/begin_handler() results must "
        "be ended on every control-flow path (with-statement, finally "
        "block, or return); flags double end and use-after-end"
    )
    analysis_class = _SpanAnalysis
