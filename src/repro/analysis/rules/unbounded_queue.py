"""unbounded-queue: wait queues must be bounded, permits must not block.

Overload protection (PR 5) rests on two invariants the type system cannot
see:

* **bounded wait queues** — a queue that buffers work while a server is
  busy must carry an explicit bound, or it silently converts overload
  into unbounded memory growth and unbounded queueing delay (the exact
  failure admission control exists to prevent).  ``queue.Queue()``
  without a positive ``maxsize`` and ``collections.deque()`` without a
  ``maxlen`` are flagged when the result lands in a queue-ish name
  (``*queue*``, ``*pending*``, ``*waiting*``, ``*backlog*``,
  ``*inbox*``).  ``SimpleQueue`` has no bound at all, so any queue-ish
  use is flagged.
* **no blocking while holding a permit** — between
  ``permit = <controller>.admit(...)`` and the matching
  ``.complete(permit)``, a virtual server slot is occupied.  Calling a
  blocking primitive (``sleep``, ``join``, ``wait``, ``acquire``, or a
  queue ``.get``) in that window stalls the slot and starves every
  queued caller behind it; the wait belongs *before* admission (where
  the controller charges it as ``admission_wait``) or *after* release.

Both checks are lexical, not data-flow: they look at the straight-line
order of statements inside one function body, which is exactly the shape
the admission hot path has.  Use a targeted suppression for the rare
deliberate exception::

    q = queue.Queue()  # springlint: disable=unbounded-queue -- test rig
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, Rule, SourceModule

__all__ = ["UnboundedQueueRule"]

#: constructor name -> keyword that bounds it (None: cannot be bounded)
_QUEUE_CTORS: dict[str, str | None] = {
    "Queue": "maxsize",
    "LifoQueue": "maxsize",
    "PriorityQueue": "maxsize",
    "SimpleQueue": None,
    "deque": "maxlen",
}

#: substrings that mark a binding target as a wait queue
_QUEUEISH = ("queue", "pending", "waiting", "backlog", "inbox")

#: method/function names that block the calling thread
_BLOCKING = ("sleep", "join", "wait", "acquire", "get")


def _tail_name(node: ast.expr) -> str | None:
    """The unqualified callable name: ``queue.Queue`` -> ``Queue``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _target_names(node: ast.stmt) -> list[str]:
    """Names bound by an assignment/annassign statement."""
    names: list[str] = []
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        targets = [node.target]
    for target in targets:
        for leaf in ast.walk(target):
            if isinstance(leaf, ast.Name):
                names.append(leaf.id)
            elif isinstance(leaf, ast.Attribute):
                names.append(leaf.attr)
    return names


def _is_queueish(name: str) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in _QUEUEISH)


def _positive_constant(node: ast.expr | None) -> bool:
    """True when the bound argument is a non-zero constant or any
    non-constant expression (give runtime-computed bounds the benefit of
    the doubt); False for a literal 0/None/absent."""
    if node is None:
        return False
    if isinstance(node, ast.Constant):
        return bool(node.value)
    return True


def _bound_argument(call: ast.Call, keyword: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    # Queue(8) / deque(iterable, 8): the bound is also positional —
    # maxsize is the first Queue argument, maxlen the second of deque.
    index = 0 if keyword == "maxsize" else 1
    if len(call.args) > index:
        return call.args[index]
    return None


class UnboundedQueueRule(Rule):
    name = "unbounded-queue"
    description = (
        "wait queues must declare a bound; no blocking calls while "
        "holding an admission permit"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from self._check_queue_binding(module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_permit_window(module, node)

    # ------------------------------------------------------------------
    # bounded wait queues
    # ------------------------------------------------------------------

    def _check_queue_binding(
        self, module: SourceModule, node: ast.Assign | ast.AnnAssign
    ) -> Iterator[Finding]:
        value = node.value
        if not isinstance(value, ast.Call):
            return
        ctor = _tail_name(value.func)
        keyword = _QUEUE_CTORS.get(ctor or "")
        if ctor not in _QUEUE_CTORS:
            return
        names = _target_names(node)
        if not any(_is_queueish(name) for name in names):
            return
        if keyword is not None and _positive_constant(
            _bound_argument(value, keyword)
        ):
            return
        label = ", ".join(names) or "<queue>"
        if keyword is None:
            message = (
                f"{ctor}() bound to {label} cannot be bounded: overload "
                "turns this wait queue into unbounded memory growth"
            )
            hint = "use queue.Queue(maxsize=N) or deque(maxlen=N) instead"
        else:
            message = (
                f"{ctor}() bound to {label} has no {keyword}: an "
                "unbounded wait queue converts overload into unbounded "
                "queueing delay instead of shedding"
            )
            hint = (
                f"pass an explicit {keyword}= bound (and shed or reject "
                "when it is reached), or route the wait through "
                "AdmissionPolicy(queue_limit=...)"
            )
        yield Finding(
            rule=self.name,
            path=module.path,
            line=value.lineno,
            col=value.col_offset,
            severity="error",
            message=message,
            hint=hint,
        )

    # ------------------------------------------------------------------
    # no blocking while holding an admission permit
    # ------------------------------------------------------------------

    def _check_permit_window(
        self,
        module: SourceModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        statements = list(ast.walk(func))
        admits: list[tuple[int, str]] = []  # (lineno, permit name)
        completes: list[int] = []
        calls: list[ast.Call] = []
        for node in statements:
            if not isinstance(node, ast.Call):
                continue
            calls.append(node)
            attr = node.func.attr if isinstance(node.func, ast.Attribute) else None
            if attr == "complete":
                completes.append(node.lineno)
        for node in statements:
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            func_expr = node.value.func
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr == "admit"
                and node.targets
                and isinstance(node.targets[0], ast.Name)
            ):
                admits.append((node.lineno, node.targets[0].id))
        if not admits:
            return
        for admit_line, _permit in admits:
            release_line = min(
                (line for line in completes if line > admit_line),
                default=func.end_lineno or admit_line,
            )
            for call in calls:
                if not admit_line < call.lineno < release_line:
                    continue
                name = _tail_name(call.func)
                if name not in _BLOCKING:
                    continue
                yield Finding(
                    rule=self.name,
                    path=module.path,
                    line=call.lineno,
                    col=call.col_offset,
                    severity="error",
                    message=(
                        f"blocking call {name}() while holding an "
                        "admission permit stalls a virtual server slot "
                        "and starves every caller queued behind it"
                    ),
                    hint="move the wait before admit() (the controller "
                    "charges it as admission_wait) or after complete()",
                )
