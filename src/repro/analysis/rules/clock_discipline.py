"""clock-discipline: simulated time must stay simulated, and cheap.

The whole repository runs on a deterministic :class:`SimClock`; one
stray ``time.time()`` in a simulated path makes runs irreproducible in a
way no test catches until a benchmark drifts.  And the sharded clock's
hot path (``charge``) is only cheap if call sites pass precomputed
constant event names — an f-string at the call site re-introduces the
per-call formatting cost the accounting overhaul removed.

Two checks:

* **wall-clock calls** — ``time.time``, ``time.monotonic``,
  ``time.perf_counter``, ``time.process_time``, ``time.time_ns`` (and
  ``_ns`` variants), ``datetime.now``/``utcnow`` are banned.  Dotted
  names are resolved through the module's import table, so
  ``from time import perf_counter as pc; pc()`` is still caught.
* **charge-site formatting** — the event-name argument of
  ``.charge(...)``/``.charge_cycles(...)`` (first argument) and the
  category argument of ``.advance(...)`` (second argument) must not be
  an f-string, string concatenation/``%`` expression, or ``.format()``
  call.  Names and constants are fine: hoist the formatting to module
  level and pass the precomputed string.

``charge_bytes`` is exempt — its arguments are sizes, not names.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, Rule, SourceModule

__all__ = ["ClockDisciplineRule"]

#: fully-qualified callables that read the host's wall clock
_BANNED = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}

#: method name -> index of the event/category argument that must be
#: precomputed (no formatting work on the hot path)
_CHARGE_ARG = {"charge": 0, "charge_cycles": 0, "advance": 1}


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_table(tree: ast.Module) -> dict[str, str]:
    """Local name -> fully qualified name, from import statements."""
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def _is_formatting(node: ast.expr) -> bool:
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.BinOp):  # "a" + x, "fmt %s" % x
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("format", "join")
    ):
        return True
    return False


class ClockDisciplineRule(Rule):
    name = "clock-discipline"
    description = (
        "no wall-clock reads in simulated paths; SimClock charge sites "
        "must pass precomputed event names"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        imports = _import_table(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_wall_clock(module, imports, node)
            yield from self._check_charge_site(module, node)

    def _check_wall_clock(
        self, module: SourceModule, imports: dict[str, str], node: ast.Call
    ) -> Iterator[Finding]:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        head, _, rest = dotted.partition(".")
        resolved = imports.get(head, head) + (f".{rest}" if rest else "")
        if resolved in _BANNED or dotted in _BANNED:
            yield Finding(
                rule=self.name,
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                severity="error",
                message=(
                    f"wall-clock call {dotted}() in a simulated-path "
                    "module breaks run determinism"
                ),
                hint="use the kernel's SimClock (clock.now() / "
                "clock.advance()) instead of host time",
            )

    def _check_charge_site(
        self, module: SourceModule, node: ast.Call
    ) -> Iterator[Finding]:
        if not isinstance(node.func, ast.Attribute):
            return
        arg_index = _CHARGE_ARG.get(node.func.attr)
        if arg_index is None or len(node.args) <= arg_index:
            return
        arg = node.args[arg_index]
        if _is_formatting(arg):
            yield Finding(
                rule=self.name,
                path=module.path,
                line=arg.lineno,
                col=arg.col_offset,
                severity="error",
                message=(
                    f"{node.func.attr}() is called with a formatted "
                    "event name: string building on the accounting hot "
                    "path defeats the precomputed-constant design"
                ),
                hint="hoist the name to a module-level constant (e.g. "
                '_EV_SEND = "net.send") and pass that',
            )
