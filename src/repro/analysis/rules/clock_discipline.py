"""clock-discipline: simulated time must stay simulated, and cheap.

The whole repository runs on a deterministic :class:`SimClock`; one
stray ``time.time()`` in a simulated path makes runs irreproducible in a
way no test catches until a benchmark drifts.  And the sharded clock's
hot path (``charge``) is only cheap if call sites pass precomputed
constant event names — an f-string at the call site re-introduces the
per-call formatting cost the accounting overhaul removed.

Two checks:

* **wall-clock calls** — ``time.time``, ``time.monotonic``,
  ``time.perf_counter``, ``time.process_time``, ``time.time_ns`` (and
  ``_ns`` variants), ``datetime.now``/``utcnow`` are banned.  Dotted
  names are resolved through the module's import table, so
  ``from time import perf_counter as pc; pc()`` is still caught.
* **charge-site formatting** — the event-name argument of
  ``.charge(...)``/``.charge_cycles(...)`` (first argument) and the
  category argument of ``.advance(...)`` (second argument) must not be
  an f-string, string concatenation/``%`` expression, or ``.format()``
  call.  Names and constants are fine: hoist the formatting to module
  level and pass the precomputed string.

``charge_bytes`` is exempt — its arguments are sizes, not names.

**Sanctioned wall-clock modules.**  A few modules legitimately live on
the host clock: the process fabric's supervisor and worker loops block
on real sockets and real join timeouts — wall-clock use there *is* the
transport, not a simulated path.  Rather than scattering inline
suppressions over every call, such a module declares itself once with a
file-level directive::

    # springlint: wall-clock-module -- <why this module may block on host time>

The directive only takes effect when the module's path is also on the
rule's sanctioned-module list (:data:`SANCTIONED_WALL_CLOCK_MODULES` by
default) — a directive in an unlisted module is itself reported, as is a
listed module whose directive omits the justification.  Sanctioning
silences only the wall-clock check; charge-site formatting is still
enforced (a sanctioned module that also touches the sim clock gets no
free pass on accounting discipline).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Iterable, Iterator

from repro.analysis.engine import Finding, Rule, SourceModule

__all__ = ["ClockDisciplineRule", "SANCTIONED_WALL_CLOCK_MODULES"]

#: modules allowed to read the host clock (path suffixes, "/"-separated);
#: each must also carry a justified ``wall-clock-module`` directive
SANCTIONED_WALL_CLOCK_MODULES = (
    "repro/net/procfabric.py",
    "repro/net/procworker.py",
)

#: the file-level sanction directive; the justification after ``--`` is
#: mandatory so the *reason* a module may block on host time is recorded
#: next to the declaration
_SANCTION_RE = re.compile(
    r"#\s*springlint:\s*wall-clock-module\s*(?:--\s*(?P<why>\S.*))?"
)

#: fully-qualified callables that read the host's wall clock
_BANNED = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}

#: method name -> index of the event/category argument that must be
#: precomputed (no formatting work on the hot path)
_CHARGE_ARG = {"charge": 0, "charge_cycles": 0, "advance": 1}


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_table(tree: ast.Module) -> dict[str, str]:
    """Local name -> fully qualified name, from import statements."""
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def _is_formatting(node: ast.expr) -> bool:
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.BinOp):  # "a" + x, "fmt %s" % x
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("format", "join")
    ):
        return True
    return False


class ClockDisciplineRule(Rule):
    name = "clock-discipline"
    description = (
        "no wall-clock reads in simulated paths; SimClock charge sites "
        "must pass precomputed event names"
    )

    def __init__(
        self, sanctioned: Iterable[str] = SANCTIONED_WALL_CLOCK_MODULES
    ) -> None:
        self.sanctioned = tuple(sanctioned)

    def _is_sanctioned_path(self, module: SourceModule) -> bool:
        path = str(module.path).replace("\\", "/")
        return any(path.endswith(suffix) for suffix in self.sanctioned)

    @staticmethod
    def _find_directive(module: SourceModule) -> tuple[re.Match | None, int]:
        """The module's sanction directive, from real comment tokens only
        (a directive quoted inside a docstring is documentation)."""
        try:
            tokens = tokenize.generate_tokens(io.StringIO(module.text).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    match = _SANCTION_RE.match(tok.string)
                    if match is not None:
                        return match, tok.start[0]
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            pass
        return None, 0

    def check(self, module: SourceModule) -> Iterator[Finding]:
        directive, line = self._find_directive(module)
        wall_clock_ok = False
        if directive is not None:
            if not self._is_sanctioned_path(module):
                yield Finding(
                    rule=self.name,
                    path=module.path,
                    line=line,
                    col=0,
                    severity="error",
                    message=(
                        "wall-clock-module directive in a module that is "
                        "not on the sanctioned-module list"
                    ),
                    hint="add the module to SANCTIONED_WALL_CLOCK_MODULES "
                    "(with review) or drop the directive",
                )
            elif not directive.group("why"):
                yield Finding(
                    rule=self.name,
                    path=module.path,
                    line=line,
                    col=0,
                    severity="error",
                    message=(
                        "wall-clock-module directive without a "
                        "justification"
                    ),
                    hint="append '-- <why this module may block on host "
                    "time>' to the directive",
                )
            else:
                wall_clock_ok = True
        imports = _import_table(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not wall_clock_ok:
                yield from self._check_wall_clock(module, imports, node)
            yield from self._check_charge_site(module, node)

    def _check_wall_clock(
        self, module: SourceModule, imports: dict[str, str], node: ast.Call
    ) -> Iterator[Finding]:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        head, _, rest = dotted.partition(".")
        resolved = imports.get(head, head) + (f".{rest}" if rest else "")
        if resolved in _BANNED or dotted in _BANNED:
            yield Finding(
                rule=self.name,
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                severity="error",
                message=(
                    f"wall-clock call {dotted}() in a simulated-path "
                    "module breaks run determinism"
                ),
                hint="use the kernel's SimClock (clock.now() / "
                "clock.advance()) instead of host time",
            )

    def _check_charge_site(
        self, module: SourceModule, node: ast.Call
    ) -> Iterator[Finding]:
        if not isinstance(node.func, ast.Attribute):
            return
        arg_index = _CHARGE_ARG.get(node.func.attr)
        if arg_index is None or len(node.args) <= arg_index:
            return
        arg = node.args[arg_index]
        if _is_formatting(arg):
            yield Finding(
                rule=self.name,
                path=module.path,
                line=arg.lineno,
                col=arg.col_offset,
                severity="error",
                message=(
                    f"{node.func.attr}() is called with a formatted "
                    "event name: string building on the accounting hot "
                    "path defeats the precomputed-constant design"
                ),
                hint="hoist the name to a module-level constant (e.g. "
                '_EV_SEND = "net.send") and pass that',
            )
