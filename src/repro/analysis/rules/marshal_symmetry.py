"""marshal-symmetry: what marshal writes, unmarshal must read.

Within a subcontract, ``marshal_rep`` and ``unmarshal_rep`` (and, when a
class overrides both, ``marshal``/``unmarshal``) are two halves of one
wire format: every *kind* of item the writer puts must have a matching
getter on the reader, and vice versa.  The wire format is
self-describing, so a mismatch does not corrupt memory — it raises
``WireTypeError`` at the first incompatible peer — but that is a runtime
failure on a path most tests never exercise (cross-subcontract
re-routing, epoch piggybacks).  This rule catches it statically.

This is **tag-kind pairing, not an order proof**: the rule compares the
set of wire kinds used by each side, so loops, branches and repeated
fields are fine; proving byte-for-byte sequence equality is undecidable
and not attempted.  Door identifiers and transit references share a kind
(either getter accepts either putter's slot), and
``peek_object_header``/``get_object_header`` both satisfy
``put_object_header``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, Rule, SourceModule

__all__ = ["MarshalSymmetryRule"]

#: method name -> normalized wire kind
_PUT_KINDS = {
    "put_bool": "bool",
    "put_int8": "int8",
    "put_int32": "int32",
    "put_int64": "int64",
    "put_float64": "float64",
    "put_string": "string",
    "put_bytes": "bytes",
    "put_nil": "nil",
    "put_sequence_header": "sequence_header",
    "put_object_header": "object_header",
    "put_door_id": "door",
    "put_door_transit": "door",
}

_GET_KINDS = {
    "get_bool": "bool",
    "get_int8": "int8",
    "get_int32": "int32",
    "get_int64": "int64",
    "get_float64": "float64",
    "get_string": "string",
    "get_bytes": "bytes",
    "get_nil": "nil",
    "get_sequence_header": "sequence_header",
    "get_object_header": "object_header",
    "peek_object_header": "object_header",
    "get_door_id": "door",
    "get_door_transit": "door",
}

#: write-side method -> read-side counterpart it is compared against
_PAIRS = (("marshal_rep", "unmarshal_rep"), ("marshal", "unmarshal"))


def _kinds(func: ast.FunctionDef, table: dict[str, str]) -> set[str]:
    found: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            kind = table.get(node.func.attr)
            if kind is not None:
                found.add(kind)
    return found


class MarshalSymmetryRule(Rule):
    name = "marshal-symmetry"
    description = (
        "within a subcontract, the put_* kinds of marshal/marshal_rep "
        "must pair with the get_* kinds of unmarshal/unmarshal_rep"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
            for write_name, read_name in _PAIRS:
                writer = methods.get(write_name)
                reader = methods.get(read_name)
                if writer is None or reader is None:
                    continue
                put = _kinds(writer, _PUT_KINDS)
                got = _kinds(reader, _GET_KINDS)
                for kind in sorted(put - got):
                    yield Finding(
                        rule=self.name,
                        path=module.path,
                        line=reader.lineno,
                        col=reader.col_offset,
                        severity="error",
                        message=(
                            f"{node.name}.{write_name} writes a {kind!r} "
                            f"item that {read_name} never reads"
                        ),
                        hint=f"add the matching get_{kind}()-style read "
                        f"to {read_name}, or stop writing it",
                    )
                for kind in sorted(got - put):
                    yield Finding(
                        rule=self.name,
                        path=module.path,
                        line=writer.lineno,
                        col=writer.col_offset,
                        severity="error",
                        message=(
                            f"{node.name}.{read_name} reads a {kind!r} "
                            f"item that {write_name} never writes"
                        ),
                        hint=f"add the matching put_{kind}()-style write "
                        f"to {write_name}, or stop reading it",
                    )
