"""compensation-discipline: saga steps must be undoable (or say they
are not), and dedup memos must be bounded.

The saga coordinator's exactly-once guarantee rests on two local
disciplines that are easy to drop and invisible at the call site once
dropped:

* **every step needs a compensation** — a saga step registered without
  one cannot be undone when a later step fails, silently converting the
  saga back into the partial-update workflow it exists to prevent.  The
  API requires ``irreversible=True`` to make the exception explicit (and
  raises at runtime otherwise); this rule catches the omission at lint
  time, before a chaos seed has to find it.
* **idempotency-key memos must be bounded** — every retried request
  parks recorded reply bytes in the server's dedup memo.  Constructing
  :class:`~repro.runtime.idem.DedupMemo` with a falsy or negative entry
  bound (``entries=0``, ``entries=None``) is the memo-shaped version of
  an unbounded queue under millions of retrying clients.

Both checks are lexical, matching the codebase's naming conventions the
way the other rules do: a ``.run(...)`` call whose receiver mentions
``saga`` is a saga step; a call to a name ending in ``DedupMemo`` is a
memo construction.  A call that threads a caller-supplied compensation
through (a generic relay) carries a targeted suppression::

    saga.run(label, action, compensation=comp)  # fine: non-None literal
    runner.saga.run(label, act)  # springlint: disable=compensation-discipline -- relay
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, Rule, SourceModule

__all__ = ["CompensationDisciplineRule"]


def _receiver_tail(node: ast.expr) -> str | None:
    """The receiver's trailing name: ``self.saga`` -> ``saga``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_sagaish(name: str | None) -> bool:
    return name is not None and "saga" in name.lower()


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _is_literal(node: ast.expr | None, value: object) -> bool:
    return isinstance(node, ast.Constant) and node.value is value


class CompensationDisciplineRule(Rule):
    name = "compensation-discipline"
    description = (
        "saga steps need a compensation (or an explicit irreversible=True) "
        "and idempotency-key dedup memos need a bound"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "run":
                if _is_sagaish(_receiver_tail(func.value)):
                    yield from self._check_step(module, node)
            name = _receiver_tail(func)
            if name is not None and name.endswith("DedupMemo"):
                yield from self._check_memo(module, node)

    def _check_step(self, module: SourceModule, call: ast.Call) -> Iterator[Finding]:
        compensation = _keyword(call, "compensation")
        if len(call.args) > 2:
            compensation = call.args[2]
        if compensation is not None and not _is_literal(compensation, None):
            return
        if _is_literal(_keyword(call, "irreversible"), True):
            return
        yield Finding(
            rule=self.name,
            path=module.path,
            line=call.lineno,
            col=call.col_offset,
            severity="error",
            message=(
                "saga step registered without a compensation: a later "
                "step's failure cannot undo this one"
            ),
            hint=(
                "pass compensation=<fn> (with a comp_token the journal can "
                "persist), or declare the step irreversible=True"
            ),
        )

    def _check_memo(self, module: SourceModule, call: ast.Call) -> Iterator[Finding]:
        entries = _keyword(call, "entries")
        if len(call.args) > 0:
            entries = call.args[0]
        if entries is None:
            return  # default bound applies
        # -1 parses as UnaryOp(USub, Constant(1)): any negated int
        # literal is non-positive, so it is unbounded by definition.
        negated_int = (
            isinstance(entries, ast.UnaryOp)
            and isinstance(entries.op, ast.USub)
            and isinstance(entries.operand, ast.Constant)
            and isinstance(entries.operand.value, int)
        )
        unbounded = (
            _is_literal(entries, None)
            or negated_int
            or (
                isinstance(entries, ast.Constant)
                and isinstance(entries.value, int)
                and not isinstance(entries.value, bool)
                and entries.value <= 0
            )
        )
        if not unbounded:
            return
        yield Finding(
            rule=self.name,
            path=module.path,
            line=call.lineno,
            col=call.col_offset,
            severity="error",
            message=(
                "dedup memo constructed without a bound: recorded replies "
                "accumulate per retried request and never leave"
            ),
            hint=(
                "give the memo a positive entries= bound (FIFO eviction "
                "keeps the hot keys; the default is DEDUP_MEMO_ENTRIES)"
            ),
        )
