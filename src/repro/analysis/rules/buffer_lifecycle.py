"""buffer-lifecycle: every acquired MarshalBuffer must be closed.

PR 1 made the invocation hot path pool its communication buffers; a
buffer acquired from a domain free-list (``domain.acquire_buffer()``)
or constructed directly (``MarshalBuffer(kernel)``) must therefore be
**released**, **recycled**, **discarded**, or **returned to the caller**
on every control-flow path, and never touched again once released.

The rule runs a small abstract interpretation over each function body.
Each buffer-bound local is tracked through one of five states::

    OPEN ──release/recycle──▶ CLOSED
    OPEN ──discard──────────▶ DISCARDED   (counts as closed at exit)
    OPEN ──return buf / return f(buf)──▶ ESCAPED (ownership left)
    branch merge where only some paths closed ──▶ MAYBE

Explicit control flow (if/else, loops, try/finally, return, raise) is
modelled; implicit exception edges out of arbitrary calls are not — the
sanctioned patterns are exactly ``try/finally`` around the risky region
or a tail return, which is what the hot path uses.  A close that only
appears in a ``finally`` block protects every exit from its ``try``.

Violations reported:

* ``never released`` / ``not released on all control-flow paths``
* ``double release`` (second release/recycle on a CLOSED buffer)
* ``use after release`` (any read of a CLOSED buffer variable)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, Rule, SourceModule

__all__ = ["BufferLifecycleRule"]

OPEN = "open"
MAYBE = "maybe"
CLOSED = "closed"
DISCARDED = "discarded"
ESCAPED = "escaped"

_CLOSED_ISH = {CLOSED, DISCARDED, ESCAPED}

_ACQUIRE_METHODS = frozenset({"acquire_buffer"})
_CTOR_NAMES = frozenset({"MarshalBuffer"})
_RELEASERS = frozenset({"release", "recycle"})
_DISCARDERS = frozenset({"discard"})


class _Var:
    __slots__ = ("state", "line", "col")

    def __init__(self, state: str, line: int, col: int) -> None:
        self.state = state
        self.line = line
        self.col = col

    def copy(self) -> "_Var":
        return _Var(self.state, self.line, self.col)


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


class _FunctionAnalysis:
    """Abstract interpretation of one function body.

    The control-flow machinery is parameterized by class attributes so
    other paired-resource rules (span-balance) can subclass it with
    their own acquire/close vocabulary while reusing the walker.
    """

    #: call shapes that create a tracked resource
    acquire_methods: frozenset[str] = _ACQUIRE_METHODS
    ctor_names: frozenset[str] = _CTOR_NAMES
    #: method names that close / discard a tracked resource
    releasers: frozenset[str] = _RELEASERS
    discarders: frozenset[str] = _DISCARDERS
    #: message vocabulary ("buffer ... acquired ... never released")
    noun = "buffer"
    acquired_word = "acquired"
    closed_word = "released"
    release_word = "release"
    leak_hint = (
        "release()/recycle() it in a finally block, or return it to "
        "transfer ownership"
    )
    double_hint = (
        "the second release corrupts the pool at runtime "
        "(BufferLifecycleError); remove it"
    )
    use_hint = (
        "a released buffer may already belong to another "
        "caller; restructure so the release is last"
    )
    #: when True, ``with acquire() as x:`` (or ``with tracked_name:``)
    #: is balanced by definition — the context manager closes on exit.
    #: Buffers are not context managers, so this stays off here.
    context_managed = False

    def __init__(self, rule: "BufferLifecycleRule", module: SourceModule, func_name: str):
        self.rule = rule
        self.module = module
        self.func_name = func_name
        self.findings: list[Finding] = []
        #: (var, line) pairs already reported, to avoid duplicate noise
        self._reported: set[tuple[str, int, str]] = set()

    # -- finding helpers ------------------------------------------------

    def _emit(self, kind: str, name: str, line: int, col: int, message: str, hint: str) -> None:
        key = (name, line, kind)
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(
            self.rule.finding(self.module, line, col, message, hint)
        )

    def _leak(self, name: str, var: _Var, why: str) -> None:
        self._emit(
            "leak",
            name,
            var.line,
            var.col,
            f"{self.noun} {name!r} {self.acquired_word} in {self.func_name!r} is {why}",
            self.leak_hint,
        )

    def _is_acquisition(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in self.acquire_methods:
            return True
        if isinstance(func, ast.Name) and func.id in self.ctor_names:
            return True
        if isinstance(func, ast.Attribute) and func.attr in self.ctor_names:
            return True
        return False

    # -- interpretation -------------------------------------------------

    def run(self, body: list[ast.stmt]) -> None:
        env: dict[str, _Var] = {}
        terminated = self._block(body, env, protected=frozenset())
        if not terminated:
            self._check_fallthrough(env)

    def _check_fallthrough(self, env: dict[str, _Var]) -> None:
        for name, var in env.items():
            if var.state == OPEN:
                self._leak(name, var, f"never {self.closed_word}")
            elif var.state == MAYBE:
                self._leak(
                    name, var, f"not {self.closed_word} on all control-flow paths"
                )

    def _check_exit(self, env: dict[str, _Var], protected: frozenset[str], keep: set[str], why: str) -> None:
        """A return/raise leaves the function: open vars leak unless a
        pending finally closes them or they escape through this exit."""
        for name, var in env.items():
            if name in protected or name in keep:
                continue
            if var.state in (OPEN, MAYBE):
                self._leak(name, var, why)

    def _use_check(self, node: ast.AST, env: dict[str, _Var]) -> None:
        for name in _names_in(node):
            var = env.get(name)
            if var is not None and var.state == CLOSED:
                self._emit(
                    "use-after-release",
                    name,
                    getattr(node, "lineno", var.line),
                    getattr(node, "col_offset", 0),
                    f"{self.noun} {name!r} used after {self.release_word}",
                    self.use_hint,
                )

    def _merge(self, base: dict[str, _Var], branches: list[tuple[dict[str, _Var], bool]]) -> dict[str, _Var]:
        """Join branch environments; ``branches`` pairs env with a
        terminated flag (terminated branches don't constrain the join)."""
        live = [env for env, terminated in branches if not terminated]
        if not live:
            # Every branch returned/raised: nothing flows past the join.
            return {}
        names = set()
        for env in live:
            names |= set(env)
        merged: dict[str, _Var] = {}
        for name in names:
            states = {env[name].state if name in env else None for env in live}
            anchor = next(env[name] for env in live if name in env)
            if None in states:
                # Acquired in some branches only.
                states.discard(None)
                state = next(iter(states)) if states <= _CLOSED_ISH else MAYBE
                if states == {OPEN}:
                    state = MAYBE
            elif len(states) == 1:
                state = next(iter(states))
            elif states <= _CLOSED_ISH:
                state = CLOSED
            else:
                state = MAYBE
            merged[name] = _Var(state, anchor.line, anchor.col)
        return merged

    def _finally_closers(self, finalbody: list[ast.stmt]) -> set[str]:
        """Names closed (released/recycled/discarded) anywhere in a
        finally block."""
        closers: set[str] = set()
        for node in ast.walk(ast.Module(body=finalbody, type_ignores=[])):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in (self.releasers | self.discarders)
                and isinstance(node.func.value, ast.Name)
            ):
                closers.add(node.func.value.id)
        return closers

    def _block(self, stmts: list[ast.stmt], env: dict[str, _Var], protected: frozenset[str]) -> bool:
        """Interpret a statement list in place; returns True when the
        block always terminates (return/raise/break/continue)."""
        for stmt in stmts:
            if self._stmt(stmt, env, protected):
                return True
        return False

    def _stmt(self, stmt: ast.stmt, env: dict[str, _Var], protected: frozenset[str]) -> bool:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._assign(stmt, env)
            return False

        if isinstance(stmt, ast.Expr):
            self._expr_stmt(stmt.value, env)
            return False

        if isinstance(stmt, ast.Return):
            keep: set[str] = set()
            if stmt.value is not None:
                returned = _names_in(stmt.value)
                for name in returned & set(env):
                    if env[name].state == CLOSED:
                        self._use_check(stmt, {name: env[name]})
                    env[name] = _Var(ESCAPED, env[name].line, env[name].col)
                keep = returned
            self._check_exit(
                env,
                protected,
                keep,
                f"not {self.closed_word} before return (line {stmt.lineno})",
            )
            return True

        if isinstance(stmt, ast.Raise):
            self._use_check(stmt, env)
            self._check_exit(
                env,
                protected,
                set(),
                f"not {self.closed_word} when raising (line {stmt.lineno})",
            )
            return True

        if isinstance(stmt, (ast.Break, ast.Continue)):
            return True

        if isinstance(stmt, ast.If):
            self._use_check(stmt.test, env)
            then_env = {k: v.copy() for k, v in env.items()}
            else_env = {k: v.copy() for k, v in env.items()}
            t_term = self._block(stmt.body, then_env, protected)
            e_term = self._block(stmt.orelse, else_env, protected)
            env.clear()
            env.update(self._merge(env, [(then_env, t_term), (else_env, e_term)]))
            return t_term and e_term

        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._use_check(stmt.iter, env)
            self._loop_body(stmt.body, env, protected)
            self._block(stmt.orelse, env, protected)
            return False

        if isinstance(stmt, ast.While):
            self._use_check(stmt.test, env)
            self._loop_body(stmt.body, env, protected)
            self._block(stmt.orelse, env, protected)
            return False

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if self.context_managed and self._is_acquisition(item.context_expr):
                    # ``with begin_*(...) as name:`` — __exit__ closes it
                    # on every path, including exceptions.
                    if isinstance(item.optional_vars, ast.Name):
                        env[item.optional_vars.id] = _Var(
                            ESCAPED, stmt.lineno, stmt.col_offset
                        )
                    continue
                self._use_check(item.context_expr, env)
                ce = item.context_expr
                if (
                    self.context_managed
                    and isinstance(ce, ast.Name)
                    and ce.id in env
                    and env[ce.id].state in (OPEN, MAYBE)
                ):
                    # ``with tracked_name:`` — the context manager takes
                    # over closing responsibility.
                    env[ce.id] = _Var(ESCAPED, env[ce.id].line, env[ce.id].col)
                    if isinstance(item.optional_vars, ast.Name):
                        env[item.optional_vars.id] = _Var(
                            ESCAPED, stmt.lineno, stmt.col_offset
                        )
            return self._block(stmt.body, env, protected)

        if isinstance(stmt, ast.Try):
            return self._try(stmt, env, protected)

        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # A nested scope capturing a tracked buffer takes ownership
            # decisions we cannot see; stop tracking captured names.
            captured = _names_in(stmt) & set(env)
            for name in captured:
                env[name] = _Var(ESCAPED, env[name].line, env[name].col)
            return False

        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id in env:
                    var = env[target.id]
                    if var.state in (OPEN, MAYBE):
                        self._leak(target.id, var, "deleted while still open")
                    del env[target.id]
            return False

        if isinstance(stmt, (ast.Global, ast.Nonlocal)):
            for name in stmt.names:
                env.pop(name, None)
            return False

        # Assert, Pass, Import, ExprStatement oddities...
        self._use_check(stmt, env)
        return False

    def _loop_body(self, body: list[ast.stmt], env: dict[str, _Var], protected: frozenset[str]) -> None:
        before = set(env)
        body_env = {k: v.copy() for k, v in env.items()}
        terminated = self._block(body, body_env, protected)
        for name, var in body_env.items():
            if name not in before and var.state in (OPEN, MAYBE) and not terminated:
                self._leak(
                    name,
                    var,
                    f"{self.acquired_word} inside a loop but not "
                    f"{self.closed_word} by the end of the loop body",
                )
        merged = self._merge({}, [(body_env, terminated), (dict(env), False)])
        env.clear()
        env.update(merged)

    def _try(self, stmt: ast.Try, env: dict[str, _Var], protected: frozenset[str]) -> bool:
        closers = self._finally_closers(stmt.finalbody)
        inner_protected = protected | closers
        entry_env = {k: v.copy() for k, v in env.items()}
        body_term = self._block(stmt.body, env, inner_protected)
        body_term = self._block(stmt.orelse, env, inner_protected) or body_term

        handler_branches: list[tuple[dict[str, _Var], bool]] = []
        for handler in stmt.handlers:
            handler_env = {k: v.copy() for k, v in entry_env.items()}
            h_term = self._block(handler.body, handler_env, inner_protected)
            handler_branches.append((handler_env, h_term))

        merged = self._merge({}, [(env, body_term), *handler_branches])
        env.clear()
        env.update(merged)
        final_term = self._block(stmt.finalbody, env, protected)
        return final_term or (body_term and all(t for _, t in handler_branches) and bool(stmt.handlers))

    # -- assignments and calls ------------------------------------------

    def _assign(self, stmt: ast.stmt, env: dict[str, _Var]) -> None:
        value = getattr(stmt, "value", None)
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        if value is None:
            return
        if self._is_acquisition(value):
            if len(targets) == 1 and isinstance(targets[0], ast.Name):
                name = targets[0].id
                prior = env.get(name)
                if prior is not None and prior.state in (OPEN, MAYBE):
                    self._leak(name, prior, "overwritten while still open")
                env[name] = _Var(OPEN, stmt.lineno, stmt.col_offset)
            # Acquisition into an attribute/subscript: ownership is
            # stored somewhere we cannot track; nothing to do.
            return
        self._use_check(value, env)
        for target in targets:
            if isinstance(target, ast.Name) and target.id in env:
                var = env[target.id]
                if isinstance(value, ast.Name) and value.id == target.id:
                    continue
                if var.state in (OPEN, MAYBE):
                    self._leak(target.id, var, "rebound while still open")
                del env[target.id]

    def _expr_stmt(self, value: ast.expr, env: dict[str, _Var]) -> None:
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and isinstance(value.func.value, ast.Name)
            and value.func.value.id in env
        ):
            name = value.func.value.id
            var = env[name]
            method = value.func.attr
            if method in self.releasers:
                if var.state == CLOSED:
                    self._emit(
                        "double-release",
                        name,
                        value.lineno,
                        value.col_offset,
                        f"double {self.release_word} of {self.noun} {name!r}",
                        self.double_hint,
                    )
                else:
                    env[name] = _Var(CLOSED, var.line, var.col)
                for arg in value.args:
                    self._use_check(arg, env)
                return
            if method in self.discarders:
                if var.state not in _CLOSED_ISH:
                    env[name] = _Var(DISCARDED, var.line, var.col)
                return
        self._use_check(value, env)


class BufferLifecycleRule(Rule):
    name = "buffer-lifecycle"
    description = (
        "acquire_buffer()/MarshalBuffer() results must be released, "
        "discarded, recycled, or returned on every control-flow path; "
        "flags double release and use-after-release"
    )
    #: subclass hook: the walker class used per function (span-balance
    #: swaps in its own vocabulary)
    analysis_class = _FunctionAnalysis

    def finding(self, module: SourceModule, line: int, col: int, message: str, hint: str) -> Finding:
        return Finding(
            rule=self.name,
            path=module.path,
            line=line,
            col=col,
            severity="error",
            message=message,
            hint=hint,
        )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                analysis = self.analysis_class(self, module, node.name)
                analysis.run(node.body)
                yield from analysis.findings
