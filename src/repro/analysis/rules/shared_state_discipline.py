"""shared-state-discipline: declared shared structures mutate under locks.

The dynamic race detector (``repro.runtime.tsan``) checks *executions*:
it catches two unordered accesses with disjoint locksets, but only on
the interleavings a run happens to produce.  This rule is the static
half of the same contract: any structure the code *declares* shared —
a class decorated ``@shared_state`` or a container registered through
``tsan.track(...)`` — may only be mutated

* inside a ``with <lock>:`` region (any named lock; *which* lock is the
  dynamic detector's job),
* in the declaring class's ``__init__`` (construction precedes
  sharing),
* in a door handler (door dispatch serializes the handler against its
  caller — the kernel adds the happens-before edge), or
* in a function the project-wide call graph proves is only ever reached
  under a lock (every resolved call site is lexically inside a
  ``with <lock>:`` or inside another such protected function).  This is
  what makes the rule whole-program: ``_rebuild_matrix`` mutating
  ``self._matrix`` is fine *because* its three callers all hold
  ``self._lock`` — a fact no single function, and often no single
  module, exhibits.

Mutations recognized: attribute assignment on a shared instance
(``rep.epoch = n``, ``rep.doors += [...]``), subscript stores and
deletes on a tracked container (``stats["shed"] += 1``), and calls to
mutator methods on either (``rep.doors.remove(d)``, ``memo.update(...)``).
Shared instances are identified as ``self`` inside a ``@shared_state``
class, any receiver whose class annotation names one — the same
annotation discipline the lock-ordering rule keys on — or, since the
membership work, any field a constructor assigns one to: seeing
``self.table = MemberTable(...)`` teaches the rule that ``self.table``
in that class *is* a ``MemberTable``, so ``self.table.incarnation = n``
and ``self.table.members[k] = v`` are checked wherever they appear,
one attribute hop deep, with no annotation required.

A finding means one of: take the lock, move the mutation into the
declaring ``__init__``/a handler, or — if the path really is
single-threaded by construction — suppress with a justification.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.engine import Finding, Rule
from repro.analysis.rules.lock_ordering import _lock_name

if TYPE_CHECKING:
    from repro.analysis.callgraph import FunctionInfo, Program

__all__ = ["SharedStateDisciplineRule"]

_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "appendleft",
        "popleft",
        "sort",
        "reverse",
    }
)


def _decorator_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_track_call(node: ast.expr) -> bool:
    """True for ``track(...)`` / ``tsan.track(...)`` / ``_tsan.track(...)``."""
    return isinstance(node, ast.Call) and _decorator_name(node.func) == "track"


class SharedStateDisciplineRule(Rule):
    name = "shared-state-discipline"
    description = (
        "structures declared shared (@shared_state classes, tsan.track "
        "containers) must only be mutated under a lock, in __init__, or "
        "in a door-serialized handler"
    )
    whole_program = True

    def __init__(self) -> None:
        self._program: "Program | None" = None

    def begin(self, program: "Program") -> None:
        self._program = program

    # -- collection ------------------------------------------------------

    def _collect(
        self, graph
    ) -> tuple[set[str], set[tuple[str, str]], dict, set, dict]:
        """Shared class names, tracked (class, field) pairs, tracked
        locals per function, door-handler function keys, and the
        constructor-assignment map (class, field) -> shared class."""
        shared_classes: set[str] = set()
        for module in self._program.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and any(
                    _decorator_name(d) == "shared_state" for d in node.decorator_list
                ):
                    shared_classes.add(node.name)

        tracked_fields: set[tuple[str, str]] = set()
        tracked_locals: dict[tuple, set[str]] = {}
        handler_keys: set[tuple] = set()
        constructed: dict[tuple[str, str], str] = {}
        for info in graph.functions.values():
            locals_here: set[str] = set()
            for node in ast.walk(info.node):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                value = node.value
                if value is None:
                    continue
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                if _is_track_call(value):
                    for target in targets:
                        if isinstance(target, ast.Name):
                            locals_here.add(target.id)
                        elif isinstance(target, ast.Attribute) and isinstance(
                            target.value, ast.Name
                        ):
                            owner = self._receiver_class(info, target.value.id)
                            if owner:
                                tracked_fields.add((owner, target.attr))
                elif isinstance(value, ast.Call):
                    # constructor-assignment inference: self.<field> =
                    # SharedCls(...) teaches us the field's class
                    cls_name = _decorator_name(value.func)
                    if cls_name in shared_classes:
                        for target in targets:
                            if isinstance(target, ast.Attribute) and isinstance(
                                target.value, ast.Name
                            ):
                                owner = self._receiver_class(info, target.value.id)
                                if owner:
                                    constructed[(owner, target.attr)] = cls_name
            if locals_here:
                tracked_locals[info.key] = locals_here
            # door handlers: bare names passed to a create_door(...) call
            for call in info.calls:
                callee = call.func
                callee_name = (
                    callee.attr
                    if isinstance(callee, ast.Attribute)
                    else callee.id
                    if isinstance(callee, ast.Name)
                    else None
                )
                if callee_name != "create_door":
                    continue
                for arg in call.args:
                    if isinstance(arg, ast.Name):
                        # nested function passed by name
                        for key in graph.functions:
                            if (
                                key[0] == info.key[0]
                                and key[2].rsplit(".", 1)[-1] == arg.id
                            ):
                                handler_keys.add(key)
                    elif isinstance(arg, ast.Attribute) and isinstance(
                        arg.value, ast.Name
                    ):
                        # bound method: create_door(domain, self.handler)
                        owner = self._receiver_class(info, arg.value.id)
                        if owner:
                            key = (info.key[0], owner, arg.attr)
                            if key in graph.functions:
                                handler_keys.add(key)
        return shared_classes, tracked_fields, tracked_locals, handler_keys, constructed

    def _receiver_class(self, info: "FunctionInfo", receiver: str) -> str | None:
        """The class a bare receiver name denotes, if knowable."""
        if receiver == "self" and info.class_name:
            return info.class_name.split(".", 1)[0]
        return info.annotations.get(receiver)

    # -- protection fixpoint ---------------------------------------------

    def _protected_functions(self, graph) -> set[tuple]:
        """Functions only ever reached while some lock is held.

        Greatest fixpoint: start from every function that has at least
        one resolved call site, then evict any with a call site that is
        neither under a lock nor inside a still-protected caller.
        """
        callers: dict[tuple, list[tuple[tuple, bool]]] = {}
        for info in graph.functions.values():
            for held, call in self._calls_with_lock_state(info):
                resolved = graph.resolve_call(info, call)
                if resolved is not None:
                    callers.setdefault(resolved, []).append((info.key, bool(held)))
        protected = set(callers)
        changed = True
        while changed:
            changed = False
            for key in list(protected):
                for caller, under_lock in callers[key]:
                    if not under_lock and caller not in protected:
                        protected.discard(key)
                        changed = True
                        break
        return protected

    @staticmethod
    def _calls_with_lock_state(info: "FunctionInfo"):
        """(held-locks, call) for every call in a function body."""
        results: list[tuple[list[str], ast.Call]] = []

        class Walker(ast.NodeVisitor):
            def __init__(self) -> None:
                self.held: list[str] = []

            def visit_With(self, node: ast.With) -> None:
                taken = 0
                for item in node.items:
                    if _lock_name(item.context_expr) is not None:
                        self.held.append("lock")
                        taken += 1
                for stmt in node.body:
                    self.visit(stmt)
                for _ in range(taken):
                    self.held.pop()

            def visit_Call(self, node: ast.Call) -> None:
                results.append((list(self.held), node))
                self.generic_visit(node)

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                pass

            visit_AsyncFunctionDef = visit_FunctionDef

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                pass

        walker = Walker()
        for stmt in info.node.body:
            walker.visit(stmt)
        return results

    # -- checking --------------------------------------------------------

    def finish(self) -> Iterator[Finding]:
        if self._program is None:
            return
        graph = self._program.callgraph
        shared_classes, tracked_fields, tracked_locals, handlers, constructed = (
            self._collect(graph)
        )
        if not shared_classes and not tracked_fields and not tracked_locals:
            self._program = None
            return
        protected = self._protected_functions(graph)
        for info in graph.functions.values():
            base_name = info.key[2].rsplit(".", 1)[-1]
            if base_name == "__init__" and info.class_name in shared_classes:
                continue  # construction precedes sharing
            if info.key in handlers or info.key in protected:
                continue
            yield from self._check_function(
                info,
                shared_classes,
                tracked_fields,
                tracked_locals.get(info.key, ()),
                constructed,
            )
        self._program = None

    def _check_function(
        self,
        info: "FunctionInfo",
        shared_classes: set[str],
        tracked_fields: set[tuple[str, str]],
        tracked_locals,
        constructed: dict[tuple[str, str], str],
    ) -> Iterator[Finding]:
        rule = self

        def instance_class(node: ast.expr) -> str | None:
            """The class an expression denotes an instance of, if knowable:
            a bare receiver (``self`` / annotated param), or one attribute
            hop through the constructor-assignment map."""
            if isinstance(node, ast.Name):
                return rule._receiver_class(info, node.id)
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                owner = rule._receiver_class(info, node.value.id)
                if owner:
                    return constructed.get((owner, node.attr))
            return None

        def shared_attr(node: ast.expr) -> str | None:
            """'Cls.field' when node is <shared>.field, else None."""
            if isinstance(node, ast.Attribute):
                owner = instance_class(node.value)
                if owner in shared_classes:
                    return f"{owner}.{node.attr}"
            return None

        def tracked_container(node: ast.expr) -> str | None:
            """A display name when node denotes a tracked container."""
            if isinstance(node, ast.Name) and node.id in tracked_locals:
                return node.id
            if isinstance(node, ast.Attribute):
                owner = instance_class(node.value)
                if owner and (owner, node.attr) in tracked_fields:
                    return f"{owner}.{node.attr}"
            return shared_attr(node)

        findings: list[Finding] = []

        def flag(node: ast.AST, what: str) -> None:
            findings.append(
                Finding(
                    rule=rule.name,
                    path=info.module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    severity="warning",
                    message=(
                        f"shared state {what} mutated outside a lock "
                        "region or door-serialized handler"
                    ),
                    hint="wrap the mutation in the owning lock, move it "
                    "into __init__ or a door handler, or suppress with a "
                    "justification if the path is single-threaded by "
                    "construction",
                )
            )

        class Walker(ast.NodeVisitor):
            def __init__(self) -> None:
                self.lock_depth = 0

            def visit_With(self, node: ast.With) -> None:
                locked = any(
                    _lock_name(item.context_expr) is not None
                    for item in node.items
                )
                if locked:
                    self.lock_depth += 1
                for stmt in node.body:
                    self.visit(stmt)
                if locked:
                    self.lock_depth -= 1

            def _check_target(self, target: ast.expr, node: ast.AST) -> None:
                if self.lock_depth:
                    return
                what = shared_attr(target)
                if what is None and isinstance(target, ast.Subscript):
                    what = tracked_container(target.value)
                    if what is not None:
                        what = f"{what}[...]"
                if what is not None:
                    flag(node, what)

            def visit_Assign(self, node: ast.Assign) -> None:
                for target in node.targets:
                    self._check_target(target, node)
                self.generic_visit(node.value)

            def visit_AugAssign(self, node: ast.AugAssign) -> None:
                self._check_target(node.target, node)
                self.generic_visit(node.value)

            def visit_Delete(self, node: ast.Delete) -> None:
                for target in node.targets:
                    self._check_target(target, node)

            def visit_Call(self, node: ast.Call) -> None:
                if (
                    not self.lock_depth
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS
                ):
                    what = tracked_container(node.func.value)
                    if what is not None:
                        flag(node, f"{what}.{node.func.attr}()")
                self.generic_visit(node)

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                pass  # nested defs are checked as their own functions

            visit_AsyncFunctionDef = visit_FunctionDef

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                pass

        walker = Walker()
        for stmt in info.node.body:
            walker.visit(stmt)
        yield from findings
