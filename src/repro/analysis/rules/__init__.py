"""The springlint rule catalog.

``ALL_RULES`` lists rule *classes* in the order findings should be
documented; the CLI instantiates a fresh rule set per run because some
rules carry whole-program state between ``check`` and ``finish``.
"""

from __future__ import annotations

from repro.analysis.rules.buffer_lifecycle import BufferLifecycleRule
from repro.analysis.rules.span_balance import SpanBalanceRule
from repro.analysis.rules.subcontract_conformance import SubcontractConformanceRule
from repro.analysis.rules.marshal_symmetry import MarshalSymmetryRule
from repro.analysis.rules.lock_ordering import LockOrderingRule
from repro.analysis.rules.clock_discipline import ClockDisciplineRule
from repro.analysis.rules.shared_state_discipline import SharedStateDisciplineRule
from repro.analysis.rules.unbounded_queue import UnboundedQueueRule
from repro.analysis.rules.metrics_naming import MetricsNamingRule
from repro.analysis.rules.compensation_discipline import CompensationDisciplineRule

__all__ = [
    "ALL_RULES",
    "BufferLifecycleRule",
    "SpanBalanceRule",
    "SubcontractConformanceRule",
    "MarshalSymmetryRule",
    "LockOrderingRule",
    "ClockDisciplineRule",
    "SharedStateDisciplineRule",
    "UnboundedQueueRule",
    "MetricsNamingRule",
    "CompensationDisciplineRule",
]

ALL_RULES = (
    BufferLifecycleRule,
    SpanBalanceRule,
    SubcontractConformanceRule,
    MarshalSymmetryRule,
    LockOrderingRule,
    ClockDisciplineRule,
    SharedStateDisciplineRule,
    UnboundedQueueRule,
    MetricsNamingRule,
    CompensationDisciplineRule,
)
