"""metrics-naming: telemetry names must be literal ``scope.name`` strings.

The windowed telemetry plane (PR 8) aggregates by exact string key: the
offline analyzer, the SLO engine, and the ``obsd`` service all look up
``(scope, name)`` pairs that must match what the emit site wrote.  A
name computed at runtime (f-string, concatenation, variable) breaks
that contract twice over:

* **grep-ability** — ``rg '"cache.hit"'`` must find every emit site of a
  series; dashboards and SLO policies reference the literal string, so
  the literal string has to exist in the source;
* **cardinality** — interpolating a request-scoped value into a metric
  name (``f"door.{door_id}.sim_us"``) mints an unbounded family of
  series, which is the windowed plane's version of an unbounded queue.

Two checks, both lexical:

* ``<tracer>.event(<name>, ...)`` — the first argument must be a string
  literal of the dotted form ``scope.name`` (``"cache.hit"``,
  ``"retry.backoff"``); a conditional expression over such literals
  (``"a.b" if flag else "a.c"``) is fine because both arms are still
  grep-able.
* ``<metrics>.counter(scope, <name>)`` / ``.histogram(scope, <name>)``
  — the *name* argument must be a plain literal (``"invocations"``,
  ``"queue_wait_us"``); the scope may be computed (it is routinely the
  subcontract id).

Receivers are matched by name (``tracer`` / ``metrics`` anywhere in the
attribute tail), which is the codebase convention.  Generic relays that
forward a caller-supplied name carry a targeted suppression::

    tracer.event(name, ...)  # springlint: disable=metrics-naming -- relay
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import Finding, Rule, SourceModule

__all__ = ["MetricsNamingRule"]

#: event names: lowercase dotted scope.name (at least one dot)
_EVENT_NAME = re.compile(r"^[a-z0-9_]+\.[a-z0-9_.]+$")

#: counter/histogram names: lowercase words, dots allowed, no interpolation
_METRIC_NAME = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")


def _receiver_tail(node: ast.expr) -> str | None:
    """The receiver's trailing name: ``kernel.tracer`` -> ``tracer``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_tracerish(name: str | None) -> bool:
    return name is not None and "tracer" in name.lower()


def _is_metricsish(name: str | None) -> bool:
    return name is not None and "metric" in name.lower()


def _literal_ok(node: ast.expr, pattern: re.Pattern) -> bool:
    """True when ``node`` is a matching literal (or a conditional whose
    arms are both matching literals — still grep-able, still bounded)."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, str) and bool(pattern.match(node.value))
    if isinstance(node, ast.IfExp):
        return _literal_ok(node.body, pattern) and _literal_ok(node.orelse, pattern)
    return False


def _name_argument(call: ast.Call, position: int, keyword: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if len(call.args) > position:
        return call.args[position]
    return None


class MetricsNamingRule(Rule):
    name = "metrics-naming"
    description = (
        "tracer events and metric names must be literal dotted strings "
        "at the emit site (grep-able, bounded-cardinality)"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = _receiver_tail(func.value)
            if func.attr == "event" and _is_tracerish(receiver):
                yield from self._check_event(module, node)
            elif func.attr in ("counter", "histogram") and _is_metricsish(receiver):
                yield from self._check_metric(module, node, func.attr)

    def _check_event(self, module: SourceModule, call: ast.Call) -> Iterator[Finding]:
        arg = _name_argument(call, 0, "name")
        if arg is None or _literal_ok(arg, _EVENT_NAME):
            return
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            message = (
                f"event name {arg.value!r} is not of the dotted "
                "scope.name form the windowed plane aggregates by"
            )
            hint = 'name events "scope.what", e.g. "cache.hit" or "retry.backoff"'
        else:
            message = (
                "event name is computed at runtime: non-literal names "
                "defeat grep-ability and can mint unbounded metric "
                "cardinality"
            )
            hint = (
                "emit a literal dotted name here, or suppress a generic "
                "relay with a justified # springlint: disable=metrics-naming"
            )
        yield Finding(
            rule=self.name,
            path=module.path,
            line=call.lineno,
            col=call.col_offset,
            severity="error",
            message=message,
            hint=hint,
        )

    def _check_metric(
        self, module: SourceModule, call: ast.Call, kind: str
    ) -> Iterator[Finding]:
        arg = _name_argument(call, 1, "name")
        if arg is None or _literal_ok(arg, _METRIC_NAME):
            return
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            message = (
                f"{kind} name {arg.value!r} is not a plain lowercase "
                "dotted identifier"
            )
            hint = 'use lowercase words joined by _ or ., e.g. "queue_wait_us"'
        else:
            message = (
                f"{kind} name is computed at runtime: the SLO/attribution "
                "plane looks series up by exact literal (scope, name) keys"
            )
            hint = (
                "pass a literal name (the scope argument may be computed), "
                "or suppress a generic relay with a justified "
                "# springlint: disable=metrics-naming"
            )
        yield Finding(
            rule=self.name,
            path=module.path,
            line=call.lineno,
            col=call.col_offset,
            severity="error",
            message=message,
            hint=hint,
        )
