"""subcontract-conformance: subcontract subclasses must honor the vector.

The paper's flexibility argument (new object mechanics under unchanged
stubs) only holds if every subcontract implements the operations vector
the stubs rely on.  This rule builds the package-wide class hierarchy by
name and checks every class that (transitively) derives from
``ClientSubcontract`` or ``ServerSubcontract``:

* **missing operations** — a leaf client subcontract must provide
  ``invoke``, ``copy``, ``consume``, ``marshal_rep`` and
  ``unmarshal_rep`` somewhere along its chain; a leaf server subcontract
  must provide ``export`` and ``revoke``;
* **missing id** — a leaf subcontract must assign a non-empty wire ``id``;
* **incompatible signatures** — overrides must keep the arity the stubs
  call with (``invoke(self, obj, buffer)`` and friends);
* **swallowed MarshalError** — an ``except`` catching any marshal-layer
  error whose body never re-raises hides wire corruption from the
  caller; subcontracts must let marshal errors propagate (or wrap and
  re-raise them).

Classes that are themselves subclassed within the analyzed tree count as
intermediate bases and are exempt from the leaf checks (``SingleDoorClient``
has no ``id`` by design).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.engine import Finding, Rule, SourceModule

__all__ = ["SubcontractConformanceRule"]

_CLIENT_ROOT = "ClientSubcontract"
_SERVER_ROOT = "ServerSubcontract"

_CLIENT_REQUIRED = ("invoke", "copy", "consume", "marshal_rep", "unmarshal_rep")
_SERVER_REQUIRED = ("export", "revoke")

#: operation -> number of positional parameters after self the stubs
#: pass; None means "at least this many" (export takes free-form options)
_ARITY: dict[str, tuple[int, bool]] = {
    "invoke": (2, False),
    "invoke_preamble": (2, False),
    "marshal": (2, False),
    "unmarshal": (2, False),
    "marshal_copy": (2, False),
    "marshal_rep": (2, False),
    "unmarshal_rep": (2, False),
    "copy": (1, False),
    "consume": (1, False),
    "type_of": (1, False),
    "type_info": (1, False),
    "export": (2, True),
    "revoke": (1, False),
}

_MARSHAL_ERRORS = {
    "MarshalError",
    "WireTypeError",
    "BufferUnderflowError",
    "DoorVectorError",
    "BufferLifecycleError",
}


@dataclass
class _ClassInfo:
    name: str
    module_path: str
    line: int
    col: int
    bases: list[str]
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    has_id: bool = False


def _base_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _positional_arity(func: ast.FunctionDef) -> tuple[int, int, bool]:
    """(required_positional, max_positional, has_star) excluding self."""
    args = func.args
    positional = list(args.posonlyargs) + list(args.args)
    if positional and positional[0].arg in ("self", "cls"):
        positional = positional[1:]
    n_defaults = len(args.defaults)
    required = len(positional) - n_defaults
    has_star = args.vararg is not None or args.kwarg is not None
    return required, len(positional), has_star


class SubcontractConformanceRule(Rule):
    name = "subcontract-conformance"
    description = (
        "subcontract subclasses must implement the required operations "
        "with stub-compatible signatures and must not swallow MarshalError"
    )
    #: the class hierarchy spans modules (SingleDoorClient lives apart
    #: from its leaves), so this rule sees the whole program
    whole_program = True

    def __init__(self) -> None:
        self._classes: dict[str, _ClassInfo] = {}
        self._class_nodes: list[tuple[SourceModule, ast.ClassDef]] = []

    # -- whole-program collection ---------------------------------------

    def begin(self, program) -> None:
        for module in program.modules:
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    self._collect_class(module, node)

    def _collect_class(self, module: SourceModule, node: ast.ClassDef) -> None:
        info = _ClassInfo(
            name=node.name,
            module_path=module.path,
            line=node.lineno,
            col=node.col_offset,
            bases=[b for b in (_base_name(base) for base in node.bases) if b],
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[item.name] = item
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name) and target.id == "id":
                        info.has_id = self._nonempty_const(item.value)
            elif isinstance(item, ast.AnnAssign):
                if (
                    isinstance(item.target, ast.Name)
                    and item.target.id == "id"
                    and item.value is not None
                ):
                    info.has_id = self._nonempty_const(item.value)
        # Last definition of a name wins, matching python import order
        # closely enough for a by-name hierarchy.
        self._classes[info.name] = info
        self._class_nodes.append((module, node))

    @staticmethod
    def _nonempty_const(value: ast.expr) -> bool:
        return not (isinstance(value, ast.Constant) and value.value in ("", None))

    # -- whole-program checks -------------------------------------------

    def finish(self) -> Iterator[Finding]:
        findings: list[Finding] = []
        for module, node in self._class_nodes:
            findings.extend(self._check_swallowed_marshal_errors(module, node))
        self._class_nodes = []
        subclassed = {base for info in self._classes.values() for base in info.bases}

        for info in self._classes.values():
            root = self._root_of(info)
            if root is None:
                continue
            chain = self._chain_of(info)
            findings.extend(self._check_signatures(info))
            if info.name in subclassed:
                continue  # intermediate base: leaf obligations don't apply
            required = _CLIENT_REQUIRED if root == _CLIENT_ROOT else _SERVER_REQUIRED
            provided = {m for c in chain for m in c.methods}
            for op in required:
                if op not in provided:
                    findings.append(
                        self._finding(
                            info,
                            f"subcontract {info.name!r} does not implement "
                            f"required operation {op!r}",
                            f"the stubs call {op}() through the subcontract "
                            "vector; add an implementation or inherit one",
                        )
                    )
            if not any(c.has_id for c in chain):
                findings.append(
                    self._finding(
                        info,
                        f"subcontract {info.name!r} does not define a wire id",
                        'assign a stable identifier, e.g. id = "mycontract"',
                    )
                )
        yield from findings

    def _root_of(self, info: _ClassInfo) -> str | None:
        seen: set[str] = set()
        stack = list(info.bases)
        while stack:
            base = stack.pop()
            if base in (_CLIENT_ROOT, _SERVER_ROOT):
                return base
            if base in seen:
                continue
            seen.add(base)
            parent = self._classes.get(base)
            if parent is not None:
                stack.extend(parent.bases)
        return None

    def _chain_of(self, info: _ClassInfo) -> list[_ClassInfo]:
        chain = [info]
        seen = {info.name}
        stack = list(info.bases)
        while stack:
            base = stack.pop()
            if base in seen:
                continue
            seen.add(base)
            parent = self._classes.get(base)
            if parent is not None:
                chain.append(parent)
                stack.extend(parent.bases)
        return chain

    def _check_signatures(self, info: _ClassInfo) -> Iterator[Finding]:
        for op, (expected, open_ended) in _ARITY.items():
            func = info.methods.get(op)
            if func is None:
                continue
            required, maximum, has_star = _positional_arity(func)
            ok = (
                has_star
                or (required <= expected <= maximum)
                or (open_ended and required <= expected)
            )
            if not ok:
                yield Finding(
                    rule=self.name,
                    path=info.module_path,
                    line=func.lineno,
                    col=func.col_offset,
                    severity="error",
                    message=(
                        f"{info.name}.{op} has an incompatible signature: "
                        f"the stubs pass {expected} positional argument(s) "
                        f"after self, this override requires {required} "
                        f"and accepts at most {maximum}"
                    ),
                    hint="match the base-class parameter list (extra "
                    "keyword-only or defaulted parameters are fine)",
                )

    def _check_swallowed_marshal_errors(
        self, module: SourceModule, node: ast.ClassDef
    ) -> Iterator[Finding]:
        if self._root_of_ast(node) is None and not self._looks_like_subcontract(node):
            return
        for handler in (
            n for n in ast.walk(node) if isinstance(n, ast.ExceptHandler)
        ):
            caught = self._caught_names(handler.type)
            if not (caught & _MARSHAL_ERRORS):
                continue
            reraises = any(isinstance(n, ast.Raise) for n in ast.walk(handler))
            if not reraises:
                yield Finding(
                    rule=self.name,
                    path=module.path,
                    line=handler.lineno,
                    col=handler.col_offset,
                    severity="error",
                    message=(
                        f"{node.name} silently swallows "
                        f"{', '.join(sorted(caught & _MARSHAL_ERRORS))}: "
                        "wire corruption would be hidden from the caller"
                    ),
                    hint="re-raise (bare `raise`), or wrap the error in a "
                    "subcontract-level exception and raise that",
                )

    def _root_of_ast(self, node: ast.ClassDef) -> str | None:
        stack = [b for b in (_base_name(base) for base in node.bases) if b]
        seen: set[str] = set()
        while stack:
            base = stack.pop()
            if base in (_CLIENT_ROOT, _SERVER_ROOT):
                return base
            if base in seen:
                continue
            seen.add(base)
            parent = self._classes.get(base)
            if parent is not None:
                stack.extend(parent.bases)
        return None

    @staticmethod
    def _looks_like_subcontract(node: ast.ClassDef) -> bool:
        names = {b for b in (_base_name(base) for base in node.bases) if b}
        return any("Subcontract" in n or n.endswith(("Client", "Server")) for n in names)

    def _caught_names(self, type_node: ast.expr | None) -> set[str]:
        if type_node is None:
            return set()
        if isinstance(type_node, ast.Tuple):
            out: set[str] = set()
            for element in type_node.elts:
                name = _base_name(element)
                if name:
                    out.add(name)
            return out
        name = _base_name(type_node)
        return {name} if name else set()

    def _finding(self, info: _ClassInfo, message: str, hint: str) -> Finding:
        return Finding(
            rule=self.name,
            path=info.module_path,
            line=info.line,
            col=info.col,
            severity="error",
            message=message,
            hint=hint,
        )
