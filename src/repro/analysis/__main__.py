"""The springlint command line: ``python -m repro.analysis [paths]``.

Exit status is 0 when no findings survive suppression, 1 when any
finding is reported, and 2 on usage errors (argparse's convention).
"""

from __future__ import annotations

import argparse
import sys

# The analyzer CLI itself is host tooling, not simulated-path code: it
# reports elapsed wall time for the run, which is exactly what the
# clock-discipline rule exists to ban elsewhere.
import time  # springlint: disable=clock-discipline -- analyzer CLI timing is wall-clock by design; not simulated-path code

from repro.analysis import default_analyzer, load_pyproject_config
from repro.analysis.engine import iter_python_files, render_json
from repro.analysis.rules import ALL_RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="springlint",
        description="AST-based static analysis for the subcontract runtime",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: from "
        "[tool.springlint] paths in pyproject.toml, else 'src')",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON document instead of human text",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the shipped rules and exit",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE",
        help="disable a rule by name (repeatable)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE",
        help="run only the named rule(s) (repeatable)",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="only report findings in files changed relative to the "
        "given git ref (default HEAD: staged + unstaged + untracked); "
        "every file is still parsed so whole-program rules keep full "
        "context",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze files with N parallel worker processes (the "
        "whole-program pass still runs once, over all files)",
    )
    return parser


def _changed_files(ref: str) -> "set[str] | None":
    """Absolute paths of python files changed relative to ``ref``.

    Includes staged, unstaged, and (for HEAD) untracked files; returns
    None when git is unavailable or the ref does not resolve.
    """
    import subprocess
    from pathlib import Path

    commands = [["git", "diff", "--name-only", ref]]
    if ref == "HEAD":
        commands.append(
            ["git", "ls-files", "--others", "--exclude-standard"]
        )
    changed: set[str] = set()
    for command in commands:
        try:
            result = subprocess.run(
                command, capture_output=True, text=True, timeout=30
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if result.returncode != 0:
            return None
        for line in result.stdout.splitlines():
            line = line.strip()
            if line.endswith(".py"):
                changed.add(str(Path(line).resolve()))
    return changed


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for cls in ALL_RULES:
            print(f"{cls.name:28s} {cls.description}")
        return 0

    config = load_pyproject_config()
    paths = args.paths or config.get("paths") or ["src"]
    disabled = frozenset(args.disable) | frozenset(config.get("disable", ()))
    selected = frozenset(args.select) if args.select else None

    # A typo'd path or rule name must not turn into a silent green run.
    known = {cls.name for cls in ALL_RULES}
    unknown = (disabled | (selected or frozenset())) - known
    if unknown:
        print(
            f"springlint: error: unknown rule(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})",
            file=sys.stderr,
        )
        return 2
    from pathlib import Path

    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(
            f"springlint: error: no such path: {', '.join(str(m) for m in missing)}",
            file=sys.stderr,
        )
        return 2

    report_only = None
    if args.changed is not None:
        changed = _changed_files(args.changed)
        if changed is None:
            print(
                f"springlint: error: could not list files changed vs "
                f"{args.changed!r} (not a git checkout, or bad ref)",
                file=sys.stderr,
            )
            return 2

    started = time.perf_counter()  # springlint: disable=clock-discipline -- CLI elapsed-time report, see module comment
    analyzer = default_analyzer(disabled=disabled, selected=selected)
    files = list(iter_python_files(paths))
    if args.changed is not None:
        # Findings are filtered by resolved path; every file under the
        # analyzed paths still feeds the whole-program rules.
        report_only = frozenset(
            str(f) for f in files if str(Path(f).resolve()) in changed
        )
        if not report_only:
            noun = "file" if len(files) == 1 else "files"
            print(
                f"springlint: 0 findings ({len(files)} {noun} parsed, "
                f"none changed vs {args.changed})",
                file=sys.stderr,
            )
            return 0
    findings = analyzer.run_paths(
        paths, jobs=max(1, args.jobs), report_only=report_only
    )
    elapsed = time.perf_counter() - started  # springlint: disable=clock-discipline -- CLI elapsed-time report, see module comment

    reported_files = len(report_only) if report_only is not None else len(files)
    if args.json:
        print(render_json(findings, files_seen=reported_files))
    else:
        for finding in findings:
            print(finding.format_human())
        noun = "finding" if len(findings) == 1 else "findings"
        scope = (
            f"{reported_files} changed of {len(files)} files"
            if report_only is not None
            else f"{len(files)} files"
        )
        print(
            f"springlint: {len(findings)} {noun} in {scope} "
            f"({elapsed:.2f}s)",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":
    try:
        status = main()
    except BrokenPipeError:
        # Output was piped to a consumer that closed early (e.g. head).
        # Point stdout at devnull so the interpreter's shutdown flush
        # doesn't print a second traceback, and exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        status = 1
    raise SystemExit(status)
