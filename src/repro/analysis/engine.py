"""The springlint rule engine.

springlint is an AST-based analyzer for the invariants this codebase
cannot express in the type system: pooled-buffer lifecycle, subcontract
conformance, marshal/unmarshal symmetry, lock ordering, shared-state
discipline, and simulated-clock discipline.  The engine is deliberately
small:

* a :class:`SourceModule` wraps one parsed file plus its inline
  suppressions (``# springlint: disable=<rule>``);
* a per-module :class:`Rule` inspects files independently via
  :meth:`Rule.check`; a rule that sets ``whole_program = True`` instead
  receives the entire parsed program — every module plus a project-wide
  call graph (:class:`repro.analysis.callgraph.Program`) — through
  :meth:`Rule.begin` and emits from :meth:`Rule.finish` (lock ordering
  chases call chains across modules at arbitrary depth);
* the :class:`Analyzer` walks the requested paths, runs every enabled
  rule, filters suppressed findings, and hands back a sorted list of
  :class:`Finding` objects.  Per-module rules parallelize across files
  (``jobs``); whole-program rules always see the full module set, even
  when reporting is restricted to changed files (``--changed``).

Rules never import the packages they analyze — everything is derived
from source text, so the analyzer runs on broken trees, on fixtures that
deliberately violate invariants, and on generated stub source that never
touches disk.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:
    from repro.analysis.callgraph import Program

__all__ = [
    "Finding",
    "SourceModule",
    "Rule",
    "Analyzer",
    "iter_python_files",
    "load_pyproject_config",
]

SEVERITIES = ("error", "warning")

#: ``# springlint: disable=rule-a,rule-b -- optional justification``
_SUPPRESS_RE = re.compile(
    r"#\s*springlint:\s*(?P<kind>disable-file|disable)\s*=\s*(?P<rules>[^#]*)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file and line."""

    rule: str
    path: str
    line: int
    col: int
    severity: str
    message: str
    hint: str = ""

    def format_human(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.severity}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


class SourceModule:
    """One parsed python file plus its inline suppression table."""

    def __init__(self, path: str | Path, text: str | None = None) -> None:
        self.path = str(path)
        if text is None:
            text = Path(path).read_text(encoding="utf-8")
        self.text = text
        self.tree = ast.parse(text, filename=self.path)
        #: physical line number -> rule names suppressed on that line
        #: ("*" suppresses every rule)
        self.line_suppressions: dict[int, set[str]] = {}
        #: rule names suppressed for the whole file
        self.file_suppressions: set[str] = set()
        self._scan_suppressions()

    def _scan_suppressions(self) -> None:
        for lineno, line in enumerate(self.text.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            rules_part = match.group("rules").split("--", 1)[0]
            rules = {r.strip() for r in rules_part.split(",") if r.strip()}
            if not rules:
                continue
            if match.group("kind") == "disable-file":
                self.file_suppressions |= rules
            else:
                self.line_suppressions.setdefault(lineno, set()).update(rules)

    def suppressed(self, finding: Finding) -> bool:
        """True when an inline comment silences this finding."""
        if {finding.rule, "*"} & self.file_suppressions:
            return True
        at_line = self.line_suppressions.get(finding.line, ())
        return finding.rule in at_line or "*" in at_line


class Rule:
    """Base class for springlint rules.

    Subclasses set ``name`` (the kebab-case id used in output and in
    suppression comments) and ``description``, and implement
    :meth:`check`.  A rule needing cross-module context sets
    ``whole_program = True``: it is handed the full parsed program (all
    modules plus the project-wide call graph) via :meth:`begin`, and
    emits everything from :meth:`finish`; its :meth:`check` is never
    parallelized and by default does nothing.  Per-module rules
    (``whole_program = False``) must keep :meth:`check` self-contained
    per file — the engine may run them on different files concurrently.
    """

    name: str = ""
    description: str = ""
    #: True: the rule sees every module via begin() and reports from
    #: finish(); False: check() runs per file, independently.
    whole_program: bool = False

    def begin(self, program: "Program") -> None:
        """Receive the whole parsed program (whole-program rules only)."""

    def check(self, module: SourceModule) -> Iterator[Finding]:
        return iter(())

    def finish(self) -> Iterator[Finding]:
        return iter(())


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, sorted, skipping caches."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for child in sorted(path.rglob("*.py")):
            parts = child.parts
            if "__pycache__" in parts or any(p.startswith(".") for p in parts):
                continue
            yield child


def _parse_failure(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule="parse",
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        severity="error",
        message=f"file does not parse: {exc.msg}",
    )


def _parse_and_check(
    path: str, rules: Sequence[Rule]
) -> tuple[SourceModule | None, list[Finding], Finding | None]:
    """Worker unit for parallel analysis: parse one file and run the
    per-module rules on it.  Top-level so it pickles; ``rules`` arrive
    as per-task copies, so concurrent files never share rule state."""
    try:
        module = SourceModule(path)
    except SyntaxError as exc:
        return None, [], _parse_failure(path, exc)
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(module))
    return module, findings, None


@dataclass
class Analyzer:
    """Run a set of rules over a set of files."""

    rules: Sequence[Rule]
    disabled: frozenset[str] = field(default_factory=frozenset)
    selected: frozenset[str] | None = None

    def enabled_rules(self) -> list[Rule]:
        out = []
        for rule in self.rules:
            if rule.name in self.disabled:
                continue
            if self.selected is not None and rule.name not in self.selected:
                continue
            out.append(rule)
        return out

    def run_modules(
        self,
        modules: Iterable[SourceModule],
        precomputed: "Sequence[Finding] | None" = None,
        report_only: "frozenset[str] | None" = None,
    ) -> list[Finding]:
        """Run enabled rules over parsed modules.

        ``precomputed`` (not None) carries the per-module findings
        already produced by parallel workers — the per-module rules are
        then skipped here, even when the workers found nothing;
        ``report_only`` restricts *reporting* to the named paths while
        every module still feeds the whole-program rules.
        """
        from repro.analysis.callgraph import Program

        modules = list(modules)
        by_path = {m.path: m for m in modules}
        rules = self.enabled_rules()
        findings: list[Finding] = list(precomputed or ())
        whole = [r for r in rules if r.whole_program]
        per_module = [r for r in rules if not r.whole_program]
        if precomputed is None:
            for rule in per_module:
                for module in modules:
                    findings.extend(rule.check(module))
        if whole:
            program = Program(modules)
            for rule in whole:
                rule.begin(program)
            for rule in whole:
                for module in modules:
                    findings.extend(rule.check(module))
        for rule in rules:
            findings.extend(rule.finish())
        kept = []
        for finding in findings:
            module = by_path.get(finding.path)
            if module is not None and module.suppressed(finding):
                continue
            if report_only is not None and finding.path not in report_only:
                continue
            kept.append(finding)
        kept.sort(key=Finding.sort_key)
        return kept

    def run_paths(
        self,
        paths: Iterable[str | Path],
        jobs: int = 1,
        report_only: "frozenset[str] | None" = None,
    ) -> list[Finding]:
        """Analyze every python file under ``paths``.

        ``jobs > 1`` fans the parse + per-module-rule phase out across
        worker processes (one task per file); the whole-program phase
        then runs over the assembled module set in this process.
        """
        files = [str(p) for p in iter_python_files(paths)]
        modules: list[SourceModule] = []
        parse_failures: list[Finding] = []
        per_module_findings: list[Finding] = []
        per_module_rules = [r for r in self.enabled_rules() if not r.whole_program]
        if jobs > 1 and len(files) > 1:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=jobs) as pool:
                results = pool.map(
                    _parse_and_check,
                    files,
                    [per_module_rules] * len(files),
                )
                for module, found, failure in results:
                    if failure is not None:
                        parse_failures.append(failure)
                    if module is not None:
                        modules.append(module)
                        per_module_findings.extend(found)
            findings = self.run_modules(
                modules,
                precomputed=per_module_findings,
                report_only=report_only,
            )
        else:
            for path in files:
                try:
                    modules.append(SourceModule(path))
                except SyntaxError as exc:
                    parse_failures.append(_parse_failure(path, exc))
            findings = self.run_modules(modules, report_only=report_only)
        if report_only is not None:
            parse_failures = [f for f in parse_failures if f.path in report_only]
        findings.extend(parse_failures)
        findings.sort(key=Finding.sort_key)
        return findings


def load_pyproject_config(start: str | Path = ".") -> dict:
    """Read ``[tool.springlint]`` from the nearest pyproject.toml.

    Returns an empty dict when there is no pyproject, no section, or no
    toml parser (python 3.10 without tomli); configuration is a
    convenience, never a requirement.
    """
    try:
        import tomllib
    except ImportError:  # python 3.10: tomllib is 3.11+, tomli may be absent
        return {}
    directory = Path(start).resolve()
    for candidate in (directory, *directory.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            try:
                data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
            except (OSError, tomllib.TOMLDecodeError):
                return {}
            section = data.get("tool", {}).get("springlint", {})
            return section if isinstance(section, dict) else {}
    return {}


def render_json(findings: Sequence[Finding], files_seen: int) -> str:
    counts = {sev: 0 for sev in SEVERITIES}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    return json.dumps(
        {
            "version": 1,
            "files": files_seen,
            "counts": counts,
            "findings": [f.to_json() for f in findings],
        },
        indent=2,
    )
