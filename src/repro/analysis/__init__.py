"""springlint: static analysis for the subcontract runtime.

An AST-based analyzer enforcing the invariants this codebase depends on
but python cannot express: pooled-buffer lifecycle, subcontract
conformance, marshal/unmarshal symmetry, lock ordering, and simulated-
clock discipline.

Run it as ``python -m repro.analysis [paths]`` or via the
``springlint`` console script.  See ``docs/static-analysis.md`` for the
rule catalog and suppression syntax.
"""

from __future__ import annotations

from repro.analysis.engine import (
    Analyzer,
    Finding,
    Rule,
    SourceModule,
    iter_python_files,
    load_pyproject_config,
)
from repro.analysis.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Analyzer",
    "Finding",
    "Rule",
    "SourceModule",
    "default_analyzer",
    "iter_python_files",
    "load_pyproject_config",
]


def default_analyzer(
    disabled: frozenset[str] = frozenset(),
    selected: frozenset[str] | None = None,
) -> Analyzer:
    """An :class:`Analyzer` with a fresh instance of every shipped rule."""
    return Analyzer(
        rules=[cls() for cls in ALL_RULES],
        disabled=disabled,
        selected=selected,
    )
