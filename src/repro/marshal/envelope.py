"""Framed envelopes: the marshal layer's process-boundary framing.

The process fabric (:mod:`repro.net.procfabric`) carries door calls
between real OS processes.  The *payload* of such a call is the exact
byte stream a :class:`~repro.marshal.buffer.MarshalBuffer` already
produced — the wire format IS the inter-process format, no re-marshalling
layer exists — but three things ride on the buffer *out of band* and must
survive the boundary: the call deadline (``deadline_us``), the trace
context (``trace_ctx``), and the idempotency key (``idem_key``).  The
envelope is the small fixed-size header that frames one payload and
carries those items, plus routing (call id, target export) and the
shared-memory-ring indirection flag for bulk payloads.

Layout (little-endian, 64 bytes)::

    magic        u16   0x5BC6
    version      u8    2
    kind         u8    CALL / REPLY / ERROR / CONTROL / CONTROL_REPLY
    call_id      u64   request/reply correlation
    target       u32   export id (CALL) or control op (CONTROL)
    flags        u32   RING / DEADLINE / TRACE / IDEM bits
    budget_us    f64   remaining deadline budget (sim-us), if DEADLINE
    trace_id     u64   wire trace context, if TRACE
    span_id      u64   wire trace context, if TRACE
    payload_len  u32   payload byte count
    ring_off     u64   free-running ring offset of the payload, if RING
    idem_key     u64   idempotency key of the logical request, if IDEM

The deadline crosses as a *remaining budget* rather than an absolute
instant because each process runs its own simulated clock; the receiver
re-anchors the budget on its clock and the existing delivery-leg check
enforces it unchanged.

Error payloads reuse the ordinary :class:`~repro.marshal.codec.Encoder`
items: a string (exception type name), a string (message), and a float64
(the ``retry_after_us`` hint, so :class:`ServerBusyError`'s admission
signal round-trips exactly).
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Any

from repro.marshal.codec import Decoder, Encoder

if TYPE_CHECKING:
    import socket

__all__ = [
    "Envelope",
    "ChannelClosedError",
    "KIND_CALL",
    "KIND_REPLY",
    "KIND_ERROR",
    "KIND_CONTROL",
    "KIND_CONTROL_REPLY",
    "FLAG_RING",
    "FLAG_DEADLINE",
    "FLAG_TRACE",
    "FLAG_IDEM",
    "HEADER",
    "pack_error",
    "unpack_error",
    "send_envelope",
    "recv_envelope",
    "read_exact",
]

MAGIC = 0x5BC6
VERSION = 2

KIND_CALL = 1
KIND_REPLY = 2
KIND_ERROR = 3
KIND_CONTROL = 4
KIND_CONTROL_REPLY = 5

_KINDS = (KIND_CALL, KIND_REPLY, KIND_ERROR, KIND_CONTROL, KIND_CONTROL_REPLY)

#: payload bytes live in the shared ring, not inline after the header
FLAG_RING = 0x1
#: ``budget_us`` is meaningful (the call carries a deadline)
FLAG_DEADLINE = 0x2
#: ``trace_id``/``span_id`` are meaningful (the call carries a context)
FLAG_TRACE = 0x4
#: ``idem_key`` is meaningful (the call names a logical request)
FLAG_IDEM = 0x8

HEADER = struct.Struct("<HBBQIIdQQIQQ")


class ChannelClosedError(Exception):
    """The peer closed the socket mid-stream (worker death, shutdown)."""


class Envelope:
    """One decoded envelope: header fields plus the payload bytes."""

    __slots__ = (
        "kind",
        "call_id",
        "target",
        "flags",
        "budget_us",
        "trace_ctx",
        "payload",
        "ring_off",
        "idem_key",
    )

    def __init__(
        self,
        kind: int,
        call_id: int,
        target: int,
        flags: int,
        budget_us: float | None,
        trace_ctx: tuple[int, int] | None,
        payload: bytes,
        ring_off: int = 0,
        idem_key: "int | None" = None,
    ) -> None:
        self.kind = kind
        self.call_id = call_id
        self.target = target
        self.flags = flags
        self.budget_us = budget_us
        self.trace_ctx = trace_ctx
        self.payload = payload
        self.ring_off = ring_off
        self.idem_key = idem_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Envelope kind={self.kind} call={self.call_id} "
            f"target={self.target} {len(self.payload)}B flags={self.flags:#x}>"
        )


def pack_header(
    kind: int,
    call_id: int,
    target: int,
    flags: int,
    budget_us: float,
    trace_id: int,
    span_id: int,
    payload_len: int,
    ring_off: int,
    idem_key: int = 0,
) -> bytes:
    return HEADER.pack(
        MAGIC,
        VERSION,
        kind,
        call_id,
        target,
        flags,
        budget_us,
        trace_id,
        span_id,
        payload_len,
        ring_off,
        idem_key,
    )


def pack_error(exc: BaseException) -> bytes:
    """Encode an exception for an ERROR envelope (type, message, hint)."""
    data = bytearray()
    enc = Encoder(data)
    enc.put_string(type(exc).__name__)
    enc.put_string(str(exc))
    enc.put_float64(float(getattr(exc, "retry_after_us", 0.0)))
    return bytes(data)


def unpack_error(payload: bytes) -> tuple[str, str, float]:
    """Decode an ERROR payload into ``(type_name, message, retry_after_us)``."""
    dec = Decoder(bytearray(payload))
    return (dec.get_string(), dec.get_string(), dec.get_float64())


def read_exact(sock: "socket.socket", count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`ChannelClosedError`."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ChannelClosedError(
                f"peer closed with {remaining}/{count} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    if len(chunks) == 1:
        return chunks[0]
    return b"".join(chunks)


def send_envelope(
    sock: "socket.socket",
    kind: int,
    call_id: int,
    target: int,
    payload: "bytes | bytearray | memoryview",
    budget_us: float | None = None,
    trace_ctx: tuple[int, int] | None = None,
    ring: Any | None = None,
    ring_min: int = 1 << 62,
    idem_key: "int | None" = None,
) -> bool:
    """Frame and send one envelope; returns True when the ring carried it.

    The payload is handed to the socket (or the shared ring) as a
    ``memoryview`` — the marshal buffer's ``bytearray`` is never copied
    into an intermediate joined message.  Callers serialize sends per
    socket themselves (the fabric holds a per-worker send lock).
    """
    flags = 0
    budget = 0.0
    if budget_us is not None:
        flags |= FLAG_DEADLINE
        budget = budget_us
    trace_id = span_id = 0
    if trace_ctx is not None:
        flags |= FLAG_TRACE
        trace_id, span_id = trace_ctx
    key = 0
    if idem_key is not None:
        flags |= FLAG_IDEM
        key = idem_key
    view = memoryview(payload)
    ring_off = 0
    # Payloads over the ring's half-capacity budget cross inline on the
    # socket: the ring's notify-after-write protocol cannot carry them
    # without risking a self-deadlock (see PreambleRing.max_payload).
    via_ring = (
        ring is not None
        and len(view) >= ring_min
        and len(view) <= ring.max_payload
    )
    if via_ring:
        flags |= FLAG_RING
        ring_off = ring.write(view)
    header = pack_header(
        kind,
        call_id,
        target,
        flags,
        budget,
        trace_id,
        span_id,
        len(view),
        ring_off,
        key,
    )
    if via_ring or not len(view):
        sock.sendall(header)
        return via_ring
    # Zero-copy gather write: header + payload in one syscall when the
    # socket takes it, falling back to sendall on a short write.
    sent = sock.sendmsg([header, view])
    if sent < len(header):
        sock.sendall(header[sent:])
        sock.sendall(view)
    else:
        off = sent - len(header)
        if off < len(view):
            sock.sendall(view[off:])
    return False


def recv_envelope(sock: "socket.socket", ring: Any | None = None) -> Envelope:
    """Receive one envelope; ring-flagged payloads are taken from ``ring``."""
    raw = read_exact(sock, HEADER.size)
    (
        magic,
        version,
        kind,
        call_id,
        target,
        flags,
        budget,
        trace_id,
        span_id,
        payload_len,
        ring_off,
        idem_key,
    ) = HEADER.unpack(raw)
    if magic != MAGIC or version != VERSION:
        raise ChannelClosedError(
            f"bad envelope header (magic={magic:#x} version={version})"
        )
    if kind not in _KINDS:
        raise ChannelClosedError(f"unknown envelope kind {kind}")
    if flags & FLAG_RING:
        if ring is None:
            raise ChannelClosedError("ring-flagged envelope but no ring attached")
        payload = ring.take(payload_len, expected_off=ring_off)
    elif payload_len:
        payload = read_exact(sock, payload_len)
    else:
        payload = b""
    return Envelope(
        kind,
        call_id,
        target,
        flags,
        budget if flags & FLAG_DEADLINE else None,
        (trace_id, span_id) if flags & FLAG_TRACE else None,
        payload,
        ring_off,
        idem_key if flags & FLAG_IDEM else None,
    )
