"""Marshalling error hierarchy."""

from __future__ import annotations

__all__ = [
    "MarshalError",
    "WireTypeError",
    "BufferUnderflowError",
    "DoorVectorError",
    "BufferLifecycleError",
]


class MarshalError(Exception):
    """Base class for errors raised by the marshal layer."""


class WireTypeError(MarshalError):
    """The next wire item does not have the expected type tag.

    Raised when stubs and skeletons disagree about an interface, or when a
    subcontract misreads a buffer — both bugs the self-describing wire
    format exists to catch early.
    """


class BufferUnderflowError(MarshalError):
    """A read ran past the end of the marshalled data."""


class DoorVectorError(MarshalError):
    """A door slot index did not name a live entry in the buffer's door vector."""


class BufferLifecycleError(MarshalError):
    """A pooled communication buffer was used outside its lifecycle.

    Raised immediately at the misuse site — double release, release of a
    buffer still parking live in-transit door references, or any put/get
    on a buffer that has already been returned to its domain's pool —
    instead of corrupting the pool and failing later via the
    pristine-state check on reacquisition.  With ``REPRO_DEBUG=1`` the
    first release site is recorded and included in double-release
    messages.
    """
