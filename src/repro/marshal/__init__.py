"""Marshal layer: communication buffers and wire encodings."""

from repro.marshal.buffer import MarshalBuffer
from repro.marshal.codec import Decoder, Encoder, WireTag
from repro.marshal.errors import (
    BufferUnderflowError,
    DoorVectorError,
    MarshalError,
    WireTypeError,
)

__all__ = [
    "MarshalBuffer",
    "Decoder",
    "Encoder",
    "WireTag",
    "MarshalError",
    "WireTypeError",
    "BufferUnderflowError",
    "DoorVectorError",
]
