"""Communication buffers.

A :class:`MarshalBuffer` is what the paper calls a "communications
buffer": stubs marshal arguments into it, subcontracts write their control
information and subcontract IDs into it, the kernel carries it through a
door, and the receiving side unmarshals from it.

Two properties matter for fidelity:

* **Door identifiers travel out-of-band.**  Marshalling a door identifier
  consumes the sender's identifier (kernel ``detach``), parks a transit
  reference in the buffer's *door vector*, and writes only a small slot
  index into the byte stream.  Unmarshalling attaches the transit
  reference into the receiving domain.  Identifiers therefore cannot be
  forged from bytes — the capability model of Section 3.3 survives.

* **Subcontracts may prepend data.**  ``invoke_preamble`` (Section 5.1.4)
  lets a subcontract write control information *before* argument
  marshalling begins, or redirect marshalling into a shared-memory region;
  the buffer supports both by being an ordinary append stream plus an
  optional backing-region marker.

Buffers on the invocation hot path are pooled: each domain keeps a small
free-list (:meth:`repro.kernel.domain.Domain.acquire_buffer`), and
:meth:`release` resets a buffer and returns it to its home pool.  Only
pool-acquired buffers participate — ``MarshalBuffer(kernel)`` constructs
an unpooled buffer whose ``release`` is a no-op.  Misuse of a pooled
buffer (double release, release while still parking live in-transit door
references, any put/get after release) raises
:class:`~repro.marshal.errors.BufferLifecycleError` at the misuse site;
failure paths that may hold in-transit references clean up with
:meth:`recycle`, which discards and then releases.
"""

from __future__ import annotations

import os
import traceback
from typing import TYPE_CHECKING, Any

from repro.marshal.codec import Decoder, Encoder, WireTag
from repro.marshal.errors import BufferLifecycleError, DoorVectorError, MarshalError

if TYPE_CHECKING:
    from repro.kernel.domain import Domain
    from repro.kernel.doors import DoorIdentifier, TransitDoorRef
    from repro.kernel.nucleus import Kernel

__all__ = ["MarshalBuffer"]

#: free-list bound per domain; beyond this, released buffers are retired
POOL_LIMIT = 32

#: when true (REPRO_DEBUG=1 at import, or set by tests), release() records
#: the releasing stack so a later double release can name the first site
_DEBUG = os.environ.get("REPRO_DEBUG", "") not in ("", "0")


class _ReleasedStream:
    """Sentinel installed as a released buffer's encoder/decoder.

    Swapping the stream pointers costs nothing on the live hot path, but
    any put/get through a stale handle fails immediately and by name
    instead of corrupting a buffer that the pool may already have handed
    to another caller.
    """

    __slots__ = ()

    def __getattr__(self, name: str) -> Any:
        raise BufferLifecycleError(
            f"{name!r} on a released marshal buffer: this handle was "
            "returned to its domain's pool (use-after-release)"
        )

    def __setattr__(self, name: str, value: Any) -> None:
        raise BufferLifecycleError(
            f"cannot set {name!r} on a released marshal buffer "
            "(use-after-release)"
        )


_RELEASED_STREAM = _ReleasedStream()


class MarshalBuffer:
    """An append-only byte stream plus a kernel-managed door vector."""

    __slots__ = (
        "kernel",
        "data",
        "_enc",
        "_dec",
        "_clock",
        "doors",
        "region",
        "sealed",
        "_home",
        "_pooled",
        "_retired",
        "_real_enc",
        "_real_dec",
        "_released_at",
        "trace_ctx",
        "deadline_us",
        "idem_key",
    )

    def __init__(self, kernel: "Kernel | None" = None) -> None:
        self.kernel = kernel
        self.data = bytearray()
        self._enc = self._real_enc = Encoder(self.data)
        self._dec = self._real_dec = Decoder(self.data)
        self._clock = kernel.clock if kernel is not None else None
        #: out-of-band door references; entries become None once consumed
        self.doors: list["TransitDoorRef | None"] = []
        #: set by the shm subcontract's invoke_preamble: marshalling is
        #: going directly into a shared region, so transmission need not
        #: copy the bytes again (Section 5.1.4).
        self.region: Any | None = None
        self.sealed = False
        #: home pool (a Domain) when acquired via Domain.acquire_buffer
        self._home: "Domain | None" = None
        self._pooled = False
        self._retired = False
        self._released_at: str | None = None
        #: out-of-band trace context ``(trace_id, span_id)`` stamped by the
        #: kernel's traced door leg; like ``doors``, it crosses the
        #: transmission boundary without entering the marshalled bytes.
        self.trace_ctx: tuple[int, int] | None = None
        #: out-of-band absolute call deadline (sim-us) stamped by the
        #: kernel at door_call; enforced at the fabric, netserver, and
        #: delivery legs (see repro.runtime.deadline).
        self.deadline_us: float | None = None
        #: out-of-band idempotency key (u64) stamped by the kernel at
        #: door_call; consulted by server-side dedup memos so a retried
        #: request returns the recorded reply (see repro.runtime.idem).
        self.idem_key: int | None = None

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------

    def put_bool(self, value: bool) -> None:
        """Append a tagged boolean to the stream."""
        written = self._enc.put_bool(value)
        if self._clock is not None:
            self._clock.charge_bytes(written)

    def put_int8(self, value: int) -> None:
        """Append a tagged int8 to the stream."""
        written = self._enc.put_int8(value)
        if self._clock is not None:
            self._clock.charge_bytes(written)

    def put_int32(self, value: int) -> None:
        """Append a tagged int32 to the stream."""
        written = self._enc.put_int32(value)
        if self._clock is not None:
            self._clock.charge_bytes(written)

    def put_int64(self, value: int) -> None:
        """Append a tagged int64 to the stream."""
        written = self._enc.put_int64(value)
        if self._clock is not None:
            self._clock.charge_bytes(written)

    def put_float64(self, value: float) -> None:
        """Append a tagged float64 to the stream."""
        written = self._enc.put_float64(value)
        if self._clock is not None:
            self._clock.charge_bytes(written)

    def put_string(self, value: str) -> None:
        """Append a tagged UTF-8 string to the stream."""
        written = self._enc.put_string(value)
        if self._clock is not None:
            self._clock.charge_bytes(written)

    def put_bytes(self, value: bytes | bytearray) -> None:
        """Append a tagged byte string to the stream."""
        written = self._enc.put_bytes(value)
        if self._clock is not None:
            self._clock.charge_bytes(written)

    def put_nil(self) -> None:
        """Append a nil marker."""
        written = self._enc.put_nil()
        if self._clock is not None:
            self._clock.charge_bytes(written)

    def put_sequence_header(self, count: int) -> None:
        """Append a sequence header carrying the element count."""
        written = self._enc.put_sequence_header(count)
        if self._clock is not None:
            self._clock.charge_bytes(written)

    def put_object_header(self, subcontract_id: str) -> None:
        """Append a marshalled-object header with its subcontract ID (§6.1)."""
        written = self._enc.put_object_header(subcontract_id)
        if self._clock is not None:
            self._clock.charge_bytes(written)

    def put_door_id(self, domain: "Domain", ident: "DoorIdentifier") -> None:
        """Marshal a door identifier: consume it from ``domain``, park it
        in the door vector, and write its slot index into the stream."""
        transit = domain.kernel.detach_door_id(domain, ident)
        self._park_transit(transit)

    def put_door_transit(self, transit: "TransitDoorRef") -> None:
        """Park an already-detached door reference (forwarding paths)."""
        self._park_transit(transit)

    def _park_transit(self, transit: "TransitDoorRef") -> None:
        slot = len(self.doors)
        if slot > 0xFFFF:
            raise MarshalError("door vector overflow (65536 entries)")
        self.doors.append(transit)
        written = self._enc.put_door_slot(slot)
        if self._clock is not None:
            self._clock.charge_bytes(written)
            self._clock.charge("marshal_door_id")

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------

    @property
    def read_pos(self) -> int:
        return self._dec.pos

    @read_pos.setter
    def read_pos(self, pos: int) -> None:
        self._dec.pos = pos

    def rewind(self) -> None:
        """Reset the read cursor to the start of the stream."""
        self._dec.pos = 0

    def exhausted(self) -> bool:
        """True when every marshalled byte has been consumed."""
        return self._dec.pos >= len(self.data)

    def peek_tag(self) -> WireTag:
        """The next item's wire tag, without consuming it."""
        return self._dec.peek_tag()

    def get_bool(self) -> bool:
        """Read the next item as a boolean."""
        return self._dec.get_bool()

    def get_int8(self) -> int:
        """Read the next item as a int8."""
        return self._dec.get_int8()

    def get_int32(self) -> int:
        """Read the next item as a int32."""
        return self._dec.get_int32()

    def get_int64(self) -> int:
        """Read the next item as a int64."""
        return self._dec.get_int64()

    def get_float64(self) -> float:
        """Read the next item as a float64."""
        return self._dec.get_float64()

    def get_string(self) -> str:
        """Read the next item as a UTF-8 string."""
        return self._dec.get_string()

    def get_bytes(self) -> bytes:
        """Read the next item as a byte string."""
        return self._dec.get_bytes()

    def get_nil(self) -> None:
        """Consume a nil marker."""
        self._dec.get_nil()

    def get_sequence_header(self) -> int:
        """Read a sequence header; returns the element count."""
        return self._dec.get_sequence_header()

    def get_object_header(self) -> str:
        """Consume an object header; returns its subcontract ID."""
        return self._dec.get_object_header()

    def peek_object_header(self) -> str:
        """Peek at the next object's subcontract ID (Section 6.1)."""
        return self._dec.peek_object_header()

    def get_door_id(self, domain: "Domain") -> "DoorIdentifier":
        """Unmarshal a door identifier into ``domain``'s capability table."""
        slot = self._dec.get_door_slot()
        if slot >= len(self.doors):
            raise DoorVectorError(f"door slot {slot} out of range")
        transit = self.doors[slot]
        if transit is None:
            raise DoorVectorError(f"door slot {slot} already consumed")
        self.doors[slot] = None
        return domain.kernel.attach_door_id(domain, transit)

    def get_door_transit(self) -> "TransitDoorRef":
        """Take the next door reference without attaching it (forwarding)."""
        slot = self._dec.get_door_slot()
        if slot >= len(self.doors):
            raise DoorVectorError(f"door slot {slot} out of range")
        transit = self.doors[slot]
        if transit is None:
            raise DoorVectorError(f"door slot {slot} already consumed")
        self.doors[slot] = None
        return transit

    # ------------------------------------------------------------------
    # forwarding support (used by interposers like the cache manager)
    # ------------------------------------------------------------------

    def graft_tail(self, other: "MarshalBuffer") -> None:
        """Adopt the unread remainder of ``other`` as this buffer's tail.

        Copies ``other``'s bytes from its read cursor onward and *steals*
        its door vector wholesale (door-slot indices embedded in the tail
        keep referring to the same vector positions).  Lets an interposer
        re-address a request without understanding its contents.
        """
        if self.doors:
            raise MarshalError("graft_tail requires an empty door vector")
        self.data.extend(other.data[other.read_pos :])
        self.doors = other.doors
        other.doors = []

    # ------------------------------------------------------------------
    # rollback support (used by skeletons and retrying subcontracts)
    # ------------------------------------------------------------------

    def mark(self) -> tuple[int, int]:
        """Snapshot the write position (bytes written, doors parked)."""
        return (len(self.data), len(self.doors))

    def truncate(self, marker: tuple[int, int]) -> None:
        """Roll the write side back to a :meth:`mark` snapshot.

        Bytes written after the mark are dropped and door references
        parked after the mark are released, so a skeleton that fails
        halfway through marshalling a result can replace the partial
        output with an exception reply without corrupting the stream.
        """
        data_len, door_len = marker
        del self.data[data_len:]
        for transit in self.doors[door_len:]:
            if transit is not None and transit.live and self.kernel is not None:
                self.kernel.discard_transit(transit)
        del self.doors[door_len:]
        if self._dec.pos > len(self.data):
            self._dec.pos = len(self.data)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def seal_for_transmission(self, sender: "Domain") -> None:
        """Kernel hook run at the transmission boundary.

        All door references are already in transit form (``put_door_id``
        detaches eagerly), so sealing only rewinds the read cursor for the
        receiving side.  Sealing is idempotent per hop.
        """
        self.rewind()
        self.sealed = True

    def discard(self) -> None:
        """Destroy the buffer, releasing unconsumed in-transit door refs.

        Without this, a message that is never delivered would pin its
        doors' refcounts forever and their servers would never see an
        unreferenced notification.
        """
        if self.kernel is not None:
            for transit in self.doors:
                if transit is not None and transit.live:
                    self.kernel.discard_transit(transit)
        self.doors = [None] * len(self.doors)

    # ------------------------------------------------------------------
    # pooling (hot-path allocation reuse)
    # ------------------------------------------------------------------

    def release(self) -> None:
        """Return a pool-acquired buffer to its home domain's free-list.

        Unpooled buffers (plain ``MarshalBuffer(kernel)``) ignore the
        call.  Two misuses raise :class:`BufferLifecycleError` at the
        call site instead of corrupting the pool and failing later via
        the pristine-state check:

        * **double release** — the buffer is already back in (or retired
          from) its pool; with ``REPRO_DEBUG=1`` the message names the
          first release site;
        * **release in transit** — the buffer still parks live in-transit
          door references.  Pooling must never change refcount semantics;
          call :meth:`discard` first, or :meth:`recycle` to do both.
        """
        if self._pooled or self._retired:
            first = (
                f"; first released at:\n{self._released_at}"
                if self._released_at
                else " (set REPRO_DEBUG=1 to record the first release site)"
            )
            raise BufferLifecycleError(
                "double release of a pooled marshal buffer" + first
            )
        home = self._home
        if home is None:
            return
        live = self.live_door_count()
        if live:
            raise BufferLifecycleError(
                f"released while parking {live} live in-transit door "
                "reference(s); discard() them first, or use recycle()"
            )
        if _DEBUG:
            self._released_at = "".join(traceback.format_stack(limit=8)[:-1])
        self.data.clear()
        self.doors = []
        self.region = None
        self.sealed = False
        self.trace_ctx = None
        self.deadline_us = None
        self.idem_key = None
        self._real_dec.pos = 0
        # Stale handles now fail loudly on any put/get (use-after-release).
        self._enc = self._dec = _RELEASED_STREAM
        home.buffer_releases += 1
        pool = home._buffer_pool
        if len(pool) < POOL_LIMIT:
            # Race-detector edge: returning to the pool happens-before
            # the next acquire that hands this buffer to another thread.
            ts = self.kernel.tsan
            if ts is not None:
                ts.on_buffer_release(self)
            self._pooled = True
            pool.append(self)
        else:
            self._retired = True
            self._home = None

    def recycle(self) -> None:
        """Discard any live in-transit door references, then release.

        The sanctioned cleanup for failure paths: a request that never
        reached its server (or a reply that never reached its caller) may
        still park detached door references, which :meth:`release`
        refuses to pool.  Recycle drops them — firing unreferenced
        notifications exactly as an undelivered message must — and then
        returns the buffer to its pool.
        """
        if self.live_door_count():
            self.discard()
        self.release()

    def _check_pristine(self) -> None:
        """Invariant check run when a pooled buffer is reacquired."""
        if self.data or self.doors or self.region is not None or self._dec.pos:
            raise MarshalError(
                "pooled buffer reacquired dirty: "
                f"{len(self.data)}B doors={len(self.doors)} "
                f"region={self.region!r} pos={self._dec.pos}"
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of marshalled bytes (excludes the door vector)."""
        return len(self.data)

    def live_door_count(self) -> int:
        """Unconsumed door references parked in the door vector."""
        return sum(1 for t in self.doors if t is not None and t.live)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MarshalBuffer {len(self.data)}B doors={self.live_door_count()}"
            f" pos={self._real_dec.pos}>"
        )
