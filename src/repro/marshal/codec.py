"""Low-level wire encodings for the marshal layer.

The Spring stubs marshal IDL-typed values into communication buffers.  Our
wire format is little-endian, length-prefixed, and *tagged*: every item
carries a one-byte type tag so that stub/skeleton mismatches and
subcontract misreads fail loudly instead of silently misinterpreting
bytes.  (Spring's real format was untagged; the tag costs one byte per
item and does not change any comparison the benches make, since every
configuration pays it equally.)
"""

from __future__ import annotations

import enum
import struct

from repro.marshal.errors import BufferUnderflowError, WireTypeError

__all__ = ["WireTag", "Encoder", "Decoder"]

_I8 = struct.Struct("<b")
_I32 = struct.Struct("<i")
_I64 = struct.Struct("<q")
_U16 = struct.Struct("<H")
_F64 = struct.Struct("<d")


class WireTag(enum.IntEnum):
    """One-byte type tags for wire items."""

    BOOL = 0x01
    INT8 = 0x02
    INT32 = 0x03
    INT64 = 0x04
    FLOAT64 = 0x05
    STRING = 0x06
    BYTES = 0x07
    SEQUENCE = 0x08
    DOOR_SLOT = 0x09
    NIL = 0x0A
    OBJECT = 0x0B  # header preceding a marshalled Spring object


class Encoder:
    """Appends tagged wire items to a bytearray."""

    def __init__(self, data: bytearray) -> None:
        self._data = data

    # -- primitives ----------------------------------------------------

    def put_tag(self, tag: WireTag) -> None:
        """Write a raw one-byte wire tag."""
        self._data.append(tag)

    def put_varint(self, value: int) -> None:
        """Unsigned LEB128, used for lengths and counts."""
        if value < 0:
            raise ValueError(f"varint must be non-negative, got {value}")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                self._data.append(byte | 0x80)
            else:
                self._data.append(byte)
                return

    def put_bool(self, value: bool) -> None:
        """Encode a tagged boolean."""
        self.put_tag(WireTag.BOOL)
        self._data.append(1 if value else 0)

    def put_int8(self, value: int) -> None:
        """Encode a tagged int8."""
        self.put_tag(WireTag.INT8)
        self._data += _I8.pack(value)

    def put_int32(self, value: int) -> None:
        """Encode a tagged int32."""
        self.put_tag(WireTag.INT32)
        self._data += _I32.pack(value)

    def put_int64(self, value: int) -> None:
        """Encode a tagged int64."""
        self.put_tag(WireTag.INT64)
        self._data += _I64.pack(value)

    def put_float64(self, value: float) -> None:
        """Encode a tagged float64."""
        self.put_tag(WireTag.FLOAT64)
        self._data += _F64.pack(value)

    def put_string(self, value: str) -> None:
        """Encode a tagged UTF-8 string."""
        raw = value.encode("utf-8")
        self.put_tag(WireTag.STRING)
        self.put_varint(len(raw))
        self._data += raw

    def put_bytes(self, value: bytes | bytearray) -> None:
        """Encode a tagged byte string."""
        self.put_tag(WireTag.BYTES)
        self.put_varint(len(value))
        self._data += value

    def put_sequence_header(self, count: int) -> None:
        """Encode a sequence header with its element count."""
        self.put_tag(WireTag.SEQUENCE)
        self.put_varint(count)

    def put_door_slot(self, slot: int) -> None:
        """Encode a door-vector slot index."""
        self.put_tag(WireTag.DOOR_SLOT)
        self._data += _U16.pack(slot)

    def put_nil(self) -> None:
        """Encode a nil marker."""
        self.put_tag(WireTag.NIL)

    def put_object_header(self, subcontract_id: str) -> None:
        """Write the header of a marshalled object: tag + subcontract ID.

        Section 6.1: "the normal mechanism we use to implement compatible
        subcontracts is to include a subcontract identifier as part of the
        marshalled form of each object."
        """
        self.put_tag(WireTag.OBJECT)
        raw = subcontract_id.encode("utf-8")
        self.put_varint(len(raw))
        self._data += raw


class Decoder:
    """Reads tagged wire items from a bytes-like object."""

    def __init__(self, data: bytes | bytearray, pos: int = 0) -> None:
        self._data = data
        self.pos = pos

    # -- low level -----------------------------------------------------

    def _take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self._data):
            raise BufferUnderflowError(
                f"need {n} bytes at offset {self.pos}, buffer has {len(self._data)}"
            )
        chunk = bytes(self._data[self.pos : end])
        self.pos = end
        return chunk

    def expect_tag(self, tag: WireTag) -> None:
        """Consume one tag byte, raising WireTypeError on mismatch."""
        got = self._take(1)[0]
        if got != tag:
            try:
                got_name = WireTag(got).name
            except ValueError:
                got_name = f"0x{got:02x}"
            raise WireTypeError(f"expected {tag.name}, found {got_name}")

    def peek_tag(self) -> WireTag:
        """The next tag byte, without consuming it."""
        if self.pos >= len(self._data):
            raise BufferUnderflowError("peeked past end of buffer")
        return WireTag(self._data[self.pos])

    def get_varint(self) -> int:
        """Decode an unsigned LEB128 integer."""
        result = 0
        shift = 0
        while True:
            byte = self._take(1)[0]
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7

    # -- primitives ----------------------------------------------------

    def get_bool(self) -> bool:
        """Decode a boolean."""
        self.expect_tag(WireTag.BOOL)
        return self._take(1)[0] != 0

    def get_int8(self) -> int:
        """Decode a int8."""
        self.expect_tag(WireTag.INT8)
        return _I8.unpack(self._take(1))[0]

    def get_int32(self) -> int:
        """Decode a int32."""
        self.expect_tag(WireTag.INT32)
        return _I32.unpack(self._take(4))[0]

    def get_int64(self) -> int:
        """Decode a int64."""
        self.expect_tag(WireTag.INT64)
        return _I64.unpack(self._take(8))[0]

    def get_float64(self) -> float:
        """Decode a float64."""
        self.expect_tag(WireTag.FLOAT64)
        return _F64.unpack(self._take(8))[0]

    def get_string(self) -> str:
        """Decode a UTF-8 string."""
        self.expect_tag(WireTag.STRING)
        length = self.get_varint()
        return self._take(length).decode("utf-8")

    def get_bytes(self) -> bytes:
        """Decode a byte string."""
        self.expect_tag(WireTag.BYTES)
        length = self.get_varint()
        return self._take(length)

    def get_sequence_header(self) -> int:
        """Decode a sequence header; returns the element count."""
        self.expect_tag(WireTag.SEQUENCE)
        return self.get_varint()

    def get_door_slot(self) -> int:
        """Decode a door-vector slot index."""
        self.expect_tag(WireTag.DOOR_SLOT)
        return _U16.unpack(self._take(2))[0]

    def get_nil(self) -> None:
        """Decode a nil marker."""
        self.expect_tag(WireTag.NIL)

    def get_object_header(self) -> str:
        """Read a marshalled object's header; returns its subcontract ID."""
        self.expect_tag(WireTag.OBJECT)
        length = self.get_varint()
        return self._take(length).decode("utf-8")

    def peek_object_header(self) -> str:
        """Peek at the subcontract ID without consuming it (Section 6.1).

        "A typical subcontract unmarshal operation starts by taking a peek
        at the expected subcontract identifier in the communications
        buffer."
        """
        saved = self.pos
        try:
            return self.get_object_header()
        finally:
            self.pos = saved
