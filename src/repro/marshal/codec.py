"""Low-level wire encodings for the marshal layer.

The Spring stubs marshal IDL-typed values into communication buffers.  Our
wire format is little-endian, length-prefixed, and *tagged*: every item
carries a one-byte type tag so that stub/skeleton mismatches and
subcontract misreads fail loudly instead of silently misinterpreting
bytes.  (Spring's real format was untagged; the tag costs one byte per
item and does not change any comparison the benches make, since every
configuration pays it equally.)

Hot-path notes: the decoder reads fixed-width items with
``struct.unpack_from`` straight off the backing buffer and slices
variable-width payloads exactly once, at the moment they are needed — no
intermediate ``bytes()`` copy per item.  (A persistent ``memoryview``
would pin a ``bytearray`` against resizing, and the same backing store is
still being appended to in interleaved write/read uses, so reads index
the buffer directly instead.)  Encoder methods return the number of bytes
they appended so callers can account for marshalling without re-measuring
the stream.
"""

from __future__ import annotations

import enum
import struct

from repro.marshal.errors import BufferUnderflowError, MarshalError, WireTypeError

__all__ = ["WireTag", "Encoder", "Decoder"]

_I8 = struct.Struct("<b")
_I32 = struct.Struct("<i")
_I64 = struct.Struct("<q")
_U16 = struct.Struct("<H")
_F64 = struct.Struct("<d")

#: An unsigned LEB128 encoding of a 64-bit value needs at most 10 bytes;
#: anything longer is a malformed (or hostile) buffer trying to make us
#: build an unbounded Python int.
_VARINT_MAX_BYTES = 10


class WireTag(enum.IntEnum):
    """One-byte type tags for wire items."""

    BOOL = 0x01
    INT8 = 0x02
    INT32 = 0x03
    INT64 = 0x04
    FLOAT64 = 0x05
    STRING = 0x06
    BYTES = 0x07
    SEQUENCE = 0x08
    DOOR_SLOT = 0x09
    NIL = 0x0A
    OBJECT = 0x0B  # header preceding a marshalled Spring object
    TRACE = 0x0C  # optional trailing trace context (repro.obs)


class Encoder:
    """Appends tagged wire items to a bytearray.

    Every ``put_*`` method returns the number of bytes appended.
    """

    __slots__ = ("_data",)

    def __init__(self, data: bytearray) -> None:
        self._data = data

    # -- primitives ----------------------------------------------------

    def put_tag(self, tag: WireTag) -> int:
        """Write a raw one-byte wire tag."""
        self._data.append(tag)
        return 1

    def put_varint(self, value: int) -> int:
        """Unsigned LEB128, used for lengths and counts."""
        if value < 0:
            raise ValueError(f"varint must be non-negative, got {value}")
        data = self._data
        written = 1
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                data.append(byte | 0x80)
                written += 1
            else:
                data.append(byte)
                return written

    def put_bool(self, value: bool) -> int:
        """Encode a tagged boolean."""
        self._data.append(WireTag.BOOL)
        self._data.append(1 if value else 0)
        return 2

    def put_int8(self, value: int) -> int:
        """Encode a tagged int8."""
        self._data.append(WireTag.INT8)
        self._data += _I8.pack(value)
        return 2

    def put_int32(self, value: int) -> int:
        """Encode a tagged int32."""
        self._data.append(WireTag.INT32)
        self._data += _I32.pack(value)
        return 5

    def put_int64(self, value: int) -> int:
        """Encode a tagged int64."""
        self._data.append(WireTag.INT64)
        self._data += _I64.pack(value)
        return 9

    def put_float64(self, value: float) -> int:
        """Encode a tagged float64."""
        self._data.append(WireTag.FLOAT64)
        self._data += _F64.pack(value)
        return 9

    def put_string(self, value: str) -> int:
        """Encode a tagged UTF-8 string."""
        raw = value.encode("utf-8")
        self._data.append(WireTag.STRING)
        written = 1 + self.put_varint(len(raw)) + len(raw)
        self._data += raw
        return written

    def put_bytes(self, value: bytes | bytearray) -> int:
        """Encode a tagged byte string."""
        self._data.append(WireTag.BYTES)
        written = 1 + self.put_varint(len(value)) + len(value)
        self._data += value
        return written

    def put_sequence_header(self, count: int) -> int:
        """Encode a sequence header with its element count."""
        self._data.append(WireTag.SEQUENCE)
        return 1 + self.put_varint(count)

    def put_trace_ctx(self, trace_id: int, span_id: int) -> int:
        """Encode a trace context item (tag + two varints).

        In-band transports (rawnet fragment headers) append this only
        while tracing is enabled, so the untraced wire format is
        byte-for-byte unchanged.
        """
        self._data.append(WireTag.TRACE)
        return 1 + self.put_varint(trace_id) + self.put_varint(span_id)

    def put_door_slot(self, slot: int) -> int:
        """Encode a door-vector slot index."""
        self._data.append(WireTag.DOOR_SLOT)
        self._data += _U16.pack(slot)
        return 3

    def put_nil(self) -> int:
        """Encode a nil marker."""
        self._data.append(WireTag.NIL)
        return 1

    def put_object_header(self, subcontract_id: str) -> int:
        """Write the header of a marshalled object: tag + subcontract ID.

        Section 6.1: "the normal mechanism we use to implement compatible
        subcontracts is to include a subcontract identifier as part of the
        marshalled form of each object."
        """
        raw = subcontract_id.encode("utf-8")
        self._data.append(WireTag.OBJECT)
        written = 1 + self.put_varint(len(raw)) + len(raw)
        self._data += raw
        return written


class Decoder:
    """Reads tagged wire items from a bytes-like object."""

    __slots__ = ("_data", "pos")

    def __init__(self, data: bytes | bytearray, pos: int = 0) -> None:
        self._data = data
        self.pos = pos

    # -- low level -----------------------------------------------------

    def _take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self._data):
            raise BufferUnderflowError(
                f"need {n} bytes at offset {self.pos}, buffer has {len(self._data)}"
            )
        chunk = bytes(self._data[self.pos : end])
        self.pos = end
        return chunk

    def _bounds(self, n: int) -> int:
        """Check ``n`` readable bytes remain; return the end offset."""
        end = self.pos + n
        if end > len(self._data):
            raise BufferUnderflowError(
                f"need {n} bytes at offset {self.pos}, buffer has {len(self._data)}"
            )
        return end

    def _byte(self) -> int:
        """Consume one raw byte without allocating."""
        pos = self.pos
        if pos >= len(self._data):
            raise BufferUnderflowError(
                f"need 1 bytes at offset {pos}, buffer has {len(self._data)}"
            )
        self.pos = pos + 1
        return self._data[pos]

    def expect_tag(self, tag: WireTag) -> None:
        """Consume one tag byte, raising WireTypeError on mismatch."""
        got = self._byte()
        if got != tag:
            try:
                got_name = WireTag(got).name
            except ValueError:
                got_name = f"0x{got:02x}"
            raise WireTypeError(f"expected {tag.name}, found {got_name}")

    def peek_tag(self) -> WireTag:
        """The next tag byte, without consuming it."""
        if self.pos >= len(self._data):
            raise BufferUnderflowError("peeked past end of buffer")
        raw = self._data[self.pos]
        try:
            return WireTag(raw)
        except ValueError:
            raise WireTypeError(f"unknown wire tag 0x{raw:02x}") from None

    def get_varint(self) -> int:
        """Decode an unsigned LEB128 integer (at most 10 bytes)."""
        result = 0
        shift = 0
        for _ in range(_VARINT_MAX_BYTES):
            byte = self._byte()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
        raise MarshalError(
            f"varint exceeds {_VARINT_MAX_BYTES} bytes at offset {self.pos}"
        )

    # -- primitives ----------------------------------------------------

    def get_bool(self) -> bool:
        """Decode a boolean."""
        self.expect_tag(WireTag.BOOL)
        return self._byte() != 0

    def get_int8(self) -> int:
        """Decode a int8."""
        self.expect_tag(WireTag.INT8)
        end = self._bounds(1)
        value = _I8.unpack_from(self._data, self.pos)[0]
        self.pos = end
        return value

    def get_int32(self) -> int:
        """Decode a int32."""
        self.expect_tag(WireTag.INT32)
        end = self._bounds(4)
        value = _I32.unpack_from(self._data, self.pos)[0]
        self.pos = end
        return value

    def get_int64(self) -> int:
        """Decode a int64."""
        self.expect_tag(WireTag.INT64)
        end = self._bounds(8)
        value = _I64.unpack_from(self._data, self.pos)[0]
        self.pos = end
        return value

    def get_float64(self) -> float:
        """Decode a float64."""
        self.expect_tag(WireTag.FLOAT64)
        end = self._bounds(8)
        value = _F64.unpack_from(self._data, self.pos)[0]
        self.pos = end
        return value

    def get_string(self) -> str:
        """Decode a UTF-8 string."""
        self.expect_tag(WireTag.STRING)
        length = self.get_varint()
        end = self._bounds(length)
        value = str(self._data[self.pos : end], "utf-8")
        self.pos = end
        return value

    def get_bytes(self) -> bytes:
        """Decode a byte string."""
        self.expect_tag(WireTag.BYTES)
        length = self.get_varint()
        end = self._bounds(length)
        chunk = self._data[self.pos : end]
        self.pos = end
        return chunk if type(chunk) is bytes else bytes(chunk)

    def get_trace_ctx(self) -> tuple[int, int]:
        """Decode a trace context item; returns ``(trace_id, span_id)``."""
        self.expect_tag(WireTag.TRACE)
        return (self.get_varint(), self.get_varint())

    def get_sequence_header(self) -> int:
        """Decode a sequence header; returns the element count."""
        self.expect_tag(WireTag.SEQUENCE)
        return self.get_varint()

    def get_door_slot(self) -> int:
        """Decode a door-vector slot index."""
        self.expect_tag(WireTag.DOOR_SLOT)
        end = self._bounds(2)
        value = _U16.unpack_from(self._data, self.pos)[0]
        self.pos = end
        return value

    def get_nil(self) -> None:
        """Decode a nil marker."""
        self.expect_tag(WireTag.NIL)

    def get_object_header(self) -> str:
        """Read a marshalled object's header; returns its subcontract ID."""
        self.expect_tag(WireTag.OBJECT)
        length = self.get_varint()
        end = self._bounds(length)
        value = str(self._data[self.pos : end], "utf-8")
        self.pos = end
        return value

    def peek_object_header(self) -> str:
        """Peek at the subcontract ID without consuming it (Section 6.1).

        "A typical subcontract unmarshal operation starts by taking a peek
        at the expected subcontract identifier in the communications
        buffer."
        """
        saved = self.pos
        try:
            return self.get_object_header()
        finally:
            self.pos = saved
