"""IDL pretty-printer: the inverse of the parser.

Formats a checked specification back into canonical IDL source.  Used by
tooling (``python -m repro.idl --emit idl`` normalizes a file) and by the
round-trip property tests that pin the grammar: ``parse(print(spec))``
must yield the same checked types.
"""

from __future__ import annotations

from repro.idl.checker import CheckedSpec
from repro.idl.rtypes import (
    IdlType,
    InterfaceType,
    OperationSpec,
    ParamMode,
    PrimitiveType,
    SequenceType,
    StructType,
)

__all__ = ["format_spec", "format_type"]


def format_type(idl_type: IdlType) -> str:
    """Canonical surface syntax for a resolved type."""
    if isinstance(idl_type, PrimitiveType):
        return idl_type.kind.value
    if isinstance(idl_type, (StructType, InterfaceType)):
        return idl_type.name
    assert isinstance(idl_type, SequenceType)
    return f"sequence<{format_type(idl_type.element)}>"


def _format_operation(op: OperationSpec) -> str:
    params = ", ".join(
        ("copy " if p.mode is ParamMode.COPY else "")
        + f"{format_type(p.type)} {p.name}"
        for p in op.params
    )
    return f"    {format_type(op.result)} {op.name}({params});"


def format_spec(spec: CheckedSpec, default_subcontract: str = "singleton") -> str:
    """Render a checked specification as canonical IDL source.

    Only operations *introduced by* each interface are printed (inherited
    ones reappear through the base list), and a ``subcontract``
    declaration is emitted only when it differs from the module default.
    """
    blocks: list[str] = []
    for struct in spec.structs.values():
        lines = [f"struct {struct.name} {{"]
        lines += [
            f"    {format_type(ftype)} {fname};" for fname, ftype in struct.fields
        ]
        lines.append("}")
        blocks.append("\n".join(lines))

    for iface in spec.interfaces.values():
        head = f"interface {iface.name}"
        if iface.bases:
            head += " : " + ", ".join(iface.bases)
        lines = [head + " {"]
        if iface.default_subcontract_id != default_subcontract:
            lines.append(f'    subcontract "{iface.default_subcontract_id}";')
        lines += [_format_operation(op) for op in iface.own_operations]
        lines.append("}")
        blocks.append("\n".join(lines))

    return "\n\n".join(blocks) + "\n"
