"""The interface definition language (Section 3.1).

A compact object-oriented IDL with multiple inheritance, by-value structs,
sequences, the Spring ``copy`` parameter mode, and per-interface default
subcontract declarations.  ``compile_idl`` generates subcontract-agnostic
client stubs and server skeletons.
"""

from repro.idl.checker import check
from repro.idl.compiler import IdlModule, compile_idl
from repro.idl.errors import IdlCheckError, IdlError, IdlSyntaxError
from repro.idl.genruntime import ANY_BINDING
from repro.idl.parser import parse
from repro.idl.specialize import specialize
from repro.idl.rtypes import (
    InterfaceBinding,
    InterfaceType,
    OperationSpec,
    ParamMode,
    ParamSpec,
    Primitive,
    PrimitiveType,
    SequenceType,
    StructBinding,
    StructType,
)

__all__ = [
    "compile_idl",
    "IdlModule",
    "parse",
    "check",
    "specialize",
    "ANY_BINDING",
    "InterfaceBinding",
    "StructBinding",
    "OperationSpec",
    "ParamSpec",
    "ParamMode",
    "Primitive",
    "PrimitiveType",
    "SequenceType",
    "StructType",
    "InterfaceType",
    "IdlError",
    "IdlSyntaxError",
    "IdlCheckError",
]
