"""Semantic checker: resolves the AST into checked, flattened type info.

Responsibilities:

* one namespace for structs and interfaces, no duplicates;
* all referenced types exist; bases are interfaces;
* no inheritance cycles; flattened ancestor lists;
* operation flattening across (multiple) inheritance with conflict
  detection — inheriting the same operation via two paths is fine,
  inheriting or redefining *different* signatures under one name is not;
* structs are pure values: no interface-typed fields, no infinite-size
  field recursion (sequences break recursion since they can be empty);
* ``void`` appears only as a result type;
* every declared name is a usable Python identifier that will not collide
  with the generated runtime (no leading underscore, no Python keywords,
  no SpringObject base-class names).
"""

from __future__ import annotations

import keyword
from dataclasses import dataclass, field

from repro.idl.errors import IdlCheckError
from repro.idl.rtypes import (
    IdlType,
    InterfaceType,
    OperationSpec,
    ParamMode,
    ParamSpec,
    Primitive,
    PrimitiveType,
    SequenceType,
    StructType,
)
from repro.idl.syntax import (
    InterfaceDecl,
    NamedTypeExpr,
    SequenceTypeExpr,
    Specification,
    StructDecl,
    TypeExpr,
)

__all__ = ["CheckedStruct", "CheckedInterface", "CheckedSpec", "check"]

_PRIMITIVES = {p.value: PrimitiveType(p) for p in Primitive}

#: names generated code or SpringObject already uses
_RESERVED_MEMBER_NAMES = frozenset(
    {"spring_copy", "spring_consume", "spring_type_id"}
)


@dataclass
class CheckedStruct:
    name: str
    fields: tuple[tuple[str, IdlType], ...]


@dataclass
class CheckedInterface:
    name: str
    bases: tuple[str, ...]
    #: self first, then all transitive ancestors, deduplicated in
    #: depth-first base order
    ancestors: tuple[str, ...]
    #: flattened operations: inherited first, then own, keyed by name
    operations: dict[str, OperationSpec]
    #: operations declared directly on this interface
    own_operations: tuple[OperationSpec, ...]
    default_subcontract_id: str


@dataclass
class CheckedSpec:
    structs: dict[str, CheckedStruct] = field(default_factory=dict)
    interfaces: dict[str, CheckedInterface] = field(default_factory=dict)


def check(spec: Specification, default_subcontract: str = "singleton") -> CheckedSpec:
    """Check a parsed specification and return flattened type info."""
    return _Checker(spec, default_subcontract).run()


class _Checker:
    def __init__(self, spec: Specification, default_subcontract: str) -> None:
        self.spec = spec
        self.default_subcontract = default_subcontract
        self.struct_decls: dict[str, StructDecl] = {}
        self.interface_decls: dict[str, InterfaceDecl] = {}
        self.out = CheckedSpec()

    def run(self) -> CheckedSpec:
        self._collect_names()
        for decl in self.spec.structs:
            self.out.structs[decl.name] = self._check_struct(decl)
        self._check_struct_recursion()
        for decl in self.spec.interfaces:
            self._flatten_interface(decl.name, [])
        return self.out

    # ------------------------------------------------------------------

    def _collect_names(self) -> None:
        for decl in list(self.spec.structs) + list(self.spec.interfaces):
            self._check_name(decl.name, "type")
            if decl.name in self.struct_decls or decl.name in self.interface_decls:
                raise IdlCheckError(f"duplicate type name {decl.name!r}")
            if isinstance(decl, StructDecl):
                self.struct_decls[decl.name] = decl
            else:
                self.interface_decls[decl.name] = decl

    def _check_name(self, name: str, what: str) -> None:
        if name.startswith("_"):
            raise IdlCheckError(f"{what} name {name!r} may not start with underscore")
        if keyword.iskeyword(name):
            raise IdlCheckError(f"{what} name {name!r} is a Python keyword")
        if name in _RESERVED_MEMBER_NAMES:
            raise IdlCheckError(f"{what} name {name!r} is reserved by the runtime")
        if name in _PRIMITIVES or name == "sequence":
            raise IdlCheckError(f"{what} name {name!r} shadows a builtin IDL type")

    # ------------------------------------------------------------------

    def _resolve(self, expr: TypeExpr, *, context: str) -> IdlType:
        if isinstance(expr, SequenceTypeExpr):
            element = self._resolve(expr.element, context=context)
            if element == _PRIMITIVES["void"]:
                raise IdlCheckError(f"{context}: sequence element may not be void")
            return SequenceType(element)
        assert isinstance(expr, NamedTypeExpr)
        if expr.name in _PRIMITIVES:
            return _PRIMITIVES[expr.name]
        if expr.name in self.struct_decls:
            return StructType(expr.name)
        if expr.name in self.interface_decls:
            return InterfaceType(expr.name)
        raise IdlCheckError(f"{context}: unknown type {expr.name!r}")

    def _check_struct(self, decl: StructDecl) -> CheckedStruct:
        fields: list[tuple[str, IdlType]] = []
        seen: set[str] = set()
        for fdecl in decl.fields:
            self._check_name(fdecl.name, "field")
            if fdecl.name in seen:
                raise IdlCheckError(
                    f"struct {decl.name!r}: duplicate field {fdecl.name!r}"
                )
            seen.add(fdecl.name)
            ftype = self._resolve(fdecl.type, context=f"struct {decl.name!r}")
            if ftype == _PRIMITIVES["void"]:
                raise IdlCheckError(
                    f"struct {decl.name!r}: field {fdecl.name!r} may not be void"
                )
            if _contains_reference(ftype):
                raise IdlCheckError(
                    f"struct {decl.name!r}: field {fdecl.name!r} holds an "
                    f"interface, object, or door type; structs are pure values"
                )
            fields.append((fdecl.name, ftype))
        return CheckedStruct(decl.name, tuple(fields))

    def _check_struct_recursion(self) -> None:
        # Direct struct-field containment must be acyclic (a struct field
        # of struct type embeds it whole); sequences may recurse since an
        # empty sequence terminates the value.
        state: dict[str, int] = {}  # 0 visiting, 1 done

        def visit(name: str, path: list[str]) -> None:
            if state.get(name) == 1:
                return
            if state.get(name) == 0:
                cycle = " -> ".join(path + [name])
                raise IdlCheckError(f"recursive struct embedding: {cycle}")
            state[name] = 0
            for _, ftype in self.out.structs[name].fields:
                if isinstance(ftype, StructType):
                    visit(ftype.name, path + [name])
            state[name] = 1

        for name in self.out.structs:
            visit(name, [])

    # ------------------------------------------------------------------

    def _flatten_interface(self, name: str, visiting: list[str]) -> CheckedInterface:
        if name in self.out.interfaces:
            return self.out.interfaces[name]
        if name in visiting:
            cycle = " -> ".join(visiting + [name])
            raise IdlCheckError(f"inheritance cycle: {cycle}")
        decl = self.interface_decls[name]

        ancestors: list[str] = [name]
        operations: dict[str, OperationSpec] = {}
        seen_bases: set[str] = set()
        for base in decl.bases:
            if base in seen_bases:
                raise IdlCheckError(
                    f"interface {name!r}: duplicate base {base!r}"
                )
            seen_bases.add(base)
            if base not in self.interface_decls:
                if base in self.struct_decls:
                    raise IdlCheckError(
                        f"interface {name!r}: base {base!r} is a struct"
                    )
                raise IdlCheckError(
                    f"interface {name!r}: unknown base {base!r}"
                )
            checked_base = self._flatten_interface(base, visiting + [name])
            for ancestor in checked_base.ancestors:
                if ancestor not in ancestors:
                    ancestors.append(ancestor)
            for op in checked_base.operations.values():
                existing = operations.get(op.name)
                if existing is not None and existing != op:
                    raise IdlCheckError(
                        f"interface {name!r}: operation {op.name!r} inherited "
                        f"with conflicting signatures from {existing.introduced_by!r} "
                        f"and {op.introduced_by!r}"
                    )
                operations[op.name] = op

        own_ops: list[OperationSpec] = []
        for opdecl in decl.operations:
            self._check_name(opdecl.name, "operation")
            context = f"interface {name!r} operation {opdecl.name!r}"
            result = self._resolve(opdecl.result, context=context)
            params: list[ParamSpec] = []
            seen_params: set[str] = set()
            for pdecl in opdecl.params:
                self._check_name(pdecl.name, "parameter")
                if pdecl.name in seen_params:
                    raise IdlCheckError(f"{context}: duplicate parameter {pdecl.name!r}")
                seen_params.add(pdecl.name)
                ptype = self._resolve(pdecl.type, context=context)
                if ptype == _PRIMITIVES["void"]:
                    raise IdlCheckError(f"{context}: parameter may not be void")
                mode = ParamMode.COPY if pdecl.mode == "copy" else ParamMode.IN
                if mode is ParamMode.COPY and not _is_reference(ptype):
                    # copy mode only changes semantics for objects and
                    # doors; permit it elsewhere as documentation, where
                    # it degenerates to IN.
                    mode = ParamMode.IN
                params.append(ParamSpec(pdecl.name, ptype, mode))
            op = OperationSpec(opdecl.name, tuple(params), result, introduced_by=name)
            existing = operations.get(op.name)
            if existing is not None:
                raise IdlCheckError(
                    f"interface {name!r}: operation {op.name!r} conflicts with "
                    f"the one inherited from {existing.introduced_by!r} "
                    f"(no overloading or overriding)"
                )
            operations[op.name] = op
            own_ops.append(op)

        checked = CheckedInterface(
            name=name,
            bases=decl.bases,
            ancestors=tuple(ancestors),
            operations=operations,
            own_operations=tuple(own_ops),
            default_subcontract_id=decl.subcontract or self.default_subcontract,
        )
        self.out.interfaces[name] = checked
        return checked


def _is_reference(idl_type: IdlType) -> bool:
    """True for types that denote capabilities rather than pure values."""
    if isinstance(idl_type, InterfaceType):
        return True
    return isinstance(idl_type, PrimitiveType) and idl_type.kind in (
        Primitive.OBJECT,
        Primitive.DOOR,
    )


def _contains_reference(idl_type: IdlType) -> bool:
    if _is_reference(idl_type):
        return True
    if isinstance(idl_type, SequenceType):
        return _contains_reference(idl_type.element)
    return False
