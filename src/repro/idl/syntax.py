"""Abstract syntax tree for the IDL compiler.

Plain dataclasses produced by :mod:`repro.idl.parser` and consumed by
:mod:`repro.idl.checker`.  Types are left as surface forms (names,
``sequence<...>`` nests) for the checker to resolve against declarations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "TypeExpr",
    "NamedTypeExpr",
    "SequenceTypeExpr",
    "FieldDecl",
    "StructDecl",
    "ParamDecl",
    "OperationDecl",
    "InterfaceDecl",
    "Specification",
]


@dataclass(frozen=True)
class NamedTypeExpr:
    """A primitive keyword, struct name, or interface name."""

    name: str
    line: int = 0


@dataclass(frozen=True)
class SequenceTypeExpr:
    element: "TypeExpr"
    line: int = 0


TypeExpr = NamedTypeExpr | SequenceTypeExpr


@dataclass(frozen=True)
class FieldDecl:
    name: str
    type: TypeExpr
    line: int = 0


@dataclass(frozen=True)
class StructDecl:
    name: str
    fields: tuple[FieldDecl, ...]
    line: int = 0


@dataclass(frozen=True)
class ParamDecl:
    name: str
    type: TypeExpr
    mode: str = "in"  # "in" | "copy"
    line: int = 0


@dataclass(frozen=True)
class OperationDecl:
    name: str
    params: tuple[ParamDecl, ...]
    result: TypeExpr
    line: int = 0


@dataclass(frozen=True)
class InterfaceDecl:
    name: str
    bases: tuple[str, ...]
    operations: tuple[OperationDecl, ...]
    subcontract: str | None = None  # default-subcontract declaration
    line: int = 0


@dataclass
class Specification:
    structs: list[StructDecl] = field(default_factory=list)
    interfaces: list[InterfaceDecl] = field(default_factory=list)
