"""The IDL compiler front door.

``compile_idl`` turns IDL source text into an :class:`IdlModule` holding
generated stub classes, skeletons, struct value classes, and the runtime
bindings the subcontract layer consumes.  This plays the role of Spring's
stub generator (Section 3.1): "From the IDL interfaces it is possible to
generate language-specific stubs."
"""

from __future__ import annotations

import itertools
import linecache
from typing import Any

from repro.core.identity import validate_subcontract_id
from repro.idl.checker import CheckedSpec, check
from repro.idl.codegen import generate_source
from repro.idl.errors import IdlCheckError
from repro.idl.parser import parse
from repro.idl.rtypes import InterfaceBinding, StructBinding

__all__ = ["IdlModule", "compile_idl"]

_module_counter = itertools.count(1)


class IdlModule:
    """A compiled IDL specification.

    Struct value classes and interface stub classes are available as
    attributes under their IDL names; bindings via :meth:`binding` and
    :meth:`struct`.
    """

    def __init__(
        self,
        name: str,
        namespace: dict[str, Any],
        bindings: dict[str, InterfaceBinding],
        structs: dict[str, StructBinding],
        source: str,
    ) -> None:
        self.name = name
        self._namespace = namespace
        self.bindings = bindings
        self.structs = structs
        self.source = source

    def binding(self, interface_name: str) -> InterfaceBinding:
        """The runtime binding for an interface type."""
        try:
            return self.bindings[interface_name]
        except KeyError:
            raise KeyError(
                f"module {self.name!r} defines no interface "
                f"{interface_name!r} (has {sorted(self.bindings)})"
            ) from None

    def struct(self, struct_name: str) -> StructBinding:
        """The runtime binding for a struct type."""
        try:
            return self.structs[struct_name]
        except KeyError:
            raise KeyError(
                f"module {self.name!r} defines no struct "
                f"{struct_name!r} (has {sorted(self.structs)})"
            ) from None

    def __getattr__(self, name: str) -> Any:
        try:
            return self._namespace[name]
        except KeyError:
            raise AttributeError(
                f"IDL module {self.name!r} has no type {name!r}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<IdlModule {self.name!r} interfaces={sorted(self.bindings)} "
            f"structs={sorted(self.structs)}>"
        )


def compile_idl(
    source_text: str,
    module_name: str | None = None,
    default_subcontract: str = "singleton",
    subcontract_overrides: dict[str, str] | None = None,
) -> IdlModule:
    """Compile IDL source into stubs, skeletons, and bindings.

    Args:
        source_text: the IDL specification.
        module_name: name used in generated tracebacks.
        default_subcontract: default subcontract ID for interfaces that do
            not declare one (Section 6.1: each type specifies a default
            subcontract for use when talking to that type).
        subcontract_overrides: per-interface default-subcontract overrides,
            applied after any in-source ``subcontract "..."`` declarations.
    """
    if module_name is None:
        module_name = f"idl_module_{next(_module_counter)}"
    spec = check(parse(source_text), default_subcontract)
    _apply_overrides(spec, subcontract_overrides or {})

    bindings: dict[str, InterfaceBinding] = {}
    for iface in spec.interfaces.values():
        validate_subcontract_id(iface.default_subcontract_id)
        bindings[iface.name] = InterfaceBinding(
            name=iface.name,
            ancestors=iface.ancestors,
            operations=dict(iface.operations),
            default_subcontract_id=iface.default_subcontract_id,
        )
    structs: dict[str, StructBinding] = {
        s.name: StructBinding(name=s.name, fields=s.fields)
        for s in spec.structs.values()
    }

    source = generate_source(spec)
    filename = f"<idl:{module_name}>"
    linecache.cache[filename] = (
        len(source),
        None,
        source.splitlines(keepends=True),
        filename,
    )
    namespace: dict[str, Any] = {"_B": bindings, "_S": structs}
    code = compile(source, filename, "exec")
    exec(code, namespace)  # noqa: S102 - executing our own generated stubs

    for name, binding in bindings.items():
        binding.stub_class = namespace[name]
        binding.skeleton = namespace[f"_skel_{name}"]
        binding._remote_table = {
            op: namespace[f"_stub_{name}_{op}"] for op in binding.operations
        }
    for name, struct_binding in structs.items():
        struct_binding.value_class = namespace[name]
        struct_binding.marshal = namespace[f"_marshal_{name}"]
        struct_binding.unmarshal = namespace[f"_unmarshal_{name}"]

    return IdlModule(module_name, namespace, bindings, structs, source)


def _apply_overrides(spec: CheckedSpec, overrides: dict[str, str]) -> None:
    for interface_name, subcontract_id in overrides.items():
        iface = spec.interfaces.get(interface_name)
        if iface is None:
            raise IdlCheckError(
                f"subcontract override names unknown interface {interface_name!r}"
            )
        iface.default_subcontract_id = subcontract_id
