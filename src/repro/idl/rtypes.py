"""Runtime type objects produced by the IDL compiler.

The compiler turns IDL source into *bindings*: per-struct and
per-interface objects that generated stub code and the subcontract layer
share.  An :class:`InterfaceBinding` is what the paper calls choosing "an
initial subcontract and an initial method table based on the expected
type" (Section 5.1.2): it knows the type's default subcontract ID, its
(shared) remote method table, its stub class, and its server skeleton.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:
    from repro.core.object import MethodTable, SpringObject
    from repro.kernel.domain import Domain
    from repro.marshal.buffer import MarshalBuffer

__all__ = [
    "Primitive",
    "PrimitiveType",
    "SequenceType",
    "StructType",
    "InterfaceType",
    "ParamMode",
    "ParamSpec",
    "OperationSpec",
    "StructBinding",
    "InterfaceBinding",
    "IdlType",
]


class Primitive(enum.Enum):
    """IDL primitive type kinds."""

    VOID = "void"
    BOOL = "bool"
    INT32 = "int32"
    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    BYTES = "bytes"
    #: a raw kernel door identifier (Section 3.3) — used by low-level
    #: system interfaces such as the cache manager, which traffics in
    #: doors rather than typed objects (Section 8.2)
    DOOR = "door"
    #: any Spring object; unmarshalled at the generic ``object`` type and
    #: narrowed by the receiver (Section 6.3)
    OBJECT = "object"


@dataclass(frozen=True)
class PrimitiveType:
    kind: Primitive

    def __str__(self) -> str:
        return self.kind.value


@dataclass(frozen=True)
class SequenceType:
    element: "IdlType"

    def __str__(self) -> str:
        return f"sequence<{self.element}>"


@dataclass(frozen=True)
class StructType:
    """A reference to a named struct (marshalled by value, Section 2.1)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class InterfaceType:
    """A reference to a named interface (an object; marshalled via its
    subcontract)."""

    name: str

    def __str__(self) -> str:
        return self.name


IdlType = PrimitiveType | SequenceType | StructType | InterfaceType


def _unattached_struct_codec(*args: Any) -> None:
    """Placeholder codec used before codegen attaches the real one."""
    raise RuntimeError("struct binding has no generated codec attached")


class ParamMode(enum.Enum):
    """Parameter passing modes (Section 5.1.5).

    ``IN`` transmits the argument; for objects this *moves* them (Spring
    objects exist in one place at a time, Section 3.2).  ``COPY`` implies
    a copy of the argument object is transmitted while the calling domain
    retains the original — driven through ``marshal_copy`` so subcontracts
    can fuse the copy and the marshal.
    """

    IN = "in"
    COPY = "copy"


@dataclass(frozen=True)
class ParamSpec:
    name: str
    type: IdlType
    mode: ParamMode = ParamMode.IN


@dataclass(frozen=True)
class OperationSpec:
    name: str
    params: tuple[ParamSpec, ...]
    result: IdlType
    #: interface that introduced the operation (for diagnostics)
    introduced_by: str = ""


@dataclass
class StructBinding:
    """Runtime binding for a by-value struct type."""

    name: str
    fields: tuple[tuple[str, IdlType], ...]
    #: generated value class
    value_class: type = type(None)
    #: generated (buffer, value) -> None
    marshal: Callable[..., None] = _unattached_struct_codec
    #: generated (buffer, domain) -> value
    unmarshal: Callable[..., Any] = _unattached_struct_codec


@dataclass
class InterfaceBinding:
    """Runtime binding for an interface type."""

    name: str
    #: self first, then every (transitive) ancestor, deduplicated
    ancestors: tuple[str, ...] = ()
    #: flattened operations (inherited + own), keyed by name
    operations: dict[str, OperationSpec] = field(default_factory=dict)
    #: Section 6.1: "for each type we can specify a default subcontract
    #: for use when talking to that type"
    default_subcontract_id: str = "singleton"
    #: generated SpringObject subclass
    stub_class: type = type(None)
    #: generated skeleton: dispatch(domain, impl, argbuf, reply, binding)
    skeleton: Any = None
    #: stub entry points keyed by operation name (shared by all objects
    #: of this type; built by codegen)
    _remote_table: "MethodTable | None" = None
    #: specialized stub tables keyed by subcontract ID (Section 9.1's
    #: future direction: fused stubs for popular, performance-critical
    #: combinations of types and subcontracts).  Installed by
    #: :func:`repro.idl.specialize.specialize`.
    _specialized_tables: dict[str, "MethodTable"] = field(default_factory=dict)

    def remote_method_table(self) -> "MethodTable":
        """The shared method table of general-purpose remote-stub entries."""
        if self._remote_table is None:
            raise RuntimeError(
                f"binding {self.name!r} has no generated stubs attached"
            )
        return self._remote_table

    def method_table_for(self, subcontract_id: str) -> "MethodTable":
        """Pick the method table for an object of this type being
        fabricated under ``subcontract_id``.

        Section 9.1: "when we were lucky enough to receive an object that
        happened to be of the right type and subcontract we would be able
        to use the specialized stubs" — otherwise the general-purpose
        stubs, which work with any subcontract.
        """
        specialized = self._specialized_tables.get(subcontract_id)
        if specialized is not None:
            return specialized
        return self.remote_method_table()

    def install_specialized_table(
        self, subcontract_id: str, table: "MethodTable"
    ) -> None:
        """Attach a fused stub table for one (type, subcontract) pair."""
        missing = set(self.operations) - set(table)
        if missing:
            raise ValueError(
                f"specialized table for {self.name!r} lacks operations "
                f"{sorted(missing)}"
            )
        self._specialized_tables[subcontract_id] = table

    def unmarshal_from(
        self, buffer: "MarshalBuffer", domain: "Domain"
    ) -> "SpringObject":
        """Read an object of this (expected) type from a buffer.

        Chooses the initial subcontract from the domain's registry based
        on this type's default subcontract, then lets the subcontract
        machinery route to the actual subcontract if they differ
        (Sections 5.1.2 and 6.1).
        """
        from repro.core.registry import ensure_registry

        registry = ensure_registry(domain)
        initial = registry.lookup(self.default_subcontract_id)
        return initial.unmarshal(buffer, self)

    def is_ancestor_of(self, other: "InterfaceBinding") -> bool:
        """True when this interface appears in ``other``'s ancestry."""
        return self.name in other.ancestors

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<InterfaceBinding {self.name} ops={sorted(self.operations)}"
            f" default_sc={self.default_subcontract_id!r}>"
        )
