"""Lexer for the interface definition language (Section 3.1).

The language is a compact subset of the IDL the paper references
[OMG 1991]: object-oriented interfaces with multiple inheritance, by-value
structs, sequences, and the Spring-specific ``copy`` parameter mode and
per-interface default-subcontract declaration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.idl.errors import IdlSyntaxError

__all__ = ["TokenKind", "Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "interface",
        "struct",
        "subcontract",
        "sequence",
        "in",
        "copy",
        "void",
        "bool",
        "int32",
        "int64",
        "float64",
        "string",
        "bytes",
        "door",
        "object",
    }
)

_PUNCT = {
    "{": "LBRACE",
    "}": "RBRACE",
    "(": "LPAREN",
    ")": "RPAREN",
    "<": "LANGLE",
    ">": "RANGLE",
    ":": "COLON",
    ";": "SEMI",
    ",": "COMMA",
}


class TokenKind(enum.Enum):
    IDENT = "IDENT"
    KEYWORD = "KEYWORD"
    STRING = "STRING"
    LBRACE = "LBRACE"
    RBRACE = "RBRACE"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    LANGLE = "LANGLE"
    RANGLE = "RANGLE"
    COLON = "COLON"
    SEMI = "SEMI"
    COMMA = "COMMA"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenize IDL source, raising IdlSyntaxError on bad input."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    line = 1
    column = 1
    i = 0
    n = len(source)

    def advance(text: str) -> None:
        nonlocal line, column
        for ch in text:
            if ch == "\n":
                line += 1
                column = 1
            else:
                column += 1

    while i < n:
        ch = source[i]

        if ch in " \t\r\n":
            advance(ch)
            i += 1
            continue

        # line comment
        if source.startswith("//", i):
            end = source.find("\n", i)
            end = n if end == -1 else end
            advance(source[i:end])
            i = end
            continue

        # block comment
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise IdlSyntaxError("unterminated block comment", line, column)
            advance(source[i : end + 2])
            i = end + 2
            continue

        if ch in _PUNCT:
            yield Token(TokenKind[_PUNCT[ch]], ch, line, column)
            advance(ch)
            i += 1
            continue

        if ch == '"':
            end = i + 1
            while end < n and source[end] != '"':
                if source[end] == "\n":
                    raise IdlSyntaxError("unterminated string literal", line, column)
                end += 1
            if end >= n:
                raise IdlSyntaxError("unterminated string literal", line, column)
            text = source[i + 1 : end]
            yield Token(TokenKind.STRING, text, line, column)
            advance(source[i : end + 1])
            i = end + 1
            continue

        if ch.isalpha() or ch == "_":
            end = i
            while end < n and (source[end].isalnum() or source[end] == "_"):
                end += 1
            text = source[i:end]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            yield Token(kind, text, line, column)
            advance(text)
            i = end
            continue

        raise IdlSyntaxError(f"unexpected character {ch!r}", line, column)

    yield Token(TokenKind.EOF, "", line, column)
