"""IDL compiler error hierarchy."""

from __future__ import annotations

__all__ = ["IdlError", "IdlSyntaxError", "IdlCheckError"]


class IdlError(Exception):
    """Base class for IDL compiler errors."""


class IdlSyntaxError(IdlError):
    """Lexical or grammatical error in IDL source."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class IdlCheckError(IdlError):
    """Semantic error: unknown type, duplicate name, bad inheritance, ..."""
