"""Runtime helpers called by IDL-generated stub and skeleton code.

These functions are the only names the code generator assumes exist
besides the standard library; they keep the generated source small and
put the subtle object-passing semantics (move vs copy, Section 3.2 and
5.1.5) in one reviewed place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.object import SpringObject
from repro.idl.rtypes import InterfaceBinding

if TYPE_CHECKING:
    from repro.kernel.domain import Domain
    from repro.kernel.doors import DoorIdentifier
    from repro.marshal.buffer import MarshalBuffer

__all__ = [
    "ANY_BINDING",
    "check_object_arg",
    "marshal_object",
    "marshal_object_copy",
    "unmarshal_any",
    "marshal_door",
    "marshal_door_copy",
]

#: The generic ``object`` type: any Spring object can be unmarshalled at
#: this binding and later narrowed to a concrete type (Section 6.3).
ANY_BINDING = InterfaceBinding(
    name="object",
    ancestors=("object",),
    operations={},
    stub_class=SpringObject,
)
ANY_BINDING._remote_table = {}


def check_object_arg(value: object, expected_type: str) -> SpringObject:
    """Validate an object-typed argument before marshalling it.

    Accepts any object when the expected type is the generic ``object``;
    otherwise the value's static binding must list the expected interface
    among its ancestors.
    """
    if not isinstance(value, SpringObject):
        raise TypeError(
            f"expected a Spring object of type {expected_type!r}, "
            f"got {type(value).__name__}"
        )
    if expected_type != "object" and expected_type not in value._binding.ancestors:
        raise TypeError(
            f"object of type {value._binding.name!r} is not a {expected_type!r}"
        )
    return value


def marshal_object(
    buffer: "MarshalBuffer", value: object, expected_type: str
) -> None:
    """Marshal an object argument in ``in`` mode: the object *moves*.

    Spring model (Section 3.2): "if we transmit an object to someone else
    then we cease to have the object ourselves."
    """
    obj = check_object_arg(value, expected_type)
    obj._subcontract.marshal(obj, buffer)


def marshal_object_copy(
    buffer: "MarshalBuffer", value: object, expected_type: str
) -> None:
    """Marshal an object argument in ``copy`` mode via ``marshal_copy``
    (Section 5.1.5), leaving the caller's object intact."""
    obj = check_object_arg(value, expected_type)
    obj._subcontract.marshal_copy(obj, buffer)


def unmarshal_any(buffer: "MarshalBuffer", domain: "Domain") -> SpringObject:
    """Unmarshal a value of the generic ``object`` type.

    With no expected type to choose an initial subcontract from, peek the
    actual subcontract ID and dispatch straight to its code.
    """
    from repro.core.registry import ensure_registry

    actual_id = buffer.peek_object_header()
    registry = ensure_registry(domain)
    return registry.lookup(actual_id).unmarshal(buffer, ANY_BINDING)


def marshal_door(
    buffer: "MarshalBuffer", domain: "Domain", value: "DoorIdentifier"
) -> None:
    """Marshal a raw door identifier in ``in`` mode (the identifier moves)."""
    buffer.put_door_id(domain, value)


def marshal_door_copy(
    buffer: "MarshalBuffer", domain: "Domain", value: "DoorIdentifier"
) -> None:
    """Marshal a copy of a raw door identifier, keeping the original."""
    duplicate = domain.kernel.copy_door_id(domain, value)
    buffer.put_door_id(domain, duplicate)
