"""Recursive-descent parser for the IDL grammar.

Grammar (EBNF)::

    specification := (struct | interface)*
    struct        := 'struct' IDENT '{' field* '}' ';'?
    field         := type IDENT ';'
    interface     := 'interface' IDENT inherits? '{' scdecl? operation* '}' ';'?
    inherits      := ':' IDENT (',' IDENT)*
    scdecl        := 'subcontract' STRING ';'
    operation     := type IDENT '(' params? ')' ';'
    params        := param (',' param)*
    param         := ('in' | 'copy')? type IDENT
    type          := 'void' | 'bool' | 'int32' | 'int64' | 'float64'
                   | 'string' | 'bytes'
                   | 'sequence' '<' type '>'
                   | IDENT
"""

from __future__ import annotations

from repro.idl.errors import IdlSyntaxError
from repro.idl.lexer import Token, TokenKind, tokenize
from repro.idl.syntax import (
    FieldDecl,
    InterfaceDecl,
    NamedTypeExpr,
    OperationDecl,
    ParamDecl,
    SequenceTypeExpr,
    Specification,
    StructDecl,
    TypeExpr,
)

__all__ = ["parse"]

_TYPE_KEYWORDS = frozenset(
    {
        "void",
        "bool",
        "int32",
        "int64",
        "float64",
        "string",
        "bytes",
        "door",
        "object",
        "sequence",
    }
)


def parse(source: str) -> Specification:
    """Parse IDL source text into a Specification AST."""
    return _Parser(tokenize(source)).parse_specification()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing --------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._cur
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> IdlSyntaxError:
        token = self._cur
        return IdlSyntaxError(message, token.line, token.column)

    def _expect(self, kind: TokenKind, text: str | None = None) -> Token:
        token = self._cur
        if token.kind is not kind or (text is not None and token.text != text):
            wanted = text or kind.name
            raise self._error(f"expected {wanted!r}, found {token.text!r}")
        return self._advance()

    def _at_keyword(self, text: str) -> bool:
        return self._cur.kind is TokenKind.KEYWORD and self._cur.text == text

    def _accept_keyword(self, text: str) -> bool:
        if self._at_keyword(text):
            self._advance()
            return True
        return False

    def _accept(self, kind: TokenKind) -> bool:
        if self._cur.kind is kind:
            self._advance()
            return True
        return False

    # -- grammar productions ----------------------------------------------

    def parse_specification(self) -> Specification:
        spec = Specification()
        while self._cur.kind is not TokenKind.EOF:
            if self._at_keyword("struct"):
                spec.structs.append(self._parse_struct())
            elif self._at_keyword("interface"):
                spec.interfaces.append(self._parse_interface())
            else:
                raise self._error(
                    f"expected 'struct' or 'interface', found {self._cur.text!r}"
                )
        return spec

    def _parse_struct(self) -> StructDecl:
        start = self._expect(TokenKind.KEYWORD, "struct")
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.LBRACE)
        fields: list[FieldDecl] = []
        while not self._accept(TokenKind.RBRACE):
            line = self._cur.line
            ftype = self._parse_type()
            fname = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.SEMI)
            fields.append(FieldDecl(fname, ftype, line))
        self._accept(TokenKind.SEMI)
        return StructDecl(name, tuple(fields), start.line)

    def _parse_interface(self) -> InterfaceDecl:
        start = self._expect(TokenKind.KEYWORD, "interface")
        name = self._expect(TokenKind.IDENT).text
        bases: list[str] = []
        if self._accept(TokenKind.COLON):
            bases.append(self._expect(TokenKind.IDENT).text)
            while self._accept(TokenKind.COMMA):
                bases.append(self._expect(TokenKind.IDENT).text)
        self._expect(TokenKind.LBRACE)

        subcontract: str | None = None
        if self._accept_keyword("subcontract"):
            subcontract = self._expect(TokenKind.STRING).text
            self._expect(TokenKind.SEMI)

        operations: list[OperationDecl] = []
        while not self._accept(TokenKind.RBRACE):
            operations.append(self._parse_operation())
        self._accept(TokenKind.SEMI)
        return InterfaceDecl(name, tuple(bases), tuple(operations), subcontract, start.line)

    def _parse_operation(self) -> OperationDecl:
        line = self._cur.line
        result = self._parse_type()
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.LPAREN)
        params: list[ParamDecl] = []
        if not self._accept(TokenKind.RPAREN):
            params.append(self._parse_param())
            while self._accept(TokenKind.COMMA):
                params.append(self._parse_param())
            self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMI)
        return OperationDecl(name, tuple(params), result, line)

    def _parse_param(self) -> ParamDecl:
        line = self._cur.line
        mode = "in"
        if self._accept_keyword("in"):
            mode = "in"
        elif self._accept_keyword("copy"):
            mode = "copy"
        ptype = self._parse_type()
        pname = self._expect(TokenKind.IDENT).text
        return ParamDecl(pname, ptype, mode, line)

    def _parse_type(self) -> TypeExpr:
        token = self._cur
        if token.kind is TokenKind.KEYWORD:
            if token.text == "sequence":
                self._advance()
                self._expect(TokenKind.LANGLE)
                element = self._parse_type()
                self._expect(TokenKind.RANGLE)
                return SequenceTypeExpr(element, token.line)
            if token.text in _TYPE_KEYWORDS:
                self._advance()
                return NamedTypeExpr(token.text, token.line)
            raise self._error(f"keyword {token.text!r} is not a type")
        if token.kind is TokenKind.IDENT:
            self._advance()
            return NamedTypeExpr(token.text, token.line)
        raise self._error(f"expected a type, found {token.text!r}")
