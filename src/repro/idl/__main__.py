"""Command-line IDL compiler: the developer-facing stub generator.

Usage::

    python -m repro.idl spec.idl                # check + summary
    python -m repro.idl spec.idl --emit stubs   # print generated Python
    python -m repro.idl spec.idl --emit tree    # dump the checked types
    python -m repro.idl - < spec.idl            # read from stdin

Exit status 0 on a clean compile, 1 on any IDL error (with a
human-readable message on stderr), mirroring how Spring's stub generator
slotted into builds.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.idl.compiler import compile_idl
from repro.idl.errors import IdlError

__all__ = ["main"]


def _summary(module) -> str:
    lines = [f"module {module.name}:"]
    for name, struct in sorted(module.structs.items()):
        fields = ", ".join(f"{fname}: {ftype}" for fname, ftype in struct.fields)
        lines.append(f"  struct {name} {{ {fields} }}")
    for name, binding in sorted(module.bindings.items()):
        bases = ""
        if len(binding.ancestors) > 1:
            bases = " : " + ", ".join(binding.ancestors[1:])
        lines.append(
            f"  interface {name}{bases}  "
            f"[subcontract={binding.default_subcontract_id}]"
        )
        for op in binding.operations.values():
            params = ", ".join(
                f"{p.mode.value + ' ' if p.mode.value != 'in' else ''}"
                f"{p.type} {p.name}"
                for p in op.params
            )
            origin = (
                "" if op.introduced_by == name else f"   (from {op.introduced_by})"
            )
            lines.append(f"    {op.result} {op.name}({params}){origin}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.idl",
        description="Compile Spring-style IDL into Python stubs and skeletons.",
    )
    parser.add_argument("source", help="IDL file path, or '-' for stdin")
    parser.add_argument(
        "--emit",
        choices=("summary", "stubs", "tree", "idl"),
        default="summary",
        help="what to print on success (default: summary); "
        "'idl' pretty-prints the canonical form",
    )
    parser.add_argument(
        "--default-subcontract",
        default="singleton",
        help="default subcontract for interfaces without a declaration",
    )
    parser.add_argument(
        "--module-name", default=None, help="name used in generated tracebacks"
    )
    args = parser.parse_args(argv)

    if args.source == "-":
        text = sys.stdin.read()
        source_name = "<stdin>"
    else:
        path = Path(args.source)
        if not path.is_file():
            print(f"error: no such file: {path}", file=sys.stderr)
            return 1
        text = path.read_text()
        source_name = str(path)

    try:
        module = compile_idl(
            text,
            module_name=args.module_name or Path(source_name).stem,
            default_subcontract=args.default_subcontract,
        )
    except IdlError as exc:
        print(f"{source_name}: error: {exc}", file=sys.stderr)
        return 1

    if args.emit == "stubs":
        print(module.source, end="")
    elif args.emit == "idl":
        from repro.idl.checker import check as _check
        from repro.idl.parser import parse as _parse
        from repro.idl.printer import format_spec

        spec = _check(_parse(text), args.default_subcontract)
        print(format_spec(spec, args.default_subcontract), end="")
    elif args.emit == "tree":
        for name, binding in sorted(module.bindings.items()):
            print(f"{name}: ancestors={binding.ancestors}")
            for op in binding.operations.values():
                print(f"  {op}")
        for name, struct in sorted(module.structs.items()):
            print(f"{name}: fields={struct.fields}")
    else:
        print(_summary(module))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
