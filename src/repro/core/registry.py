"""Per-domain subcontract registries (Sections 6.1-6.2).

"A program will typically be linked with a set of libraries that provide a
set of standard subcontracts.  However at run-time the program may
encounter objects which use subcontracts that are not in its standard
libraries."

Each domain owns one registry mapping subcontract IDs to client
subcontract instances.  A lookup miss consults the registry's discovery
service (if configured), which maps the ID to a library name through a
naming context and dynamically loads the library from a trusted search
path — the Python analogue of ``dlopen("replicon.so")``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.core.errors import UnknownSubcontractError
from repro.core.subcontract import ClientSubcontract

if TYPE_CHECKING:
    from repro.core.discovery import DiscoveryService
    from repro.kernel.domain import Domain

__all__ = ["SubcontractRegistry", "ensure_registry"]


class SubcontractRegistry:
    """Maps subcontract IDs to client subcontract instances for one domain."""

    def __init__(
        self,
        domain: "Domain",
        discovery: "DiscoveryService | None" = None,
    ) -> None:
        self.domain = domain
        self.discovery = discovery
        self._subcontracts: dict[str, ClientSubcontract] = {}
        #: IDs that arrived via dynamic discovery, in arrival order
        #: (tests and the E9 bench observe this).
        self.dynamically_loaded: list[str] = []
        domain.subcontract_registry = self

    def register(self, subcontract_class: type[ClientSubcontract]) -> ClientSubcontract:
        """Instantiate and install a client subcontract for this domain.

        Re-registering the same ID replaces the instance (used when an
        upgraded library is loaded).
        """
        instance = subcontract_class(self.domain)
        # Membership-aware subcontracts declare a class-default
        # ``membership = None``; a domain that had a gossip view planted
        # (``MembershipService.plant``) wires it into vectors created
        # *after* the plant, so plant order does not matter.
        if getattr(instance, "membership", False) is None:
            view = self.domain.locals.get("membership")
            if view is not None:
                instance.membership = view
        self._subcontracts[instance.id] = instance
        return instance

    def register_many(
        self, subcontract_classes: Iterable[type[ClientSubcontract]]
    ) -> None:
        """Instantiate and install several client subcontracts."""
        for cls in subcontract_classes:
            self.register(cls)

    def knows(self, subcontract_id: str) -> bool:
        """True when code for the subcontract ID is already linked in."""
        return subcontract_id in self._subcontracts

    def lookup(self, subcontract_id: str) -> ClientSubcontract:
        """Find the code for a subcontract ID, dynamically loading it on a
        miss (Section 6.2)."""
        found = self._subcontracts.get(subcontract_id)
        if found is not None:
            return found
        if self.discovery is None:
            raise UnknownSubcontractError(
                f"domain {self.domain.name!r} has no code for subcontract "
                f"{subcontract_id!r} and no discovery service is configured"
            )
        subcontract_class = self.discovery.obtain(subcontract_id)
        instance = self.register(subcontract_class)
        self.dynamically_loaded.append(subcontract_id)
        return instance

    def known_ids(self) -> tuple[str, ...]:
        """The sorted IDs of every linked-in subcontract."""
        return tuple(sorted(self._subcontracts))


def ensure_registry(domain: "Domain") -> SubcontractRegistry:
    """Return the domain's registry, creating one seeded with the standard
    subcontract library if the domain has none yet.

    This mirrors "linked with a set of libraries that provide a set of
    standard subcontracts": most domains get the full standard set; tests
    that exercise dynamic discovery build their registries by hand with a
    restricted set instead.
    """
    if domain.subcontract_registry is not None:
        return domain.subcontract_registry
    from repro.subcontracts import standard_subcontracts

    registry = SubcontractRegistry(domain)
    registry.register_many(standard_subcontracts())
    return registry
