"""Subcontract identifiers.

Section 6.1: the marshalled form of every object begins with a subcontract
identifier, so the receiving side can detect that an object uses a
different subcontract than the expected one and route unmarshalling to the
right code (possibly after dynamically loading it, Section 6.2).

Identifiers are short stable strings (e.g. ``"replicon"``).  A registry of
well-known identifiers for the bundled subcontracts lives in
:mod:`repro.subcontracts`.
"""

from __future__ import annotations

import re

__all__ = ["validate_subcontract_id", "SUBCONTRACT_ID_PATTERN"]

SUBCONTRACT_ID_PATTERN = re.compile(r"^[a-z][a-z0-9_.\-]{0,63}$")


def validate_subcontract_id(subcontract_id: str) -> str:
    """Validate and return a subcontract identifier.

    Raises ValueError for identifiers that could not survive the wire
    format or that would collide with reserved names.
    """
    if not SUBCONTRACT_ID_PATTERN.match(subcontract_id):
        raise ValueError(
            f"invalid subcontract id {subcontract_id!r}: must match "
            f"{SUBCONTRACT_ID_PATTERN.pattern}"
        )
    return subcontract_id
