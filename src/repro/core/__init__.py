"""The paper's contribution: the subcontract framework.

Subcontracts are replaceable modules given control of the basic mechanisms
of object invocation and argument passing (Section 1).  This package
defines the Spring object structure (method table + subcontract operations
vector + representation), the client and server operation vectors, the
per-domain registry with compatible-subcontract routing, and dynamic
discovery of new subcontract libraries.
"""

from repro.core.errors import (
    NarrowError,
    ObjectConsumedError,
    RemoteApplicationError,
    RevokedObjectError,
    SubcontractError,
    UnknownSubcontractError,
    UntrustedLibraryError,
)
from repro.core.discovery import DiscoveryService, LibraryLoader
from repro.core.identity import validate_subcontract_id
from repro.core.object import MethodTable, SpringObject
from repro.core.registry import SubcontractRegistry, ensure_registry
from repro.core.stubs import (
    STATUS_EXCEPTION,
    STATUS_OK,
    TYPE_QUERY_OP,
    narrow,
    remote_call,
    remote_type_query,
)
from repro.core.subcontract import ClientSubcontract, ServerSubcontract

__all__ = [
    "SpringObject",
    "MethodTable",
    "ClientSubcontract",
    "ServerSubcontract",
    "SubcontractRegistry",
    "ensure_registry",
    "DiscoveryService",
    "LibraryLoader",
    "validate_subcontract_id",
    "narrow",
    "remote_call",
    "remote_type_query",
    "STATUS_OK",
    "STATUS_EXCEPTION",
    "TYPE_QUERY_OP",
    "SubcontractError",
    "ObjectConsumedError",
    "UnknownSubcontractError",
    "UntrustedLibraryError",
    "NarrowError",
    "RemoteApplicationError",
    "RevokedObjectError",
]
