"""The subcontract operations vectors (Sections 5 and 6.1).

A *client subcontract* supplies the operations the stubs use to drive an
object: ``marshal``, ``invoke``, ``unmarshal``, ``marshal_copy``,
``invoke_preamble`` (Section 5.1), plus copy/consume/type-query
(Section 5.1.6).

A *server subcontract* supplies the server-side machinery (Section 5.2):
creating a Spring object from a language-level object, processing incoming
calls, and revoking an object.  Server interfaces may vary considerably
between subcontracts; only the client vector is uniform.

The base classes below implement the two framework-wide conventions:

* the marshalled form of every object begins with a subcontract ID, and
* unmarshalling *peeks* at that ID and re-routes to the correct
  subcontract — dynamically loading its library if necessary — when the
  expected subcontract is not the actual one (compatible subcontracts,
  Sections 6.1-6.2).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any

from repro.core.errors import SubcontractError
from repro.core.identity import validate_subcontract_id
from repro.core.object import SpringObject

if TYPE_CHECKING:
    from repro.idl.rtypes import InterfaceBinding
    from repro.kernel.domain import Domain
    from repro.marshal.buffer import MarshalBuffer

__all__ = ["ClientSubcontract", "ServerSubcontract"]


class ClientSubcontract(abc.ABC):
    """Client-side subcontract operations vector.

    One instance exists per (domain, subcontract) pair, created by the
    domain's subcontract registry; instances hold no per-object state —
    per-object state lives in each object's representation.
    """

    #: stable wire identifier; subclasses must override
    id: str = ""

    def __init__(self, domain: "Domain") -> None:
        if not self.id:
            raise SubcontractError(
                f"{type(self).__name__} does not define a subcontract id"
            )
        validate_subcontract_id(self.id)
        self.domain = domain

    # ------------------------------------------------------------------
    # the five principal client-side operations (Section 5.1)
    # ------------------------------------------------------------------

    def invoke_preamble(self, obj: SpringObject, buffer: "MarshalBuffer") -> None:
        """Called by the stubs before any argument marshalling begins.

        The default does nothing (like simplex, Section 7).  Subcontracts
        override it to write control information ahead of the arguments
        (cluster's object tag, replicon's epoch) or to redirect the buffer
        into a shared-memory region (Section 5.1.4).
        """

    @abc.abstractmethod
    def invoke(self, obj: SpringObject, buffer: "MarshalBuffer") -> "MarshalBuffer":
        """Execute an object call once the stubs have marshalled the
        arguments; returns the reply buffer positioned after any
        subcontract-level control information."""

    def marshal(self, obj: SpringObject, buffer: "MarshalBuffer") -> None:
        """Transmit ``obj`` to another address space (Section 5.1.1).

        Places enough information in the buffer that an essentially
        identical object can be unmarshalled elsewhere, then deletes all
        the local state associated with the object.
        """
        obj._check_live()
        # One of the "extra pair of calls" Section 9.3 charges to object
        # transmission: stubs -> subcontract marshal.
        self.domain.kernel.clock.charge("indirect_call")
        buffer.put_object_header(self.id)
        self.marshal_rep(obj, buffer)
        obj._mark_consumed()

    def unmarshal(
        self, buffer: "MarshalBuffer", binding: "InterfaceBinding"
    ) -> SpringObject:
        """Fabricate a fully fledged Spring object from a buffer
        (Section 5.1.2), routing to a compatible subcontract when the
        buffer holds a different subcontract's object (Section 6.1)."""
        # The other half of Section 9.3's transmission pair: stubs ->
        # subcontract unmarshal.
        self.domain.kernel.clock.charge("indirect_call")
        actual_id = buffer.peek_object_header()
        if actual_id != self.id:
            registry = self.domain.subcontract_registry
            if registry is None:
                raise SubcontractError(
                    f"domain {self.domain.name!r} has no subcontract registry; "
                    f"cannot route subcontract {actual_id!r}"
                )
            other = registry.lookup(actual_id)
            return other.unmarshal(buffer, binding)
        buffer.get_object_header()
        return self.unmarshal_rep(buffer, binding)

    def marshal_copy(self, obj: SpringObject, buffer: "MarshalBuffer") -> None:
        """Produce the effect of a copy followed by a marshal
        (Section 5.1.5).  The default composes the two operations;
        subcontracts override it to skip the intermediate object."""
        duplicate = self.copy(obj)
        self.marshal(duplicate, buffer)

    # ------------------------------------------------------------------
    # other client operations (Section 5.1.6)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def copy(self, obj: SpringObject) -> SpringObject:
        """Shallow-copy: a second object sharing the same underlying state."""

    @abc.abstractmethod
    def consume(self, obj: SpringObject) -> None:
        """The client has finished with the object; release its resources."""

    def type_of(self, obj: SpringObject) -> str:
        """Run-time type query: the most-derived IDL type name."""
        return self.type_info(obj)[0]

    def type_info(self, obj: SpringObject) -> tuple[str, ...]:
        """Most-derived type name followed by all ancestor type names.

        The default asks the server through the reserved type-query
        operation; subcontracts with local knowledge override this.
        """
        from repro.core.stubs import remote_type_query

        return remote_type_query(obj)

    # ------------------------------------------------------------------
    # representation hooks (implemented by each subcontract)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def marshal_rep(self, obj: SpringObject, buffer: "MarshalBuffer") -> None:
        """Write the object's representation after the subcontract ID."""

    @abc.abstractmethod
    def unmarshal_rep(
        self, buffer: "MarshalBuffer", binding: "InterfaceBinding"
    ) -> SpringObject:
        """Read a representation and plug together subcontract vector,
        method table, and representation into a new Spring object."""

    # ------------------------------------------------------------------

    def make_object(self, rep: Any, binding: "InterfaceBinding") -> SpringObject:
        """Plug together this subcontract, a type's method table, and a
        representation (the final step of Section 5.1.2).

        The method table is chosen per (type, subcontract): specialized
        fused stubs when this combination has them (Section 9.1),
        otherwise the general-purpose table.
        """
        return binding.stub_class(
            domain=self.domain,
            method_table=binding.method_table_for(self.id),
            subcontract=self,
            rep=rep,
            binding=binding,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} id={self.id!r} domain={self.domain.name!r}>"


class ServerSubcontract(abc.ABC):
    """Server-side subcontract machinery (Section 5.2).

    Unlike the uniform client vector, server-side interfaces vary between
    subcontracts; this base captures the three typically-present elements:
    creating a Spring object from a language-level object, processing
    incoming calls (built into :meth:`export`'s door handler), and
    revoking an object.
    """

    id: str = ""

    def __init__(self, domain: "Domain") -> None:
        if not self.id:
            raise SubcontractError(
                f"{type(self).__name__} does not define a subcontract id"
            )
        validate_subcontract_id(self.id)
        self.domain = domain

    @abc.abstractmethod
    def export(
        self, impl: Any, binding: "InterfaceBinding", **options: Any
    ) -> SpringObject:
        """Create a Spring object from a language-level object
        (Section 5.2.1).

        ``impl`` is the server application's implementation object; its
        method names match the IDL operations of ``binding``.  The
        returned Spring object lives in the server's own domain and can be
        invoked locally or marshalled away to clients.
        """

    @abc.abstractmethod
    def revoke(self, obj: SpringObject) -> None:
        """Discard the exported state even though clients still hold
        objects pointing at it (Section 5.2.3)."""
