"""Spring objects.

Section 4: "A Spring object is perceived by a client as consisting of
three things: 1) a *method table* ...; 2) a *subcontract operations
vector* ...; and 3) some client-local private state, which is referred to
as the object's *representation*."

Generated stub classes (from :mod:`repro.idl`) subclass
:class:`SpringObject`; their public methods forward through the method
table, whose entries in turn drive the subcontract operations vector.
How those methods achieve their effect is hidden from the client.

Spring's object model (Section 3.2, Figure 2) treats the client as holding
the *object itself*, not a reference: transmitting it moves it (the sender
ceases to have it), and an explicit ``copy`` yields two distinct objects
that may share underlying state.  ``_consumed`` enforces the "an object
can only exist in one place at a time" rule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core.errors import ObjectConsumedError

if TYPE_CHECKING:
    from repro.core.subcontract import ClientSubcontract
    from repro.idl.rtypes import InterfaceBinding
    from repro.kernel.domain import Domain

__all__ = ["SpringObject", "MethodTable"]

#: A method table maps operation names to stub entry points.  Each entry
#: receives the SpringObject followed by the operation's arguments.
MethodTable = dict[str, Callable[..., Any]]


class SpringObject:
    """The client-visible structure of a Spring object.

    Instances are normally created by a subcontract (``unmarshal``,
    ``copy``, or the server-side create path) — never directly by
    application code.
    """

    _spring_fields = ("_domain", "_method_table", "_subcontract", "_rep", "_binding")

    def __init__(
        self,
        domain: "Domain",
        method_table: MethodTable,
        subcontract: "ClientSubcontract",
        rep: Any,
        binding: "InterfaceBinding",
    ) -> None:
        self._domain = domain
        self._method_table = method_table
        self._subcontract = subcontract
        self._rep = rep
        self._binding = binding
        self._consumed = False

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------

    def _check_live(self) -> None:
        if self._consumed:
            raise ObjectConsumedError(
                f"{self._binding.name} object was marshalled or consumed; "
                f"it no longer exists in this domain"
            )

    def _mark_consumed(self) -> None:
        """Delete all local state (the object has left this domain)."""
        self._consumed = True
        self._rep = None

    # ------------------------------------------------------------------
    # the universal client-side entry points (delegating to the
    # subcontract operations vector; Sections 5.1.5-5.1.6)
    # ------------------------------------------------------------------

    def spring_copy(self) -> "SpringObject":
        """Shallow-copy this object via its subcontract's copy operation."""
        self._check_live()
        return self._subcontract.copy(self)

    def spring_consume(self) -> None:
        """Finish with this object via its subcontract's consume operation."""
        self._check_live()
        self._subcontract.consume(self)

    def spring_type_id(self) -> str:
        """Run-time type query: the object's most-derived IDL type name."""
        self._check_live()
        return self._subcontract.type_of(self)

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "consumed" if self._consumed else "live"
        return (
            f"<SpringObject type={self._binding.name}"
            f" sc={self._subcontract.id} {state} in {self._domain.name!r}>"
        )
