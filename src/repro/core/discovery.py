"""Dynamic subcontract discovery (Section 6.2).

When a domain receives an object whose subcontract it has never seen, the
registry asks this discovery service for the code.  The paper's flow:

1. the unmarshal operation sees an unexpected subcontract ID;
2. the registry has no entry, so it uses a *network naming context* to map
   the subcontract identifier into a library name (e.g. ``replicon.so``);
3. the dynamic linker loads that library — **only** from a designated
   search path of trustworthy locations, because servers are reluctant to
   run random code nominated by a potentially malicious client;
4. unmarshalling continues with the newly linked subcontract code.

Here, "libraries" are Python modules (``<name>.py`` files) that export a
``SUBCONTRACTS`` dict mapping subcontract IDs to client subcontract
classes, loaded with :mod:`importlib` from the trusted directories only.
"""

from __future__ import annotations

import importlib.util
import itertools
import os
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.core.errors import UnknownSubcontractError, UntrustedLibraryError
from repro.core.subcontract import ClientSubcontract

if TYPE_CHECKING:
    from repro.kernel.clock import SimClock

__all__ = ["LibraryLoader", "DiscoveryService"]

#: Maps a subcontract ID to a library name (``None`` = unknown).  The
#: runtime environment wires this to a naming-context lookup; tests may
#: supply a plain dict's ``get``.
Resolver = Callable[[str], "str | None"]

_module_counter = itertools.count(1)


class LibraryLoader:
    """Loads subcontract libraries from a trusted search path.

    ``trusted_paths`` plays the role of the designated directory search
    path of Section 6.2: a library is loaded only when the *resolved* file
    (after following symlinks) lives under one of these directories, so
    neither ``..`` tricks nor symlink planting can smuggle code in from
    elsewhere.
    """

    def __init__(
        self,
        trusted_paths: list[Path | str],
        clock: "SimClock | None" = None,
    ) -> None:
        self.trusted_paths = [Path(p).resolve() for p in trusted_paths]
        self.clock = clock
        #: library names loaded so far, for tests and the E9 bench
        self.loaded: list[str] = []

    def _locate(self, library_name: str) -> Path:
        filename = (
            library_name if library_name.endswith(".py") else f"{library_name}.py"
        )
        if os.sep in library_name or (os.altsep and os.altsep in library_name):
            raise UntrustedLibraryError(
                f"library name {library_name!r} must be a bare name, not a path"
            )
        for directory in self.trusted_paths:
            candidate = (directory / filename).resolve()
            if not candidate.is_file():
                continue
            if not any(
                candidate.is_relative_to(trusted) for trusted in self.trusted_paths
            ):
                raise UntrustedLibraryError(
                    f"{candidate} resolves outside the trusted search path"
                )
            return candidate
        raise UnknownSubcontractError(
            f"no library {filename!r} on the trusted search path "
            f"{[str(p) for p in self.trusted_paths]}"
        )

    def load(self, library_name: str) -> dict[str, type[ClientSubcontract]]:
        """Load a library and return its ``SUBCONTRACTS`` export."""
        path = self._locate(library_name)
        if self.clock is not None:
            self.clock.charge("library_load")
        module_name = f"repro._dynamic.{path.stem}_{next(_module_counter)}"
        spec = importlib.util.spec_from_file_location(module_name, path)
        if spec is None or spec.loader is None:  # pragma: no cover - importlib guard
            raise UnknownSubcontractError(f"cannot load library at {path}")
        module = importlib.util.module_from_spec(spec)
        sys.modules[module_name] = module
        try:
            spec.loader.exec_module(module)
        except Exception as exc:
            sys.modules.pop(module_name, None)
            raise UnknownSubcontractError(
                f"library {library_name!r} failed to initialise: {exc}"
            ) from exc
        exports = getattr(module, "SUBCONTRACTS", None)
        if not isinstance(exports, dict):
            raise UnknownSubcontractError(
                f"library {library_name!r} does not export a SUBCONTRACTS dict"
            )
        self.loaded.append(library_name)
        return exports


class DiscoveryService:
    """Maps subcontract IDs to loadable client subcontract classes."""

    def __init__(self, resolver: Resolver, loader: LibraryLoader) -> None:
        self.resolver = resolver
        self.loader = loader

    def obtain(self, subcontract_id: str) -> type[ClientSubcontract]:
        """Resolve and load the subcontract class for ``subcontract_id``."""
        library_name = self.resolver(subcontract_id)
        if library_name is None:
            raise UnknownSubcontractError(
                f"naming context has no library mapping for subcontract "
                f"{subcontract_id!r}"
            )
        exports = self.loader.load(library_name)
        subcontract_class = exports.get(subcontract_id)
        if subcontract_class is None:
            raise UnknownSubcontractError(
                f"library {library_name!r} does not provide subcontract "
                f"{subcontract_id!r} (it provides {sorted(exports)})"
            )
        if not (
            isinstance(subcontract_class, type)
            and issubclass(subcontract_class, ClientSubcontract)
        ):
            raise UnknownSubcontractError(
                f"library {library_name!r} entry for {subcontract_id!r} is not "
                f"a ClientSubcontract subclass"
            )
        return subcontract_class
