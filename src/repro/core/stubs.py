"""Stub runtime support.

Generated client stubs and server skeletons (from :mod:`repro.idl`) are
thin: the call protocol they share lives here.  The logical progression of
a call matches Figure 3 of the paper:

    application
      -> stub method                 (method table entry)
      -> subcontract.invoke_preamble (indirect call #1, Section 9.3)
      -> [stub marshals op name + arguments]
      -> subcontract.invoke          (indirect call #2)
      -> kernel door / network fabric
      -> server-side subcontract     (door handler)
      -> server stubs (skeleton)     (indirect call #3)
      -> server application

and the reply retraces the path.  The two client-side indirect calls and
one server-side indirect call are exactly the overhead Section 9.3
attributes to subcontract; the simulated clock charges them here so the
E1 bench can reproduce that accounting.

Wire format of a request, after any subcontract control written by
``invoke_preamble``:

    STRING opname, then the operation's marshalled arguments

and of a reply, after any subcontract control written by the server side:

    INT8 status (0 = ok, 1 = application exception)
    on ok:        the marshalled results
    on exception: STRING remote type name, STRING message
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core.errors import NarrowError, RemoteApplicationError, RevokedObjectError
from repro.core.object import SpringObject
from repro.marshal.buffer import MarshalBuffer

if TYPE_CHECKING:
    from repro.idl.rtypes import InterfaceBinding
    from repro.kernel.domain import Domain

__all__ = [
    "STATUS_OK",
    "STATUS_EXCEPTION",
    "STATUS_REVOKED",
    "TYPE_QUERY_OP",
    "remote_call",
    "remote_type_query",
    "narrow",
    "write_ok_status",
    "write_exception_status",
    "write_revoked_status",
]

STATUS_OK = 0
STATUS_EXCEPTION = 1
STATUS_REVOKED = 2

#: Reserved operation name handled by every skeleton: returns the
#: implementation's most-derived type name and its ancestors, enabling
#: the run-time narrow of Section 6.3.
TYPE_QUERY_OP = "_spring_type_query"


def remote_call(
    obj: SpringObject,
    opname: str,
    marshal_args: Callable[[MarshalBuffer], None],
    unmarshal_results: Callable[[MarshalBuffer, "Domain"], Any],
) -> Any:
    """Drive one object invocation through the subcontract vector."""
    obj._check_live()
    domain = obj._domain
    kernel = domain.kernel
    clock = kernel.clock
    subcontract = obj._subcontract

    if kernel.tracer.enabled:
        return _traced_remote_call(
            obj,
            opname,
            marshal_args,
            unmarshal_results,
            domain,
            clock,
            subcontract,
            kernel.tracer,
        )

    buffer = domain.acquire_buffer()
    try:
        clock.charge("indirect_call")  # stubs -> subcontract (preamble)
        subcontract.invoke_preamble(obj, buffer)
        buffer.put_string(opname)
        marshal_args(buffer)
        clock.charge("indirect_call")  # stubs -> subcontract (invoke)
        reply = subcontract.invoke(obj, buffer)
    finally:
        # The request is fully consumed once invoke returns (or failed
        # before transmission).  A failed call may leave marshalled door
        # arguments in transit; recycle discards them (so unreferenced
        # notifications still fire) before pooling the buffer.
        buffer.recycle()

    status = reply.get_int8()
    if status == STATUS_EXCEPTION:
        remote_type = reply.get_string()
        message = reply.get_string()
        reply.recycle()
        raise RemoteApplicationError(remote_type, message)
    if status == STATUS_REVOKED:
        message = reply.get_string()
        reply.recycle()
        raise RevokedObjectError(message)
    results = unmarshal_results(reply, domain)
    reply.release()
    return results


def _traced_remote_call(
    obj: SpringObject,
    opname: str,
    marshal_args: Callable[[MarshalBuffer], None],
    unmarshal_results: Callable[[MarshalBuffer, "Domain"], Any],
    domain: "Domain",
    clock,
    subcontract,
    tracer,
) -> Any:
    """Traced twin of :func:`remote_call`: identical protocol, wrapped in
    the client-side invoke span (the root of a fresh trace, or a child of
    the thread's current span when called from inside a handler)."""
    with tracer.begin_invoke(domain, opname, subcontract.id) as span:
        buffer = domain.acquire_buffer()
        try:
            clock.charge("indirect_call")  # stubs -> subcontract (preamble)
            subcontract.invoke_preamble(obj, buffer)
            buffer.put_string(opname)
            marshal_args(buffer)
            span.annotate(request_bytes=buffer.size)
            clock.charge("indirect_call")  # stubs -> subcontract (invoke)
            reply = subcontract.invoke(obj, buffer)
        finally:
            buffer.recycle()

        span.annotate(reply_bytes=reply.size)
        status = reply.get_int8()
        if status == STATUS_EXCEPTION:
            remote_type = reply.get_string()
            message = reply.get_string()
            reply.recycle()
            raise RemoteApplicationError(remote_type, message)
        if status == STATUS_REVOKED:
            message = reply.get_string()
            reply.recycle()
            raise RevokedObjectError(message)
        results = unmarshal_results(reply, domain)
        reply.release()
        return results


def remote_type_query(obj: SpringObject) -> tuple[str, ...]:
    """Ask the server for the object's most-derived type and ancestors."""

    def marshal_args(buffer: MarshalBuffer) -> None:
        pass

    def unmarshal_results(reply: MarshalBuffer, domain: "Domain") -> tuple[str, ...]:
        count = reply.get_sequence_header()
        return tuple(reply.get_string() for _ in range(count))

    return remote_call(obj, TYPE_QUERY_OP, marshal_args, unmarshal_results)


def narrow(obj: SpringObject, target: "InterfaceBinding") -> SpringObject:
    """Run-time narrow (Section 6.3).

    Clients holding an object at a statically determined type (say,
    ``file``) may attempt to narrow it to a subtype with richer semantics
    (say, ``replicated_file``).  On success the original handle is
    consumed and a new Spring object of the target type — sharing the same
    subcontract and representation — is returned; on failure the original
    object is left untouched and :class:`NarrowError` is raised.
    """
    obj._check_live()
    supported = obj._subcontract.type_info(obj)
    if target.name not in supported:
        raise NarrowError(
            f"object of type {supported[0]!r} does not support {target.name!r}"
        )
    narrowed = target.stub_class(
        domain=obj._domain,
        method_table=target.method_table_for(obj._subcontract.id),
        subcontract=obj._subcontract,
        rep=obj._rep,
        binding=target,
    )
    # The original handle is consumed: the object now exists (here) only
    # under its narrowed type.  Spring objects live in one place at a time.
    obj._consumed = True
    obj._rep = None
    return narrowed


def write_ok_status(reply: MarshalBuffer) -> None:
    reply.put_int8(STATUS_OK)


def write_exception_status(reply: MarshalBuffer, exc: BaseException) -> None:
    reply.put_int8(STATUS_EXCEPTION)
    reply.put_string(type(exc).__name__)
    reply.put_string(str(exc))


def write_revoked_status(reply: MarshalBuffer, message: str) -> None:
    """Server-side reply for calls on revoked state (Section 5.2.3),
    raised client-side as :class:`RevokedObjectError`."""
    reply.put_int8(STATUS_REVOKED)
    reply.put_string(message)
