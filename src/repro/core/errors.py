"""Errors raised by the subcontract framework."""

from __future__ import annotations

__all__ = [
    "SubcontractError",
    "ObjectConsumedError",
    "UnknownSubcontractError",
    "UntrustedLibraryError",
    "NarrowError",
    "RemoteApplicationError",
    "RevokedObjectError",
]


class SubcontractError(Exception):
    """Base class for subcontract-framework errors."""


class ObjectConsumedError(SubcontractError):
    """An operation was attempted on an object that no longer exists here.

    Spring objects exist in exactly one place at a time (Section 3.2):
    marshalling or consuming an object deletes all its local state, so any
    later use of the stale language-level handle is a bug.
    """


class UnknownSubcontractError(SubcontractError):
    """No code for a subcontract ID could be found or dynamically loaded."""


class UntrustedLibraryError(SubcontractError):
    """A subcontract library was found outside the trusted search path.

    Section 6.2: "for security reasons the dynamic linker will only load
    libraries that are on a designated directory search-path of
    trustworthy locations."
    """


class NarrowError(SubcontractError):
    """A run-time narrow failed: the object does not support the target type."""


class RemoteApplicationError(SubcontractError):
    """The server application raised an exception during the call.

    Carries the remote exception's type name and message; the client sees
    this instead of the raw server-side exception object, because
    exceptions — like all state — cross domains only in marshalled form.
    """

    def __init__(self, remote_type: str, message: str) -> None:
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.message = message


class RevokedObjectError(SubcontractError):
    """The server revoked the object's underlying state (Section 5.2.3)."""
