"""Reproduction of *Subcontract: A Flexible Base for Distributed
Programming* (Hamilton, Powell, Mitchell; Sun Microsystems Laboratories
TR-93-13; SOSP 1993).

The package layout mirrors the paper's system:

* :mod:`repro.kernel` — the Spring nucleus: domains, doors, capabilities;
* :mod:`repro.net` — network servers extending doors across machines;
* :mod:`repro.marshal` — communication buffers and wire encodings;
* :mod:`repro.idl` — the interface definition language and stub compiler;
* :mod:`repro.core` — **the subcontract framework** (the contribution);
* :mod:`repro.subcontracts` — singleton, simplex, cluster, replicon,
  caching, reconnectable, shm, video, realtime, transact;
* :mod:`repro.services` — naming, cache manager, files, replicated KV;
* :mod:`repro.runtime` — one-call environment setup and fault injection.

Quickstart::

    from repro import Environment, compile_idl, narrow
    from repro.subcontracts.simplex import SimplexServer

    env = Environment()
    server = env.create_domain("machine-a", "server")
    client = env.create_domain("machine-b", "client")

    module = compile_idl('interface counter { int32 add(int32 n); }')

    class CounterImpl:
        def __init__(self): self.total = 0
        def add(self, n): self.total += n; return self.total

    exported = SimplexServer(server).export(CounterImpl(),
                                            module.binding("counter"))
    env.bind(server, "/demo/counter", exported)
    counter = narrow(env.resolve(client, "/demo/counter"),
                     module.binding("counter"))
    assert counter.add(5) == 5
"""

from repro.core import (
    ClientSubcontract,
    ServerSubcontract,
    SpringObject,
    SubcontractRegistry,
    narrow,
)
from repro.idl import compile_idl
from repro.kernel import Kernel
from repro.runtime import Environment, give, transfer

__version__ = "1.0.0"

__all__ = [
    "Environment",
    "Kernel",
    "compile_idl",
    "narrow",
    "transfer",
    "give",
    "SpringObject",
    "ClientSubcontract",
    "ServerSubcontract",
    "SubcontractRegistry",
    "__version__",
]
