"""Cost reporting: turn the simulated clock's tally into readable tables.

Benches and examples measure *where* simulated time went; this module
formats the breakdown the way the paper talks about costs — door
traversals vs marshalling vs network vs subcontract indirections.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.kernel.clock import SimClock

__all__ = ["format_tally", "CostReport", "compare_tallies"]

#: presentation order and human labels for known charge categories
_LABELS = {
    "door_call": "kernel door traversals",
    "door_create": "door creation",
    "door_copy": "door-identifier copies",
    "door_delete": "door-identifier deletes",
    "network": "network (latency + wire)",
    "network_hop": "network hops",
    "net_door_translate": "network door translation",
    "marshal_byte": "marshalling (bytes)",
    "marshal_door_id": "marshalling (door ids)",
    "memory_copy_byte": "buffer copies",
    "indirect_call": "subcontract indirect calls",
    "local_call": "method-table hops",
    "library_load": "dynamic library loads",
    "retry_backoff": "reconnect backoff",
    "admission_wait": "admission queueing",
    "rawnet_rto": "rawnet retransmission timeouts",
    "chaos_delay": "chaos (injected link delay)",
    "shm_setup": "shared-region setup",
    "stable_write": "stable-storage commits",
    "stable_scan": "stable-storage recovery scans",
    "trace_span": "tracing (span probes)",
    "trace_event": "tracing (event probes)",
    "window_probe": "windowed telemetry (sketch probes)",
    "membership": "membership (gossip + election rounds)",
    "explicit": "explicit delays",
}


class CostReport:
    """A snapshot of a clock's tally, formattable and comparable."""

    def __init__(self, tally: dict[str, float]) -> None:
        self.tally = dict(tally)

    @property
    def total_us(self) -> float:
        return sum(self.tally.values())

    def lines(self) -> list[str]:
        """The formatted rows, largest cost first, ending with the total."""
        total = self.total_us
        rows = []
        for key, spent in sorted(self.tally.items(), key=lambda kv: -kv[1]):
            if spent <= 0:
                continue
            share = 100.0 * spent / total if total else 0.0
            label = _LABELS.get(key, key)
            rows.append(f"{label:<32} {spent:>14,.1f} us  {share:5.1f}%")
        rows.append(f"{'total':<32} {total:>14,.1f} us")
        return rows

    def __str__(self) -> str:
        return "\n".join(self.lines())


def format_tally(clock: "SimClock") -> str:
    """Human-readable breakdown of where a clock's simulated time went."""
    return str(CostReport(clock.tally()))


def compare_tallies(
    before: dict[str, float], after: dict[str, float]
) -> CostReport:
    """The cost of a region: ``after`` minus ``before`` per category."""
    delta = {}
    for key in set(before) | set(after):
        diff = after.get(key, 0.0) - before.get(key, 0.0)
        if abs(diff) > 1e-12:
            delta[key] = diff
    return CostReport(delta)
