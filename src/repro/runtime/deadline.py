"""Call deadlines: a time budget that travels with the invocation.

``with deadline(kernel, timeout_us):`` installs an *absolute* simulated
deadline for the calling thread.  The kernel stamps it onto every
communication buffer it transmits (out-of-band, next to the trace
context — only a float crosses, never a Python object graph), so the
budget follows the call through doors, the network fabric, and into
server-side handlers, where nested calls inherit it.  Enforcement sits
at the transmission legs:

* ``Kernel.door_call`` refuses to launch a call whose deadline has
  already passed;
* the fabric checks after each wire leg (a reply that lands late is
  recycled and reported lost, exactly like a reply lost to a partition);
* the network servers check after door-identifier translation;
* delivery checks on arrival, before the handler runs.

Every violation surfaces as :class:`~repro.kernel.errors.DeadlineExceeded`
— a communication failure that retry policies deliberately refuse to
retry (see :meth:`repro.runtime.retry.RetryPolicy.retryable`).

Deadlines nest by tightening only: an inner ``deadline()`` may shorten
the budget but never extend what an outer caller granted.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:
    from repro.kernel.nucleus import Kernel

__all__ = ["deadline", "remaining_us"]


@contextmanager
def deadline(kernel: "Kernel", timeout_us: float) -> Iterator[float]:
    """Bound every call made in this block to ``timeout_us`` of sim time.

    Yields the absolute deadline (sim-us).  Restores the caller's prior
    deadline (if any) on exit; nesting tightens, never loosens.
    """
    if timeout_us < 0:
        raise ValueError(f"cannot set a negative deadline ({timeout_us} us)")
    local = kernel._deadline
    prior = local.value
    absolute = kernel.clock.now_us + timeout_us
    if prior is not None and prior < absolute:
        absolute = prior
    local.value = absolute
    try:
        yield absolute
    finally:
        local.value = prior


def remaining_us(kernel: "Kernel") -> float | None:
    """Sim-us left on the calling thread's deadline; ``None`` if unbounded."""
    value = kernel._deadline.value
    if value is None:
        return None
    return value - kernel.clock.now_us
