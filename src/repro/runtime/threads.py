"""Concurrency helpers: domains are "an address space plus a collection
of threads" (Section 3.3).

The kernel's capability tables are lock-protected, so multiple Python
threads may drive door calls concurrently.  ``run_concurrently`` is the
test/bench-friendly way to do it: start every worker, join them all, and
re-raise the first failure instead of letting it vanish inside a thread.
"""

from __future__ import annotations

import threading
from typing import Callable

__all__ = ["run_concurrently"]


def run_concurrently(workers: list[Callable[[], None]], timeout: float = 60.0) -> None:
    """Run workers in parallel threads; propagate the first exception."""
    failures: list[BaseException] = []
    lock = threading.Lock()

    def wrap(worker: Callable[[], None]) -> None:
        try:
            worker()
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            with lock:
                failures.append(exc)

    threads = [threading.Thread(target=wrap, args=(w,)) for w in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout)
        if thread.is_alive():
            raise TimeoutError("a worker thread did not finish in time")
    if failures:
        raise failures[0]
