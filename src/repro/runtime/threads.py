"""Concurrency helpers: domains are "an address space plus a collection
of threads" (Section 3.3).

The kernel's capability tables are lock-protected, so multiple Python
threads may drive door calls concurrently.  ``run_concurrently`` is the
test/bench-friendly way to do it: start every worker, join them all
against one shared deadline, and re-raise the first failure instead of
letting it vanish inside a thread.

When the springtsan race detector is installed (:mod:`repro.runtime
.tsan`), the start and join of each worker are happens-before edges:
everything the parent did before ``start`` is visible to the child, and
everything a child did is visible to the parent after its ``join``
returns.  Uninstalled, the hooks cost one function call returning None
plus a branch per worker — off the per-door-call hot path entirely.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.runtime import tsan as _tsan

__all__ = ["run_concurrently"]


def run_concurrently(workers: list[Callable[[], None]], timeout: float = 60.0) -> None:
    """Run workers in parallel threads; propagate the first exception.

    ``timeout`` is one shared deadline for the whole batch, not a
    per-thread allowance: joining N wedged workers takes ``timeout``
    seconds total, not ``N x timeout``.
    """
    failures: list[BaseException] = []
    lock = threading.Lock()
    ts = _tsan.active()

    def wrap(worker: Callable[[], None], token: int) -> None:
        if ts is not None:
            ts.child_begin(token)
        try:
            worker()
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            with lock:
                failures.append(exc)
        finally:
            if ts is not None:
                ts.child_end(token)

    threads: list[threading.Thread] = []
    tokens: list[int] = []
    for worker in workers:
        token = ts.fork() if ts is not None else 0
        tokens.append(token)
        threads.append(threading.Thread(target=wrap, args=(worker, token)))
    for thread in threads:
        thread.start()
    # The join deadline is genuinely host time: it bounds how long the
    # calling test/bench blocks on real OS threads, and must keep
    # counting down while a worker is wedged (the sim clock would not).
    deadline = time.monotonic() + timeout  # springlint: disable=clock-discipline -- real-thread join deadline, not a simulated path
    for thread, token in zip(threads, tokens):
        remaining = deadline - time.monotonic()  # springlint: disable=clock-discipline -- real-thread join deadline, not a simulated path
        thread.join(max(0.0, remaining))
        if thread.is_alive():
            raise TimeoutError("a worker thread did not finish in time")
        if ts is not None:
            ts.join_edge(token)
    if failures:
        raise failures[0]
