"""springtsan — a happens-before data-race detector for domains.

The paper defines a domain as "an address space plus a collection of
threads" (Section 3.3), and this runtime honours it: multiple Python
threads drive door calls concurrently through lock-protected capability
tables, and server-side subcontracts keep mutable state (replicon
epochs, caching memos, admission occupancy).  The GIL does **not** make
``x += 1`` atomic — CPython may switch threads between the load and the
store — so unsynchronized shared mutation is a real lost-update bug
here, exactly as it would be in C.

``springtsan`` is an Eraser-style hybrid detector (Savage et al. 1997;
FastTrack, Flanagan & Freund 2009): every thread carries a **vector
clock** advanced at synchronization points, every tracked variable
remembers its last accesses, and two accesses to the same variable race
when they are (a) unordered by the happens-before relation induced by
the synchronization edges below AND (b) performed holding **disjoint
locksets**.  A race raises :class:`DataRaceError` naming both sites.

Synchronization edges — the ones this runtime already owns:

* **lock acquire / release** — a release happens-before the next
  acquire of the same lock (locks are instrumented via
  :func:`instrument_lock`, the wrapped kernel table lock, and the
  synchronized subcontract's per-object mutexes);
* **thread start / join** — everything the parent did before ``start``
  happens-before the child; everything the child did happens-before the
  parent's return from ``join`` (wired in
  :func:`repro.runtime.threads.run_concurrently`);
* **door-call handoff** — a door call is a happens-before edge from the
  caller to the handler (the request buffer carries the caller's clock)
  and from the handler back to the caller (the reply carries the
  handler's clock), wired in :class:`repro.kernel.nucleus.Kernel`;
* **marshal-pool buffer transfer** — releasing a pooled buffer
  happens-before the next ``acquire_buffer`` that hands the same buffer
  to another thread (list append/pop under the GIL is the real
  synchronization; the edge records it).

Tracked state is **declared**, not discovered: ``install_tsan`` wraps
the kernel's capability tables and every domain's ``locals`` dict in
tracked containers, classes tagged ``@shared_state`` get their
attribute writes instrumented, and :func:`track` wraps any dict or list
the caller nominates.  Uninstalled (``kernel.tsan is None``, the
default) every hook is one attribute read and one branch, not one
simulated nanosecond is charged, and ``@shared_state`` classes are
untouched; enabled, the detector never advances the simulated clock
either, so sim totals stay bit-for-bit identical.

Enable per kernel with :func:`install_tsan`, or process-wide with
``REPRO_TSAN=1`` in the environment (every new :class:`Kernel`
installs itself).
"""

from __future__ import annotations

import os
import sys
import threading
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:
    from repro.kernel.nucleus import Kernel

__all__ = [
    "DataRaceError",
    "RaceReport",
    "TsanRuntime",
    "TrackedDict",
    "TrackedList",
    "install_tsan",
    "uninstall_tsan",
    "active",
    "shared_state",
    "track",
    "instrument_lock",
]

#: the process-wide live detector, or None.  Module-global (not only
#: per-kernel) because thread start/join edges and ``@shared_state``
#: writes have no kernel in hand.
_ACTIVE: "TsanRuntime | None" = None

#: classes tagged ``@shared_state``; patched on install, restored on
#: uninstall.  Tagging is free until a detector is installed.
_SHARED_CLASSES: list[type] = []

#: ``REPRO_TSAN=1`` at import => every new Kernel installs a detector
ENABLED_FROM_ENV = os.environ.get("REPRO_TSAN", "") not in ("", "0")


def active() -> "TsanRuntime | None":
    """The live process-wide detector, or None."""
    return _ACTIVE


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------


class RaceReport:
    """One data race: two unordered accesses with disjoint locksets."""

    __slots__ = ("label", "first", "second")

    def __init__(self, label: str, first: "_Access", second: "_Access") -> None:
        self.label = label
        self.first = first
        self.second = second

    def __str__(self) -> str:
        return (
            f"data race on {self.label}: "
            f"{self.second.describe()} is unordered with earlier "
            f"{self.first.describe()}"
        )

    def sites(self) -> tuple[str, str]:
        return (self.first.site, self.second.site)


class DataRaceError(AssertionError):
    """Raised at the second access of a detected data race.

    Subclasses AssertionError so an un-caught race fails a test run
    loudly rather than being mistaken for a communication failure some
    subcontract would retry.
    """

    def __init__(self, report: RaceReport) -> None:
        super().__init__(str(report))
        self.report = report


class _Access:
    """One recorded access: who, where, under which locks."""

    __slots__ = ("op", "tid", "thread_name", "clock", "lockset", "site")

    def __init__(
        self,
        op: str,
        tid: int,
        thread_name: str,
        clock: dict[int, int],
        lockset: frozenset[str],
        site: str,
    ) -> None:
        self.op = op
        self.tid = tid
        self.thread_name = thread_name
        self.clock = clock
        self.lockset = lockset
        self.site = site

    def describe(self) -> str:
        locks = "{" + ", ".join(sorted(self.lockset)) + "}" if self.lockset else "{}"
        return f"{self.op} at {self.site} [thread {self.thread_name}, locks {locks}]"


# ----------------------------------------------------------------------
# per-thread state
# ----------------------------------------------------------------------


class _ThreadState:
    """Vector clock + held lockset for one thread.

    ``tid`` is a detector-issued *logical* id, not
    ``threading.get_ident()``: the OS recycles native thread ids, and a
    worker that inherits the id of an exited worker must not inherit
    its clock (that would order the two threads and hide their races).
    States live in a ``threading.local`` slot, which dies with its
    thread, so a recycled native id always gets a fresh state.
    """

    __slots__ = ("tid", "name", "clock", "locks")

    def __init__(self, tid: int, name: str) -> None:
        self.tid = tid
        self.name = name
        #: vector clock: logical thread id -> last event counter observed
        self.clock: dict[int, int] = {tid: 1}
        #: names of instrumented locks currently held (with depth)
        self.locks: dict[str, int] = {}

    def lockset(self) -> frozenset[str]:
        return frozenset(self.locks)

    def tick(self) -> None:
        self.clock[self.tid] = self.clock.get(self.tid, 0) + 1

    def join_clock(self, other: dict[int, int]) -> None:
        clock = self.clock
        for tid, counter in other.items():
            if clock.get(tid, 0) < counter:
                clock[tid] = counter


def _happens_before(earlier: dict[int, int], later: dict[int, int]) -> bool:
    """True when every event in ``earlier`` is visible in ``later``."""
    for tid, counter in earlier.items():
        if later.get(tid, 0) < counter:
            return False
    return True


class _VarState:
    """Access history for one tracked variable (bounded, per-thread)."""

    __slots__ = ("last_write", "reads")

    def __init__(self) -> None:
        self.last_write: _Access | None = None
        #: thread id -> most recent read by that thread
        self.reads: dict[int, _Access] = {}


# ----------------------------------------------------------------------
# the detector
# ----------------------------------------------------------------------


class TsanRuntime:
    """The live happens-before detector.

    ``report_mode`` is ``"raise"`` (default: the second access raises
    :class:`DataRaceError`) or ``"collect"`` (reports accumulate on
    :attr:`races`, each variable reported once).  The edge switches
    exist so the race fixtures can prove each edge is load-bearing:
    turning one off must turn a clean program into a reported race.
    """

    def __init__(
        self,
        report_mode: str = "raise",
        thread_edges: bool = True,
        door_edges: bool = True,
        pool_edges: bool = True,
        lock_edges: bool = True,
    ) -> None:
        if report_mode not in ("raise", "collect"):
            raise ValueError("report_mode must be 'raise' or 'collect'")
        self.report_mode = report_mode
        self.thread_edges = thread_edges
        self.door_edges = door_edges
        self.pool_edges = pool_edges
        self.lock_edges = lock_edges
        #: every race found in collect mode (first per variable)
        self.races: list[RaceReport] = []
        #: variables already reported (collect mode stops repeats)
        self._reported: set[Any] = set()
        #: accesses checked / edges observed, for introspection
        self.stats = {"reads": 0, "writes": 0, "edges": 0}
        # The detector's own mutex.  All detector state is guarded by
        # it; instrumented code never runs while it is held, so it can
        # introduce no deadlock with application locks.
        self._mu = threading.Lock()
        # Per-thread state lives in thread-local storage (see
        # _ThreadState's docstring for why not a get_ident()-keyed map).
        self._local = threading.local()
        self._next_tid = 0
        #: sync-object clocks: lock name / channel key -> clock snapshot
        self._sync: dict[Any, dict[int, int]] = {}
        #: tracked variable histories
        self._vars: dict[Any, _VarState] = {}
        #: labels for tracked variables (keys may be tuples)
        self._labels: dict[Any, str] = {}
        #: kernels this runtime is installed on, with their saved state
        self._kernels: list[tuple["Kernel", Any]] = []
        #: fork tokens for thread start/join edges
        self._tokens: dict[int, dict[int, int]] = {}
        self._next_token = 0

    # -- thread bookkeeping --------------------------------------------

    def _state(self) -> _ThreadState:
        state = getattr(self._local, "state", None)
        if state is None:
            self._next_tid += 1
            state = _ThreadState(self._next_tid, threading.current_thread().name)
            self._local.state = state
        return state

    # -- access checks -------------------------------------------------

    def on_read(self, key: Any, label: str | None = None, depth: int = 2) -> None:
        """Record a read of tracked variable ``key``; check for races."""
        with self._mu:
            self.stats["reads"] += 1
            state = self._state()
            var = self._vars.get(key)
            if var is None:
                var = self._vars[key] = _VarState()
                if label is not None:
                    self._labels[key] = label
            access = _Access(
                "read",
                state.tid,
                state.name,
                dict(state.clock),
                state.lockset(),
                _site(depth),
            )
            report = None
            last = var.last_write
            if (
                last is not None
                and last.tid != state.tid
                and not _happens_before(last.clock, state.clock)
                and last.lockset.isdisjoint(access.lockset)
            ):
                report = self._report(key, label, last, access)
            var.reads[state.tid] = access
        if report is not None and self.report_mode == "raise":
            raise DataRaceError(report)

    def on_write(self, key: Any, label: str | None = None, depth: int = 2) -> None:
        """Record a write of tracked variable ``key``; check for races."""
        with self._mu:
            self.stats["writes"] += 1
            state = self._state()
            var = self._vars.get(key)
            if var is None:
                var = self._vars[key] = _VarState()
                if label is not None:
                    self._labels[key] = label
            access = _Access(
                "write",
                state.tid,
                state.name,
                dict(state.clock),
                state.lockset(),
                _site(depth),
            )
            report = None
            last = var.last_write
            if (
                last is not None
                and last.tid != state.tid
                and not _happens_before(last.clock, state.clock)
                and last.lockset.isdisjoint(access.lockset)
            ):
                report = self._report(key, label, last, access)
            if report is None:
                for read in var.reads.values():
                    if (
                        read.tid != state.tid
                        and not _happens_before(read.clock, state.clock)
                        and read.lockset.isdisjoint(access.lockset)
                    ):
                        report = self._report(key, label, read, access)
                        break
            var.last_write = access
            # Reads ordered before this write can never race again;
            # drop them so histories stay bounded.
            var.reads = {
                tid: read
                for tid, read in var.reads.items()
                if not _happens_before(read.clock, access.clock)
            }
        if report is not None and self.report_mode == "raise":
            raise DataRaceError(report)

    def _report(
        self, key: Any, label: str | None, first: _Access, second: _Access
    ) -> RaceReport | None:
        if key in self._reported:
            return None
        self._reported.add(key)
        name = label or self._labels.get(key) or repr(key)
        report = RaceReport(name, first, second)
        self.races.append(report)
        return report

    # -- lock edges ----------------------------------------------------

    def on_acquire(self, name: str) -> None:
        """An instrumented lock was acquired (outermost acquisition)."""
        with self._mu:
            state = self._state()
            depth = state.locks.get(name, 0)
            state.locks[name] = depth + 1
            if depth == 0 and self.lock_edges:
                clock = self._sync.get(("lock", name))
                if clock is not None:
                    state.join_clock(clock)
                self.stats["edges"] += 1

    def on_release(self, name: str) -> None:
        """An instrumented lock is about to be released (outermost)."""
        with self._mu:
            state = self._state()
            depth = state.locks.get(name, 0)
            if depth <= 1:
                state.locks.pop(name, None)
            else:
                state.locks[name] = depth - 1
                return
            if self.lock_edges:
                self._sync[("lock", name)] = dict(state.clock)
                state.tick()
                self.stats["edges"] += 1

    # -- thread start / join edges (run_concurrently) ------------------

    def fork(self) -> int:
        """Parent side of a thread start: snapshot the parent's clock."""
        with self._mu:
            state = self._state()
            token = self._next_token = self._next_token + 1
            if self.thread_edges:
                self._tokens[token] = dict(state.clock)
                state.tick()
                self.stats["edges"] += 1
            return token

    def child_begin(self, token: int) -> None:
        """Child side of a thread start: inherit the parent's clock."""
        with self._mu:
            state = self._state()
            if self.thread_edges:
                snapshot = self._tokens.pop(token, None)
                if snapshot is not None:
                    state.join_clock(snapshot)
                self.stats["edges"] += 1

    def child_end(self, token: int) -> None:
        """Child about to exit: publish its clock for the joiner."""
        with self._mu:
            state = self._state()
            if self.thread_edges:
                self._tokens[token] = dict(state.clock)
                state.tick()
                self.stats["edges"] += 1

    def join_edge(self, token: int) -> None:
        """Parent returned from join: everything the child did is visible."""
        with self._mu:
            state = self._state()
            if self.thread_edges:
                snapshot = self._tokens.pop(token, None)
                if snapshot is not None:
                    state.join_clock(snapshot)
                state.tick()
                self.stats["edges"] += 1

    # -- door-call handoff edges (kernel) ------------------------------

    def on_door_send(self, door: Any, buffer: Any) -> None:
        """Caller -> handler: the request carries the caller's clock."""
        if not self.door_edges:
            return
        with self._mu:
            state = self._state()
            self._sync[("door", id(buffer))] = dict(state.clock)
            state.tick()
            self.stats["edges"] += 1

    def on_door_receive(self, door: Any, buffer: Any) -> None:
        """Handler side: join the clock the request carried."""
        if not self.door_edges:
            return
        with self._mu:
            clock = self._sync.pop(("door", id(buffer)), None)
            if clock is not None:
                self._state().join_clock(clock)
            self.stats["edges"] += 1

    def on_reply_send(self, buffer: Any) -> None:
        """Handler -> caller: the reply carries the handler's clock."""
        if not self.door_edges:
            return
        with self._mu:
            state = self._state()
            self._sync[("reply", id(buffer))] = dict(state.clock)
            state.tick()
            self.stats["edges"] += 1

    def on_reply_receive(self, buffer: Any) -> None:
        """Caller side: join the clock the reply carried."""
        if not self.door_edges:
            return
        with self._mu:
            clock = self._sync.pop(("reply", id(buffer)), None)
            if clock is not None:
                self._state().join_clock(clock)
            self.stats["edges"] += 1

    # -- marshal-pool transfer edges -----------------------------------

    def on_buffer_release(self, buffer: Any) -> None:
        """A pooled buffer returns to its domain's free-list."""
        if not self.pool_edges:
            return
        with self._mu:
            state = self._state()
            self._sync[("pool", id(buffer))] = dict(state.clock)
            state.tick()
            self.stats["edges"] += 1

    def on_buffer_acquire(self, buffer: Any) -> None:
        """A pooled buffer was handed out again (possibly cross-thread)."""
        if not self.pool_edges:
            return
        with self._mu:
            clock = self._sync.pop(("pool", id(buffer)), None)
            if clock is not None:
                self._state().join_clock(clock)
            self.stats["edges"] += 1

    # -- installation --------------------------------------------------

    def attach_kernel(self, kernel: "Kernel") -> None:
        """Instrument one kernel: table lock, tables, domains."""
        saved = {
            "table_lock": kernel._table_lock,
            "domains": kernel.domains,
            "doors": kernel.doors,
            "domain_locals": {},
        }
        kernel._table_lock = TsanLock(
            kernel._table_lock, "Kernel._table_lock", self
        )
        kernel.domains = TrackedDict(kernel.domains, "Kernel.domains", self)
        kernel.doors = TrackedDict(kernel.doors, "Kernel.doors", self)
        for domain in saved["domains"].values():
            saved["domain_locals"][domain.uid] = domain.locals
            self.on_domain_created(domain)
        kernel.tsan = self
        self._kernels.append((kernel, saved))

    def on_domain_created(self, domain: Any) -> None:
        """Track a new domain's scratch storage (``domain.locals``)."""
        if not isinstance(domain.locals, TrackedDict):
            domain.locals = TrackedDict(
                domain.locals, f"domain[{domain.name}].locals", self
            )

    def detach_all(self) -> None:
        """Restore every instrumented kernel to its uninstalled state."""
        for kernel, saved in self._kernels:
            kernel._table_lock = saved["table_lock"]
            kernel.domains = dict(kernel.domains)
            kernel.doors = dict(kernel.doors)
            for domain in kernel.domains.values():
                if domain.uid in saved["domain_locals"] and isinstance(
                    domain.locals, TrackedDict
                ):
                    restored = dict(domain.locals)
                    domain.locals = restored
                elif isinstance(domain.locals, TrackedDict):
                    domain.locals = dict(domain.locals)
            kernel.tsan = None
        self._kernels = []


def _site(depth: int) -> str:
    """``file:line`` of the instrumented access, skipping tsan frames."""
    frame = sys._getframe(depth)
    here = __file__
    while frame is not None and frame.f_code.co_filename == here:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - interpreter shutdown only
        return "<unknown>"
    filename = frame.f_code.co_filename
    base = os.path.basename(filename)
    return f"{base}:{frame.f_lineno}"


# ----------------------------------------------------------------------
# instrumented containers and locks
# ----------------------------------------------------------------------


class TrackedDict(dict):
    """A dict whose item reads and writes report to the detector."""

    __slots__ = ("_tsan", "_label")

    def __init__(self, data: dict, label: str, runtime: TsanRuntime) -> None:
        super().__init__(data)
        self._tsan = runtime
        self._label = label

    def _key(self, key: Any) -> tuple:
        return ("dict", id(self), key)

    def _name(self, key: Any) -> str:
        return f"{self._label}[{key!r}]"

    def __getitem__(self, key: Any) -> Any:
        self._tsan.on_read(self._key(key), self._name(key), depth=3)
        return super().__getitem__(key)

    def get(self, key: Any, default: Any = None) -> Any:
        self._tsan.on_read(self._key(key), self._name(key), depth=3)
        return super().get(key, default)

    def __setitem__(self, key: Any, value: Any) -> None:
        self._tsan.on_write(self._key(key), self._name(key), depth=3)
        super().__setitem__(key, value)

    def __delitem__(self, key: Any) -> None:
        self._tsan.on_write(self._key(key), self._name(key), depth=3)
        super().__delitem__(key)

    def setdefault(self, key: Any, default: Any = None) -> Any:
        self._tsan.on_write(self._key(key), self._name(key), depth=3)
        return super().setdefault(key, default)

    def pop(self, key: Any, *default: Any) -> Any:
        self._tsan.on_write(self._key(key), self._name(key), depth=3)
        return super().pop(key, *default)

    def update(self, *args: Any, **kwargs: Any) -> None:
        staged = dict(*args, **kwargs)
        for key in staged:
            self._tsan.on_write(self._key(key), self._name(key), depth=3)
        super().update(staged)

    def clear(self) -> None:
        for key in list(self):
            self._tsan.on_write(self._key(key), self._name(key), depth=3)
        super().clear()


class TrackedList(list):
    """A list whose element reads and mutations report to the detector.

    The whole list is one tracked variable: index-level granularity on a
    mutating sequence would miss shifts, and the racy pattern this
    catches is concurrent append/pop against unsynchronized iteration.
    """

    __slots__ = ("_tsan", "_label")

    def __init__(self, data: Iterable, label: str, runtime: TsanRuntime) -> None:
        super().__init__(data)
        self._tsan = runtime
        self._label = label

    def _key(self) -> tuple:
        return ("list", id(self))

    def __getitem__(self, index: Any) -> Any:
        self._tsan.on_read(self._key(), self._label, depth=3)
        return super().__getitem__(index)

    def __iter__(self):
        self._tsan.on_read(self._key(), self._label, depth=3)
        return super().__iter__()

    def __setitem__(self, index: Any, value: Any) -> None:
        self._tsan.on_write(self._key(), self._label, depth=3)
        super().__setitem__(index, value)

    def append(self, value: Any) -> None:
        self._tsan.on_write(self._key(), self._label, depth=3)
        super().append(value)

    def extend(self, values: Iterable) -> None:
        self._tsan.on_write(self._key(), self._label, depth=3)
        super().extend(values)

    def pop(self, index: int = -1) -> Any:
        self._tsan.on_write(self._key(), self._label, depth=3)
        return super().pop(index)

    def remove(self, value: Any) -> None:
        self._tsan.on_write(self._key(), self._label, depth=3)
        super().remove(value)

    def clear(self) -> None:
        self._tsan.on_write(self._key(), self._label, depth=3)
        super().clear()


class TsanLock:
    """Wrap a Lock/RLock so the detector sees acquire/release edges.

    Reentrant acquisition is folded: only the outermost acquire joins
    the lock's clock and only the outermost release publishes it, so an
    RLock-guarded recursive path counts as one critical section.
    """

    __slots__ = ("_inner", "name", "_tsan")

    def __init__(self, inner: Any, name: str, runtime: TsanRuntime) -> None:
        self._inner = inner
        self.name = name
        self._tsan = runtime

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        got = self._inner.acquire(*args, **kwargs)
        if got:
            self._tsan.on_acquire(self.name)
        return got

    def release(self) -> None:
        self._tsan.on_release(self.name)
        self._inner.release()

    def __enter__(self) -> "TsanLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def locked(self) -> bool:  # pragma: no cover - debugging aid
        return self._inner.locked()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TsanLock {self.name} around {self._inner!r}>"


# ----------------------------------------------------------------------
# the declaration API
# ----------------------------------------------------------------------


def shared_state(cls: type) -> type:
    """Class decorator: instances hold shared mutable state.

    Free until a detector is installed; then every attribute write on
    instances of the class reports to the detector (reads are not
    instrumented — ``__getattribute__`` interception is too invasive —
    so the tag catches write/write lost updates, and tracked containers
    or explicit :func:`track` calls cover read/write races).
    """
    _SHARED_CLASSES.append(cls)
    if _ACTIVE is not None:
        _patch_shared_class(cls)
    return cls


def _patch_shared_class(cls: type) -> None:
    if getattr(cls, "_tsan_orig_setattr", None) is not None:
        return
    orig = cls.__setattr__

    def traced_setattr(self: Any, name: str, value: Any) -> None:
        runtime = _ACTIVE
        if runtime is not None and not name.startswith("_tsan"):
            runtime.on_write(
                ("attr", id(self), name), f"{cls.__name__}.{name}", depth=2
            )
        orig(self, name, value)

    cls._tsan_orig_setattr = orig  # type: ignore[attr-defined]
    cls.__setattr__ = traced_setattr  # type: ignore[assignment]


def _unpatch_shared_class(cls: type) -> None:
    orig = getattr(cls, "_tsan_orig_setattr", None)
    if orig is not None:
        cls.__setattr__ = orig  # type: ignore[assignment]
        cls._tsan_orig_setattr = None  # type: ignore[attr-defined]


def track(obj: Any, label: str = "shared") -> Any:
    """Wrap ``obj`` in a tracked container when a detector is live.

    Returns ``obj`` unchanged (zero cost) when no detector is
    installed, so construction sites can write
    ``self.memo = tsan.track({}, "caching.memo")`` unconditionally.
    """
    runtime = _ACTIVE
    if runtime is None:
        return obj
    if isinstance(obj, TrackedDict) or isinstance(obj, TrackedList):
        return obj
    if isinstance(obj, dict):
        return TrackedDict(obj, label, runtime)
    if isinstance(obj, list):
        return TrackedList(obj, label, runtime)
    raise TypeError(
        f"track() wraps dicts and lists; tag {type(obj).__name__} classes "
        "with @shared_state instead"
    )


def instrument_lock(lock: Any, name: str) -> Any:
    """Wrap ``lock`` for the detector; returns it unchanged when off."""
    runtime = _ACTIVE
    if runtime is None or isinstance(lock, TsanLock):
        return lock
    return TsanLock(lock, name, runtime)


# ----------------------------------------------------------------------
# install / uninstall
# ----------------------------------------------------------------------


def install_tsan(kernel: "Kernel", **options: Any) -> TsanRuntime:
    """Install a happens-before race detector on ``kernel``.

    The detector is process-wide (thread edges have no kernel in hand);
    installing on a second kernel attaches it to the same runtime.
    ``options`` pass through to :class:`TsanRuntime` on first install.
    """
    global _ACTIVE
    runtime = _ACTIVE
    if runtime is None:
        runtime = TsanRuntime(**options)
        _ACTIVE = runtime
        for cls in _SHARED_CLASSES:
            _patch_shared_class(cls)
    elif options:
        raise ValueError(
            "a detector is already live; uninstall it before changing options"
        )
    if getattr(kernel, "tsan", None) is not runtime:
        runtime.attach_kernel(kernel)
    return runtime


def uninstall_tsan(kernel: "Kernel | None" = None) -> None:
    """Remove the detector (from every kernel it instrumented)."""
    global _ACTIVE
    runtime = _ACTIVE
    if runtime is None:
        if kernel is not None:
            kernel.tsan = None
        return
    runtime.detach_all()
    for cls in _SHARED_CLASSES:
        _unpatch_shared_class(cls)
    _ACTIVE = None
