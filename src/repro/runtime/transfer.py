"""Direct object transfer between domains.

Objects normally travel as arguments and results of door calls; at start
of day, though, somebody has to hand the first capability over (the way
Spring boots a domain with its name-service door).  These helpers perform
that kernel-mediated transfer explicitly:

* :func:`transfer` — **move** an object to another domain (the source
  handle is consumed; Figure 2 semantics);
* :func:`give` — transfer a **copy**, keeping the original.

Both run the full marshal/unmarshal path — subcontract ID, compatible
routing, door-vector translation — so a transferred object is
indistinguishable from one received through an interface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.marshal.buffer import MarshalBuffer

if TYPE_CHECKING:
    from repro.core.object import SpringObject
    from repro.kernel.domain import Domain

__all__ = ["transfer", "give"]


def transfer(obj: "SpringObject", to_domain: "Domain") -> "SpringObject":
    """Move ``obj`` into ``to_domain``; the source handle is consumed."""
    source = obj._domain
    binding = obj._binding
    buffer = MarshalBuffer(source.kernel)
    obj._subcontract.marshal(obj, buffer)
    buffer.seal_for_transmission(source)
    return binding.unmarshal_from(buffer, to_domain)


def give(obj: "SpringObject", to_domain: "Domain") -> "SpringObject":
    """Deliver a copy of ``obj`` to ``to_domain``, keeping the original.

    Uses the subcontract's fused ``marshal_copy`` (Section 5.1.5).
    """
    source = obj._domain
    binding = obj._binding
    buffer = MarshalBuffer(source.kernel)
    obj._subcontract.marshal_copy(obj, buffer)
    buffer.seal_for_transmission(source)
    return binding.unmarshal_from(buffer, to_domain)
