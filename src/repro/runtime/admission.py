"""Admission control: concurrency limits, bounded door queues, shedding.

Until this module a burst of callers drove every door at unbounded
concurrency: nothing in the nucleus could say *busy*, so overload either
blew deadlines or degenerated the sim.  An :class:`AdmissionController`
installed on the kernel (``Environment.install_admission``) gives a door
the server side of the PR-4 failure contract:

* a **concurrency limit** — up to ``limit`` calls are served at once
  (tracked as a virtual multi-server occupancy on the simulated clock);
* a **bounded FIFO wait queue** — calls over the limit wait their turn,
  charging ``admission_wait`` simulated time; calls over ``queue_limit``
  are shed immediately;
* **deadline-aware shedding** — a queued call whose stamped
  ``deadline_us`` would already be spent before it could reach the front
  is shed on arrival (serve what can still succeed, never what cannot);
* an optional **adaptive mode** — AIMD on observed queue delay,
  CoDel-style: while the per-window minimum delay stays under
  ``target_delay_us`` the limit is raised additively; when it exceeds
  the target the limit is cut multiplicatively.

Shed calls raise :class:`~repro.kernel.errors.ServerBusyError` — a
*retryable* communication failure carrying a seeded-jitter
``retry_after_us`` hint that :class:`~repro.runtime.retry.RetryPolicy`
honours as its next backoff floor.  Busy is not dead: reconnectable
backs off without tripping its breaker, replicon diverts to the
least-loaded replica without pruning, caching serves a stale local copy
(see each subcontract module).

Overload itself is produced by the seeded open-loop burst generator in
:mod:`repro.runtime.chaos` (:class:`~repro.runtime.chaos.OpenLoopBurst`):
*phantom* arrivals — exponential interarrivals and service demands drawn
from their own ``random.Random(seed)`` — occupy the same virtual
occupancy the real calls are admitted against, so a single-threaded
simulated workload experiences genuine queueing and shedding, and every
run replays bit-for-bit from its seed.

Enforcement sits in two places, mirroring the deadline gates: the
kernel's local door-call tail (below the deadline gate, above handler
dispatch) and the fabric's incoming wire leg — so local and
cross-machine calls are governed identically, and a cross-machine call
is admitted once, on the serving machine.  When no controller is
installed (``kernel.admission is None``) the gate costs one attribute
read and one branch and not one simulated nanosecond; installed, an
*ungoverned* door resolves to ``None`` once and is cached, so only doors
with a policy pay anything.

Everything is observable: ``admission.queued`` / ``admission.shed`` /
``admission.rejected`` span events and queue-depth / wait histograms
under the ``admission`` metrics scope, plus plain counters on
:attr:`AdmissionController.stats` for untraced runs.
"""

from __future__ import annotations

import heapq
import random
import threading
from typing import TYPE_CHECKING

from repro.kernel.errors import ServerBusyError
from repro.runtime import tsan as _tsan

if TYPE_CHECKING:
    from repro.kernel.domain import Domain
    from repro.kernel.doors import Door, DoorIdentifier
    from repro.kernel.nucleus import Kernel
    from repro.runtime.chaos import OpenLoopBurst

__all__ = [
    "AdmissionPolicy",
    "AdmissionController",
    "install_admission",
    "uninstall_admission",
    "QUEUE_DEPTH_BUCKETS",
    "QUEUE_WAIT_BUCKETS_US",
]

#: queue-depth histogram bounds (calls waiting, not in service)
QUEUE_DEPTH_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: queue-wait histogram bounds (simulated microseconds)
QUEUE_WAIT_BUCKETS_US = (
    50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0,
)

#: EWMA weight for measured service times (feeds occupancy projections)
_SERVICE_EWMA_ALPHA = 0.2


class AdmissionPolicy:
    """The admission discipline for one door (or one domain's doors).

    ``queue_limit=None`` means an unbounded wait queue and
    ``deadline_aware=False`` disables the serve-what-can-still-succeed
    rule — together they are the "shedding off" configuration the P5
    goodput bench compares against (every call queues, however hopeless).
    """

    __slots__ = (
        "limit",
        "queue_limit",
        "deadline_aware",
        "service_estimate_us",
        "retry_jitter",
        "adaptive",
        "target_delay_us",
        "interval_us",
        "min_limit",
        "max_limit",
        "increase",
        "decrease",
    )

    def __init__(
        self,
        limit: int,
        queue_limit: int | None = 8,
        deadline_aware: bool = True,
        service_estimate_us: float = 200.0,
        retry_jitter: float = 0.25,
        adaptive: bool = False,
        target_delay_us: float = 500.0,
        interval_us: float = 10_000.0,
        min_limit: int = 1,
        max_limit: int = 64,
        increase: int = 1,
        decrease: float = 0.5,
    ) -> None:
        if limit < 1:
            raise ValueError("concurrency limit must be >= 1")
        if queue_limit is not None and queue_limit < 0:
            raise ValueError("queue_limit must be >= 0 (or None for unbounded)")
        if service_estimate_us <= 0:
            raise ValueError("service_estimate_us must be > 0")
        if not 0.0 <= retry_jitter < 1.0:
            raise ValueError("retry_jitter must be in [0, 1)")
        if adaptive:
            if not 1 <= min_limit <= max_limit:
                raise ValueError("need 1 <= min_limit <= max_limit")
            if increase < 1:
                raise ValueError("additive increase must be >= 1")
            if not 0.0 < decrease < 1.0:
                raise ValueError("multiplicative decrease must be in (0, 1)")
            if interval_us <= 0 or target_delay_us < 0:
                raise ValueError("adaptive window knobs must be positive")
        self.limit = limit
        self.queue_limit = queue_limit
        self.deadline_aware = deadline_aware
        self.service_estimate_us = service_estimate_us
        self.retry_jitter = retry_jitter
        self.adaptive = adaptive
        self.target_delay_us = target_delay_us
        self.interval_us = interval_us
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.increase = increase
        self.decrease = decrease

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bound = "inf" if self.queue_limit is None else self.queue_limit
        mode = "adaptive" if self.adaptive else "fixed"
        return f"<AdmissionPolicy limit={self.limit} queue={bound} {mode}>"


class _DoorState:
    """Per-governed-door occupancy: a virtual FIFO multi-server queue.

    ``server_free`` is a min-heap of the virtual servers' next-free
    times (materialised lazily up to the current limit); ``queued_starts``
    is a min-heap of the start times of admitted-but-not-yet-started
    calls, so the live queue depth is its length after pruning.  Both
    real calls and phantom burst arrivals pass through the same
    bookkeeping, in arrival order, which is what makes the FIFO model
    exact and the replay deterministic.
    """

    __slots__ = (
        "door",
        "policy",
        "limit",
        "server_free",
        "queued_starts",
        "ewma_service_us",
        "window_start_us",
        "window_min_wait_us",
        "bursts",
        "admitted",
        "queued",
        "shed",
        "rejected",
        "phantom_admitted",
        "phantom_shed",
        "phantom_rejected",
    )

    def __init__(self, door: "Door", policy: AdmissionPolicy) -> None:
        self.door = door
        self.policy = policy
        self.limit = policy.limit
        self.server_free: list[float] = []
        self.queued_starts: list[float] = []
        self.ewma_service_us = policy.service_estimate_us
        self.window_start_us: float | None = None
        self.window_min_wait_us = 0.0
        self.bursts: list["OpenLoopBurst"] = []
        self.admitted = 0
        self.queued = 0
        self.shed = 0
        self.rejected = 0
        self.phantom_admitted = 0
        self.phantom_shed = 0
        self.phantom_rejected = 0

    def snapshot(self) -> dict:
        return {
            "door": self.door.uid,
            "label": self.door.label,
            "limit": self.limit,
            "admitted": self.admitted,
            "queued": self.queued,
            "shed": self.shed,
            "rejected": self.rejected,
            "phantom_admitted": self.phantom_admitted,
            "phantom_shed": self.phantom_shed,
            "phantom_rejected": self.phantom_rejected,
        }


class AdmissionController:
    """Per-domain / per-door admission control for one kernel.

    Policies attach at two granularities: :meth:`govern` pins a policy to
    one door; :meth:`govern_domain` covers every door a domain serves
    (resolved lazily, per door, on its first governed call).  Doors with
    neither stay ungoverned and cost one cached dictionary miss, ever.
    """

    def __init__(self, kernel: "Kernel", seed: int = 0) -> None:
        self.kernel = kernel
        self.seed = seed
        #: jitters retry_after_us hints only — consumed once per real shed,
        #: so replays are bit-for-bit per seed and workload
        self.rng = random.Random(seed)
        self._door_policies: dict[int, AdmissionPolicy] = {}
        self._domain_policies: dict[int, AdmissionPolicy] = {}
        #: door uid -> _DoorState, or None for cached "ungoverned"
        self._states: dict[int, _DoorState | None] = {}
        # Serializes the occupancy model (heaps, counters, EWMA, rng)
        # against concurrent caller threads.  Only governed doors take
        # it: the ungoverned fast path stays a lock-free cached dict
        # read, so admission-free hot paths keep their wall parity.
        self._gate_lock = _tsan.instrument_lock(
            threading.Lock(), "AdmissionController._gate_lock"
        )
        #: controller-wide counters (real calls and phantoms separately)
        self.stats: dict[str, int] = _tsan.track(
            {
                "admitted": 0,
                "queued": 0,
                "shed": 0,
                "rejected": 0,
                "phantom_admitted": 0,
                "phantom_shed": 0,
                "phantom_rejected": 0,
            },
            "admission.stats",
        )

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    def govern(
        self, door: "Door | DoorIdentifier", policy: AdmissionPolicy
    ) -> AdmissionPolicy:
        """Attach an admission policy to one door."""
        door = _as_door(door)
        with self._gate_lock:
            self._door_policies[door.uid] = policy
            self._states.pop(door.uid, None)  # drop any cached "ungoverned"
        return policy

    def govern_domain(self, domain: "Domain", policy: AdmissionPolicy) -> AdmissionPolicy:
        """Attach an admission policy to every door ``domain`` serves."""
        with self._gate_lock:
            self._domain_policies[domain.uid] = policy
            self._states.clear()  # re-resolve lazily under the new coverage
        return policy

    def _resolve(self, door: "Door") -> "_DoorState | None":
        """Resolve a door's state; call with ``_gate_lock`` held.

        Re-checks the cache under the lock so two threads racing on a
        door's first governed call share one occupancy model instead of
        splitting its bookkeeping across two.
        """
        if door.uid in self._states:
            return self._states[door.uid]
        policy = self._door_policies.get(door.uid)
        if policy is None:
            policy = self._domain_policies.get(door.server.uid)
        state = _DoorState(door, policy) if policy is not None else None
        self._states[door.uid] = state
        return state

    # ------------------------------------------------------------------
    # the gate (called from the kernel and the fabric)
    # ------------------------------------------------------------------

    def admit(self, door: "Door", buffer) -> "tuple[_DoorState, float] | None":
        """Admit one real call to ``door``; the kernel calls this.

        Returns an opaque permit to hand back to :meth:`complete` (or
        ``None`` when the door is ungoverned), charges any queueing wait
        as ``admission_wait`` simulated time, and raises
        :class:`ServerBusyError` when the call is shed.
        """
        try:
            state = self._states[door.uid]
        except KeyError:
            with self._gate_lock:
                state = self._resolve(door)
        if state is None:
            return None
        clock = self.kernel.clock
        tracer = self.kernel.tracer
        with self._gate_lock:
            now = clock.now_us
            if state.bursts:
                self._pump_bursts(state, now)
            wait, depth = self._assess(state, now, buffer.deadline_us)
            self._commit(state, now, wait)
            if wait > 0.0:
                state.queued += 1
                self.stats["queued"] += 1
                clock.advance(wait, "admission_wait")
                if tracer.enabled:
                    tracer.event(
                        "admission.queued",
                        subcontract="admission",
                        door=door.uid,
                        wait_us=round(wait, 2),
                        depth=depth,
                    )
            state.admitted += 1
            self.stats["admitted"] += 1
            if tracer.enabled:
                metrics = tracer.metrics
                metrics.histogram(
                    "admission", "queue_depth", QUEUE_DEPTH_BUCKETS
                ).observe(float(depth))
                metrics.histogram(
                    "admission", "queue_wait_us", QUEUE_WAIT_BUCKETS_US
                ).observe(wait)
                windows = tracer.windows
                if windows is not None:
                    # queue depth has no *_us suffix, so the generic
                    # event feed would not sketch it; feed it directly.
                    clock.charge("window_probe")
                    windows.observe(
                        "admission", "queue_depth", float(depth), clock.now_us
                    )
            return (state, clock.now_us)

    def complete(self, permit: "tuple[_DoorState, float]") -> None:
        """Report a permitted call finished; feeds the service-time EWMA."""
        state, started_us = permit
        measured = self.kernel.clock.now_us - started_us
        if measured > 0.0:
            with self._gate_lock:
                state.ewma_service_us += _SERVICE_EWMA_ALPHA * (
                    measured - state.ewma_service_us
                )

    # ------------------------------------------------------------------
    # the FIFO multi-server model (shared by real calls and phantoms)
    # ------------------------------------------------------------------

    def _assess(
        self, state: _DoorState, now: float, deadline_us: float | None
    ) -> tuple[float, int]:
        """Decide one real arrival: (wait_us, queue_depth) or raise busy."""
        free = state.server_free
        while len(free) < state.limit:
            heapq.heappush(free, now)  # materialise an idle virtual server
        earliest = free[0]
        if earliest <= now:
            return 0.0, self._queue_depth(state, now)
        depth = self._queue_depth(state, now)
        policy = state.policy
        if policy.queue_limit is not None and depth >= policy.queue_limit:
            self._shed(state, now, depth, "queue")
        if (
            policy.deadline_aware
            and deadline_us is not None
            and earliest >= deadline_us
        ):
            self._reject(state, now, earliest, deadline_us)
        return earliest - now, depth + 1

    def _commit(self, state: _DoorState, now: float, wait: float) -> None:
        """Book the admitted arrival into the occupancy model."""
        start = now + wait
        heapq.heapreplace(state.server_free, start + state.ewma_service_us)
        if wait > 0.0:
            heapq.heappush(state.queued_starts, start)
        if state.policy.adaptive:
            self._adapt(state, now, wait)

    def _queue_depth(self, state: _DoorState, now: float) -> int:
        starts = state.queued_starts
        while starts and starts[0] <= now:
            heapq.heappop(starts)
        return len(starts)

    def _shed(self, state: _DoorState, now: float, depth: int, kind: str) -> None:
        state.shed += 1
        self.stats["shed"] += 1
        retry_after = self._retry_after(state, now)
        self._event(
            "admission.shed",
            door=state.door.uid,
            depth=depth,
            retry_after_us=round(retry_after, 2),
        )
        raise ServerBusyError(
            f"door #{state.door.uid} shed the call: wait queue full "
            f"({depth} waiting, bound {state.policy.queue_limit}, "
            f"limit {state.limit})",
            retry_after_us=retry_after,
        )

    def _reject(
        self, state: _DoorState, now: float, start: float, deadline_us: float
    ) -> None:
        state.rejected += 1
        self.stats["rejected"] += 1
        retry_after = self._retry_after(state, now)
        self._event(
            "admission.rejected",
            door=state.door.uid,
            wait_us=round(start - now, 2),
            over_budget_us=round(start - deadline_us, 2),
        )
        raise ServerBusyError(
            f"door #{state.door.uid} shed the call: its deadline would be "
            f"spent {start - deadline_us:.1f} us before it reached the "
            f"front of the queue",
            retry_after_us=retry_after,
        )

    def _retry_after(self, state: _DoorState, now: float) -> float:
        """When to come back: the earliest virtual-server free time, with
        seeded jitter so shed callers do not return in lockstep."""
        free = state.server_free
        base = free[0] - now if free and free[0] > now else state.ewma_service_us
        jitter = state.policy.retry_jitter
        if jitter:
            base *= 1.0 + jitter * self.rng.random()
        return base

    def _adapt(self, state: _DoorState, now: float, wait: float) -> None:
        """CoDel-style AIMD: track the per-window *minimum* queue delay;
        raise the limit additively while it stays under target, cut it
        multiplicatively the moment a whole window stays over."""
        if state.window_start_us is None:
            state.window_start_us = now
            state.window_min_wait_us = wait
            return
        if wait < state.window_min_wait_us:
            state.window_min_wait_us = wait
        policy = state.policy
        if now - state.window_start_us < policy.interval_us:
            return
        before = state.limit
        if state.window_min_wait_us > policy.target_delay_us:
            state.limit = max(policy.min_limit, int(state.limit * policy.decrease))
        else:
            state.limit = min(policy.max_limit, state.limit + policy.increase)
        if state.limit < len(state.server_free):
            # A cut retires the latest-free virtual servers.
            free = sorted(state.server_free)[: state.limit]
            heapq.heapify(free)
            state.server_free = free
        state.window_start_us = None
        if state.limit != before:
            self._event(
                "admission.adapt",
                door=state.door.uid,
                limit=state.limit,
                was=before,
                min_wait_us=round(state.window_min_wait_us, 2),
            )

    # ------------------------------------------------------------------
    # phantom load (the chaos burst generator feeds these)
    # ------------------------------------------------------------------

    def attach_burst(self, burst: "OpenLoopBurst") -> None:
        """Drive a door's occupancy from a seeded open-loop burst.

        Phantom arrivals are folded in lazily, in arrival order, whenever
        the door is consulted — they never advance the clock themselves.
        """
        with self._gate_lock:
            state = self._resolve(burst.door)
            if state is None:
                raise ValueError(
                    f"door #{burst.door.uid} has no admission policy; govern "
                    f"it before attaching a burst"
                )
            state.bursts.append(burst)

    def _pump_bursts(self, state: _DoorState, now: float) -> None:
        bursts = state.bursts
        while True:
            best = None
            for burst in bursts:
                at = burst.next_at_us
                if at is not None and at <= now and (
                    best is None or at < best.next_at_us
                ):
                    best = burst
            if best is None:
                return
            arrival_us, service_us = best.take()
            self._phantom(state, arrival_us, service_us)

    def _phantom(self, state: _DoorState, at: float, service_us: float) -> None:
        """One phantom arrival: same FIFO bookkeeping, no clock charges,
        no exceptions — sheds are counted, not raised."""
        free = state.server_free
        while len(free) < state.limit:
            heapq.heappush(free, at)
        earliest = free[0]
        policy = state.policy
        wait = 0.0
        if earliest > at:
            depth = self._queue_depth(state, at)
            if policy.queue_limit is not None and depth >= policy.queue_limit:
                state.phantom_shed += 1
                self.stats["phantom_shed"] += 1
                return
            wait = earliest - at
            # Phantom patience applies in every policy mode: an open-loop
            # caller never waits forever, and without this bound a
            # saturating burst feeds back into the clock (every real wait
            # leaps time, every leap spawns more phantoms) without limit.
            if wait > _PHANTOM_PATIENCE_US:
                state.phantom_rejected += 1
                self.stats["phantom_rejected"] += 1
                return
        start = at + wait
        heapq.heapreplace(free, start + service_us)
        if wait > 0.0:
            heapq.heappush(state.queued_starts, start)
        state.phantom_admitted += 1
        self.stats["phantom_admitted"] += 1
        state.ewma_service_us += _SERVICE_EWMA_ALPHA * (
            service_us - state.ewma_service_us
        )
        if policy.adaptive:
            self._adapt(state, at, wait)

    # ------------------------------------------------------------------
    # introspection (degradation hooks, tests, benches)
    # ------------------------------------------------------------------

    def projected_wait_us(self, door: "Door | DoorIdentifier") -> float:
        """The queueing wait a call to ``door`` would see right now.

        ``0.0`` for ungoverned (or idle) doors, ``inf`` when the call
        would be shed outright — which is what lets replicon pick the
        least-loaded replica without attempting the call.
        """
        door = _as_door(door)
        try:
            state = self._states[door.uid]
        except KeyError:
            with self._gate_lock:
                state = self._resolve(door)
        if state is None:
            return 0.0
        with self._gate_lock:
            now = self.kernel.clock.now_us
            if state.bursts:
                self._pump_bursts(state, now)
            free = state.server_free
            while len(free) < state.limit:
                heapq.heappush(free, now)
            earliest = free[0]
            if earliest <= now:
                return 0.0
            policy = state.policy
            if policy.queue_limit is not None:
                if self._queue_depth(state, now) >= policy.queue_limit:
                    return float("inf")
            return earliest - now

    def queue_depth(self, door: "Door | DoorIdentifier") -> int:
        """Calls currently waiting (admitted, not yet started) at ``door``."""
        door = _as_door(door)
        state = self._states.get(door.uid)
        if state is None:
            return 0
        with self._gate_lock:
            return self._queue_depth(state, self.kernel.clock.now_us)

    def door_snapshot(self, door: "Door | DoorIdentifier") -> dict | None:
        """Per-door counters, or ``None`` for ungoverned doors."""
        door = _as_door(door)
        state = self._states.get(door.uid)
        return state.snapshot() if state is not None else None

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def _event(self, name: str, **detail) -> None:
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.event(name, subcontract="admission", **detail)  # springlint: disable=metrics-naming -- generic relay: literal names live at the emit sites

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        governed = sum(1 for s in self._states.values() if s is not None)
        return (
            f"<AdmissionController seed={self.seed} governed={governed}"
            f" stats={self.stats}>"
        )


#: phantom arrivals give up once their projected wait exceeds this —
#: the open-loop stand-in for a real caller's deadline budget
_PHANTOM_PATIENCE_US = 50_000.0


def _as_door(door: "Door | DoorIdentifier") -> "Door":
    inner = getattr(door, "door", None)
    return inner if inner is not None else door


def install_admission(kernel: "Kernel", seed: int = 0) -> AdmissionController:
    """Create an :class:`AdmissionController` and install it on ``kernel``."""
    controller = AdmissionController(kernel, seed=seed)
    kernel.admission = controller
    return controller


def uninstall_admission(kernel: "Kernel") -> None:
    """Remove the controller; every door reverts to unbounded admission."""
    kernel.admission = None
