"""Fault injection helpers for tests, examples, and benches.

The failure modes the paper's subcontracts are built against:

* a server domain crashes (doors die; replicon prunes, reconnectable
  re-resolves);
* a whole machine crashes;
* the network partitions (calls between two machines fail until healed).

For probabilistic, seeded fault injection (link drop/delay/duplicate/
reorder, transient door failures, crash-mid-call, scheduled crashes) see
:mod:`repro.runtime.chaos`, whose helpers are re-exported here.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.runtime.chaos import (
    FaultPlane,
    InjectedFault,
    LinkChaos,
    install_chaos,
    uninstall_chaos,
)

if TYPE_CHECKING:
    from repro.kernel.domain import Domain
    from repro.net.fabric import NetworkFabric
    from repro.net.machine import Machine

__all__ = [
    "crash_domain",
    "crash_machine",
    "partitioned",
    "region_partitioned",
    # re-exported chaos helpers
    "FaultPlane",
    "LinkChaos",
    "InjectedFault",
    "install_chaos",
    "uninstall_chaos",
]


def crash_domain(domain: "Domain") -> None:
    """Terminate a domain abruptly; every door it serves dies with it."""
    domain.kernel.crash_domain(domain)


def crash_machine(machine: "Machine") -> None:
    """Power off a machine: all of its domains crash."""
    machine.crash()


@contextmanager
def partitioned(
    fabric: "NetworkFabric",
    a: "Machine | str",
    b: "Machine | str",
    oneway: bool = False,
) -> Iterator[None]:
    """Temporarily cut the link between two machines.

    ``oneway=True`` cuts only the ``a -> b`` direction — ``b`` can still
    reach ``a``, the classic asymmetric-link failure (a's datagrams and
    request legs are lost; b's probes of a still land but a's acks
    vanish).  On exit each direction is restored to its *prior* state: a
    partition that already existed when the block was entered (or an
    enclosing ``partitioned`` block for the same pair) stays in force
    instead of being silently healed.
    """
    was_ab = fabric.partitioned(a, b)
    was_ba = fabric.partitioned(b, a)
    if oneway:
        fabric.partition_oneway(a, b)
    else:
        fabric.partition(a, b)
    try:
        yield
    finally:
        if not was_ab:
            fabric.heal_oneway(a, b)
        if not oneway and not was_ba:
            fabric.heal_oneway(b, a)


@contextmanager
def region_partitioned(fabric: "NetworkFabric", region: str) -> Iterator[None]:
    """Temporarily isolate a whole region (see
    :meth:`~repro.net.fabric.NetworkFabric.partition_region`).

    Only the directed links actually *added* on entry are healed on
    exit, so pre-existing cuts (including overlapping region partitions)
    survive the block.
    """
    added = fabric.partition_region(region)
    try:
        yield
    finally:
        for src, dst in added:
            fabric.heal_oneway(src, dst)
