"""SWIM-style gossip membership on the simulated clock.

Replicon, cluster, and the saga coordinator learned membership from
static configuration; production systems learn it from each other.  This
module is the self-organizing half of ROADMAP open item 3: every machine
runs a :class:`MembershipNode` that

* **probes** a round-robin-shuffled peer each protocol round (a direct
  ping, then ``indirect_probes`` relayed ping-reqs when the direct ack
  misses its timeout),
* **suspects before evicting**: a failed probe marks the member
  *suspect* and starts a suspicion timer; only silence through the
  timer evicts.  Every update carries the member's **incarnation
  number**, and a member that hears it is suspected refutes by bumping
  its incarnation — a false alarm (lossy link, one-way partition) heals
  instead of evicting a live node,
* **disseminates piggybacked**: membership updates ride on the protocol
  messages themselves, each retransmitted ``O(gossip_mult · log n)``
  times, so there is no broadcast traffic to keep deterministic.

Everything runs on the kernel's simulated clock: the service owns one
event heap (``(at_us, seq, label, fn)``), :meth:`MembershipService.run_for`
advances the clock (category ``"membership"``) to each due event, and
all randomness (probe targets, relay choice, round jitter) draws from
per-node ``random.Random`` seeds derived from the service seed.  Same
seed, same topology ⇒ the same probes, the same datagrams, the same
event log, bit-for-bit — the membership soak asserts exactly that.

Datagrams travel the ordinary fabric datagram service (port ``"swim"``),
so per-link chaos (drop / duplicate / reorder / delay), region latency
classes, and one-way partitions all apply to gossip exactly as they do
to application traffic.

Consumers subscribe per node (:meth:`MembershipNode.subscribe`) for
``join`` / ``suspect`` / ``alive`` / ``evict`` / ``rejoin`` / ``refute``
transitions, or poll the view (:meth:`MembershipNode.is_live`,
:meth:`MembershipNode.evicted_incarnation`).  ``plant`` wires a node's
view into a domain's replicon / cluster / reconnectable client vectors,
which keep their uninstalled hot path at one attribute read + branch
(class default ``membership = None``).
"""

from __future__ import annotations

import heapq
import itertools
import json
import math
import random
import threading
from typing import TYPE_CHECKING, Callable

from repro.runtime import tsan as _tsan

if TYPE_CHECKING:
    from repro.kernel.domain import Domain
    from repro.kernel.nucleus import Kernel
    from repro.net.fabric import NetworkFabric
    from repro.net.machine import Machine

__all__ = [
    "ALIVE",
    "SUSPECT",
    "DEAD",
    "MemberInfo",
    "MemberTable",
    "MembershipConfig",
    "MembershipNode",
    "MembershipService",
    "install_membership",
]

#: member states (wire encoding: first letter)
ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"

_WIRE_STATE = {ALIVE: "a", SUSPECT: "s", DEAD: "d"}
_STATE_FROM_WIRE = {"a": ALIVE, "s": SUSPECT, "d": DEAD}

#: the fabric datagram port gossip rides on
GOSSIP_PORT = "swim"

#: tracer event names per transition kind — literal dotted names, all
#: under the ``membership`` metrics scope
_EVENT_NAMES = {
    "boot": "membership.boot",
    "join": "membership.join",
    "suspect": "membership.suspect",
    "alive": "membership.alive",
    "refute": "membership.refute",
    "evict": "membership.evict",
    "rejoin": "membership.rejoin",
}


class MembershipConfig:
    """Protocol tuning knobs, all in simulated microseconds.

    The defaults detect a silent member in a handful of seconds of sim
    time while tolerating several percent datagram loss without a false
    eviction (the suspicion window spans ~4 probe rounds, ample time for
    the suspect to hear the rumour and refute).  See docs/membership.md
    for the tuning discussion.
    """

    __slots__ = (
        "probe_interval_us",
        "probe_jitter_us",
        "ack_timeout_us",
        "suspicion_timeout_us",
        "indirect_probes",
        "piggyback_limit",
        "gossip_mult",
    )

    def __init__(
        self,
        probe_interval_us: float = 500_000.0,
        probe_jitter_us: float = 50_000.0,
        ack_timeout_us: float = 150_000.0,
        suspicion_timeout_us: float = 2_000_000.0,
        indirect_probes: int = 2,
        piggyback_limit: int = 6,
        gossip_mult: float = 3.0,
    ) -> None:
        self.probe_interval_us = probe_interval_us
        self.probe_jitter_us = probe_jitter_us
        self.ack_timeout_us = ack_timeout_us
        self.suspicion_timeout_us = suspicion_timeout_us
        self.indirect_probes = indirect_probes
        self.piggyback_limit = piggyback_limit
        self.gossip_mult = gossip_mult


class MemberInfo:
    """One row of a node's member table."""

    __slots__ = ("name", "state", "incarnation", "since_us")

    def __init__(
        self, name: str, state: str, incarnation: int, since_us: float
    ) -> None:
        self.name = name
        self.state = state
        self.incarnation = incarnation
        self.since_us = since_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemberInfo {self.name} {self.state} i={self.incarnation}>"


@_tsan.shared_state
class MemberTable:
    """One node's view of the group: member rows plus the dissemination
    buffer, shared between the protocol pump and every reader consulting
    the view from an invoke path.

    ``members`` maps member name to :class:`MemberInfo`; ``updates``
    maps member name to its freshest rumour ``[wire_state, incarnation,
    remaining_transmissions]``.  All mutation happens under ``lock``.
    """

    __slots__ = ("lock", "members", "updates", "incarnation")

    def __init__(self) -> None:
        self.lock = _tsan.instrument_lock(
            threading.Lock(), f"MemberTable.lock@{id(self):x}"
        )
        self.members: dict[str, MemberInfo] = _tsan.track({}, "membership.members")
        self.updates: dict[str, list] = _tsan.track({}, "membership.updates")
        #: this node's own incarnation number (bumped to refute)
        self.incarnation = 1


class MembershipNode:
    """One machine's SWIM participant."""

    def __init__(
        self, service: "MembershipService", machine: "Machine", seed: int
    ) -> None:
        self.service = service
        self.machine = machine
        self.name = machine.name
        self.rng = random.Random(seed)
        self.table = MemberTable()
        #: callbacks fn(kind, member, incarnation) for every transition
        self.subscribers: list[Callable[[str, str, int], None]] = []
        #: outstanding direct/indirect probes: seq -> target name
        self._probes: dict[int, str] = {}
        #: relayed probes we launched for someone else: seq -> (origin, origin seq)
        self._relays: dict[int, tuple[str, int]] = {}
        self._seq = itertools.count(1)
        #: shuffled probe ring (SWIM's round-robin randomized ordering)
        self._ring: list[str] = []
        self._ring_pos = 0
        #: protocol counters, for tests and reports
        self.counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    # the view (what subcontracts consult)
    # ------------------------------------------------------------------

    def is_live(self, name: str) -> bool:
        """False only for members this node has *evicted*.

        Unknown members get the benefit of the doubt — a view must never
        fail calls to machines it simply has not heard of.
        """
        with self.table.lock:
            info = self.table.members.get(name)
            return info is None or info.state != DEAD

    def evicted_incarnation(self, name: str) -> int | None:
        """The incarnation a member was evicted at, or ``None`` if live."""
        with self.table.lock:
            info = self.table.members.get(name)
            if info is not None and info.state == DEAD:
                return info.incarnation
            return None

    def state_of(self, name: str) -> str | None:
        """The member's current state (``None`` when unknown)."""
        if name == self.name:
            return ALIVE
        with self.table.lock:
            info = self.table.members.get(name)
            return None if info is None else info.state

    def members(self) -> dict[str, tuple[str, int]]:
        """Snapshot: member name -> (state, incarnation)."""
        with self.table.lock:
            return {
                name: (info.state, info.incarnation)
                for name, info in self.table.members.items()
            }

    def alive_members(self) -> list[str]:
        """Members currently believed alive (excludes self)."""
        with self.table.lock:
            return sorted(
                name
                for name, info in self.table.members.items()
                if info.state == ALIVE
            )

    def subscribe(self, fn: Callable[[str, str, int], None]) -> None:
        """Register a transition callback ``fn(kind, member, incarnation)``."""
        with self.table.lock:
            self.subscribers.append(fn)

    # ------------------------------------------------------------------
    # probe rounds
    # ------------------------------------------------------------------

    def _schedule_round(self, first: bool = False, offset_us: float = 0.0) -> None:
        cfg = self.service.config
        delay = offset_us if first else cfg.probe_interval_us
        delay += self.rng.random() * cfg.probe_jitter_us
        self.service.schedule(
            self.service.now() + delay, self._round, f"probe:{self.name}"
        )

    def _round(self) -> None:
        self._schedule_round()
        if self.machine.crashed:
            return
        target = self._next_target()
        if target is not None:
            seq = next(self._seq)
            self._probes[seq] = target
            self._tick("probes")
            self._send(target, {"t": "ping", "o": self.name, "s": seq})
            self.service.schedule(
                self.service.now() + self.service.config.ack_timeout_us,
                lambda: self._direct_timeout(seq, target),
                f"ack-timeout:{self.name}",
            )
        self._rejoin_probe()

    def _rejoin_probe(self) -> None:
        """Once per round, ping one *evicted* member with its dead rumour
        forced onto the message.

        Eviction is terminal under gossip alone (nobody pings the dead),
        so this is the rejoin path after a heal: the pinged member learns
        it was declared dead, refutes by bumping its incarnation, and the
        ack carries the higher-incarnation ``alive`` back — which is the
        one rumour allowed to override an eviction.
        """
        with self.table.lock:
            dead = sorted(
                name
                for name, info in self.table.members.items()
                if info.state == DEAD
            )
        if not dead:
            return
        target = self.rng.choice(dead)
        self._tick("rejoin_probes")
        self._send(target, {"t": "ping", "o": self.name, "s": 0}, force=(target,))

    def _next_target(self) -> str | None:
        """Next probe target: a shuffled ring over the non-dead members."""
        with self.table.lock:
            eligible = {
                name
                for name, info in self.table.members.items()
                if info.state != DEAD
            }
        if not eligible:
            return None
        while True:
            if self._ring_pos >= len(self._ring):
                self._ring = sorted(eligible)
                self.rng.shuffle(self._ring)
                self._ring_pos = 0
            candidate = self._ring[self._ring_pos]
            self._ring_pos += 1
            if candidate in eligible:
                return candidate

    def _direct_timeout(self, seq: int, target: str) -> None:
        if seq not in self._probes or self.machine.crashed:
            return
        cfg = self.service.config
        with self.table.lock:
            helpers = sorted(
                name
                for name, info in self.table.members.items()
                if info.state == ALIVE and name != target
            )
        if helpers and cfg.indirect_probes > 0:
            chosen = self.rng.sample(
                helpers, min(cfg.indirect_probes, len(helpers))
            )
            self._tick("indirect_probes")
            for helper in chosen:
                self._send(
                    helper,
                    {"t": "preq", "o": self.name, "s": seq, "m": target},
                )
            self.service.schedule(
                self.service.now() + cfg.ack_timeout_us,
                lambda: self._indirect_timeout(seq, target),
                f"preq-timeout:{self.name}",
            )
            return
        self._indirect_timeout(seq, target)

    def _indirect_timeout(self, seq: int, target: str) -> None:
        if self._probes.pop(seq, None) is None or self.machine.crashed:
            return
        self._start_suspicion(target)

    # ------------------------------------------------------------------
    # suspicion and eviction
    # ------------------------------------------------------------------

    def _start_suspicion(self, target: str) -> None:
        now = self.service.now()
        with self.table.lock:
            info = self.table.members.get(target)
            if info is None or info.state != ALIVE:
                return
            info.state = SUSPECT
            info.since_us = now
            incarnation = info.incarnation
            self.table.updates[target] = [
                _WIRE_STATE[SUSPECT], incarnation, self._budget()
            ]
        self._transition("suspect", target, incarnation)
        self.service.schedule(
            now + self.service.config.suspicion_timeout_us,
            lambda: self._eviction_due(target, incarnation),
            f"suspicion:{self.name}",
        )

    def _eviction_due(self, target: str, incarnation: int) -> None:
        if self.machine.crashed:
            return
        now = self.service.now()
        with self.table.lock:
            info = self.table.members.get(target)
            due = (
                info is not None
                and info.state == SUSPECT
                and info.incarnation <= incarnation
            )
            if due:
                info.state = DEAD
                info.since_us = now
                evicted_at = info.incarnation
                self.table.updates[target] = [
                    _WIRE_STATE[DEAD], evicted_at, self._budget()
                ]
        if due:
            self._transition("evict", target, evicted_at)

    # ------------------------------------------------------------------
    # wire protocol
    # ------------------------------------------------------------------

    def _on_datagram(self, payload: bytes) -> None:
        if self.machine.crashed:
            return
        msg = json.loads(payload.decode("ascii"))
        self._merge(msg.get("g", ()))
        kind = msg["t"]
        if kind == "ping":
            origin = msg["o"]
            ack = {"t": "ack", "o": self.name, "s": msg["s"]}
            # Forced piggyback both ways: if we believe the pinger suspect
            # or dead, tell it so — that is how a falsely accused (or
            # previously evicted, now healed) member learns it must refute
            # — and always assert our own aliveness, so a pinger that
            # still holds us dead at an older incarnation re-admits us.
            self._send(origin, ack, force=(origin, self.name))
        elif kind == "ack":
            seq = msg["s"]
            if self._probes.pop(seq, None) is not None:
                self._tick("acks")
                return
            relay = self._relays.pop(seq, None)
            if relay is not None:
                origin, origin_seq = relay
                self._send(origin, {"t": "ack", "o": msg["o"], "s": origin_seq})
        elif kind == "preq":
            seq = next(self._seq)
            self._relays[seq] = (msg["o"], msg["s"])
            self._tick("relayed_probes")
            self._send(msg["m"], {"t": "ping", "o": self.name, "s": seq})
        elif kind == "join":
            origin = msg["o"]
            self._merge(((origin, "a", msg["i"]),))
            with self.table.lock:
                entries = [
                    [name, _WIRE_STATE[info.state], info.incarnation]
                    for name, info in sorted(self.table.members.items())
                    if name != origin
                ]
                entries.append([self.name, "a", self.table.incarnation])
            self._send(origin, {"t": "sync", "o": self.name, "g2": entries})
        elif kind == "sync":
            self._merge(msg.get("g2", ()))

    def _send(
        self, member: str, msg: dict, force: tuple[str, ...] = ()
    ) -> None:
        peer = self.service.nodes.get(member)
        if peer is None:
            return
        with self.table.lock:
            msg["g"] = self._piggyback(force)
        payload = json.dumps(
            msg, separators=(",", ":"), sort_keys=True
        ).encode("ascii")
        self.service.fabric.send_datagram(
            self.machine, peer.machine, GOSSIP_PORT, payload
        )

    def _piggyback(self, force: tuple[str, ...] = ()) -> list[list]:
        """Pick the freshest rumours to ride this message.

        Called with ``table.lock`` held.  Highest remaining-transmission
        budget first (name breaks ties); each inclusion burns one
        transmission and an exhausted rumour leaves the buffer.
        """
        updates = self.table.updates
        chosen = sorted(updates.items(), key=lambda kv: (-kv[1][2], kv[0]))
        out = []
        limit = self.service.config.piggyback_limit
        for name, entry in chosen[:limit]:
            out.append([name, entry[0], entry[1]])
            entry[2] -= 1
            if entry[2] <= 0:
                del updates[name]
        for name in force:
            if any(item[0] == name for item in out):
                continue
            if name == self.name:
                # Own state never sits in ``members``; an ack asserts
                # aliveness explicitly so a healed member whose refutation
                # rumour has long expired still re-announces itself.
                out.append([name, "a", self.table.incarnation])
                continue
            info = self.table.members.get(name)
            if info is not None:
                out.append([name, _WIRE_STATE[info.state], info.incarnation])
        return out

    def _budget(self) -> int:
        """Retransmissions per rumour: ``ceil(gossip_mult · log2(n + 1))``."""
        n = len(self.table.members) + 1
        return max(1, math.ceil(self.service.config.gossip_mult * math.log2(n + 1)))

    # ------------------------------------------------------------------
    # update merging (SWIM's precedence rules)
    # ------------------------------------------------------------------

    def _merge(self, updates) -> None:
        now = self.service.now()
        notify: list[tuple[str, str, int]] = []
        suspicions: list[tuple[str, int]] = []
        with self.table.lock:
            for item in updates:
                name, wire_state, incarnation = item[0], item[1], item[2]
                state = _STATE_FROM_WIRE[wire_state]
                if name == self.name:
                    # A rumour about *us*: refute suspicion or eviction by
                    # outliving the accused incarnation.
                    if state != ALIVE and incarnation >= self.table.incarnation:
                        self.table.incarnation = incarnation + 1
                        self.table.updates[name] = [
                            "a", self.table.incarnation, self._budget()
                        ]
                        notify.append(("refute", name, self.table.incarnation))
                    continue
                info = self.table.members.get(name)
                if info is None:
                    self.table.members[name] = MemberInfo(
                        name, state, incarnation, now
                    )
                    self.table.updates[name] = [
                        wire_state, incarnation, self._budget()
                    ]
                    if state != DEAD:
                        notify.append(("join", name, incarnation))
                        if state == SUSPECT:
                            suspicions.append((name, incarnation))
                    continue
                if not _overrides(state, incarnation, info.state, info.incarnation):
                    continue
                previous = info.state
                info.state = state
                info.incarnation = incarnation
                info.since_us = now
                self.table.updates[name] = [
                    wire_state, incarnation, self._budget()
                ]
                if state == DEAD and previous != DEAD:
                    notify.append(("evict", name, incarnation))
                elif state == ALIVE and previous == DEAD:
                    notify.append(("rejoin", name, incarnation))
                elif state == ALIVE and previous == SUSPECT:
                    notify.append(("alive", name, incarnation))
                elif state == SUSPECT and previous == ALIVE:
                    notify.append(("suspect", name, incarnation))
                    suspicions.append((name, incarnation))
        for kind, member, incarnation in notify:
            self._transition(kind, member, incarnation)
        cfg = self.service.config
        for member, incarnation in suspicions:
            self.service.schedule(
                now + cfg.suspicion_timeout_us,
                lambda m=member, i=incarnation: self._eviction_due(m, i),
                f"suspicion:{self.name}",
            )

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def _transition(self, kind: str, member: str, incarnation: int) -> None:
        self._tick(kind)
        self.service.note(self.name, kind, member, incarnation)
        with self.table.lock:
            subscribers = list(self.subscribers)
        for fn in subscribers:
            fn(kind, member, incarnation)

    def _tick(self, kind: str) -> None:
        self.counters[kind] = self.counters.get(kind, 0) + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MembershipNode {self.name} members={len(self.table.members)}>"


def _overrides(state: str, inc: int, old_state: str, old_inc: int) -> bool:
    """SWIM's update-precedence partial order."""
    if state == ALIVE:
        return inc > old_inc
    if state == SUSPECT:
        if old_state == ALIVE:
            return inc >= old_inc
        if old_state == SUSPECT:
            return inc > old_inc
        return False  # suspicion never overrides an eviction
    # DEAD overrides everything at the same or newer incarnation, except
    # an existing eviction (dead is terminal until a higher-incarnation
    # alive rejoins).
    return old_state != DEAD and inc >= old_inc


class MembershipService:
    """The per-world gossip service: nodes, the event heap, the log."""

    def __init__(
        self,
        kernel: "Kernel",
        fabric: "NetworkFabric",
        seed: int = 0,
        config: MembershipConfig | None = None,
        **knobs,
    ) -> None:
        self.kernel = kernel
        self.fabric = fabric
        self.seed = seed
        self.config = config if config is not None else MembershipConfig(**knobs)
        self.nodes: dict[str, MembershipNode] = {}
        #: the global protocol timeline: (at_us, seq, label, fn)
        self._heap: list[tuple[float, int, str, Callable[[], None]]] = []
        self._seq = itertools.count()
        #: the ordered transition log: (at_us, node, kind, member, value)
        self.events: list[tuple[float, str, str, str, int]] = []
        self._node_index = itertools.count()

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    def bootstrap(self, machines) -> list[MembershipNode]:
        """Start nodes that boot already knowing each other (the static
        config handed to a fresh deployment); no join traffic."""
        nodes = [self._make_node(machine) for machine in machines]
        start = self.now()
        for node in nodes:
            with node.table.lock:
                for peer in nodes:
                    if peer is not node:
                        node.table.members[peer.name] = MemberInfo(
                            peer.name, ALIVE, 1, start
                        )
            self.log(node.name, "boot", node.name, 1)
        for index, node in enumerate(nodes):
            node._schedule_round(
                first=True,
                offset_us=self.config.probe_interval_us
                * (index + 1)
                / (len(nodes) + 1),
            )
        return nodes

    def add_node(self, machine: "Machine", via: str | None = None) -> MembershipNode:
        """Start a node that must *join*: it knows only ``via`` and
        learns the rest through the sync reply and gossip."""
        node = self._make_node(machine)
        self.log(node.name, "boot", node.name, 1)
        if via is not None:
            node._send(via, {"t": "join", "o": node.name, "i": 1})
        node._schedule_round(first=True, offset_us=0.0)
        return node

    def _make_node(self, machine: "Machine") -> MembershipNode:
        if machine.name in self.nodes:
            raise ValueError(f"machine {machine.name!r} already runs a node")
        index = next(self._node_index)
        node = MembershipNode(
            self, machine, seed=(self.seed * 1_000_003 + 7919 * index) & 0x7FFFFFFF
        )
        self.nodes[machine.name] = node
        self.fabric.register_port(machine, GOSSIP_PORT, node._on_datagram)
        return node

    def node(self, name: str) -> MembershipNode:
        """The node running on the named machine."""
        return self.nodes[name]

    def plant(self, domain: "Domain", node: "MembershipNode | str | None" = None):
        """Wire a node's view into a domain.

        Sets ``domain.locals["membership"]`` and the ``membership``
        attribute on the domain's replicon / cluster / reconnectable
        client vectors (class default ``None`` keeps the uninstalled hot
        path at one attribute read + branch).  ``node`` defaults to the
        node on the domain's own machine; client domains on non-member
        machines pass the member node they trust (typically the nearest
        in-region one).
        """
        if node is None:
            machine = domain.machine
            node = self.nodes.get(machine.name) if machine is not None else None
            if node is None:
                raise ValueError(
                    f"domain {domain.name!r} is not on a member machine; "
                    f"pass the node whose view it should adopt"
                )
        elif isinstance(node, str):
            node = self.nodes[node]
        domain.locals["membership"] = node
        from repro.core.registry import ensure_registry

        registry = ensure_registry(domain)
        for subcontract_id in ("replicon", "cluster", "reconnectable"):
            vector = registry._subcontracts.get(subcontract_id)
            if vector is not None:
                vector.membership = node
        return node

    # ------------------------------------------------------------------
    # the protocol timeline (simulated time)
    # ------------------------------------------------------------------

    def now(self) -> float:
        return self.kernel.clock.now_us

    def schedule(self, at_us: float, fn: Callable[[], None], label: str) -> None:
        heapq.heappush(self._heap, (at_us, next(self._seq), label, fn))

    def run_until(self, at_us: float) -> int:
        """Advance the world to ``at_us``, firing every due protocol
        event in ``(time, insertion)`` order; returns the count fired.

        Time spent waiting between events is charged to the clock's
        ``"membership"`` category; datagram wire time lands in
        ``"network"`` as usual.
        """
        clock = self.kernel.clock
        fired = 0
        heap = self._heap
        while heap and heap[0][0] <= at_us:
            due = heap[0][0]
            now = clock.now_us
            if due > now:
                clock.advance(due - now, "membership")
            _, _, _, fn = heapq.heappop(heap)
            fn()
            fired += 1
        now = clock.now_us
        if at_us > now:
            clock.advance(at_us - now, "membership")
        return fired

    def run_for(self, duration_us: float) -> int:
        """Advance the world by a duration (see :meth:`run_until`)."""
        return self.run_until(self.now() + duration_us)

    # ------------------------------------------------------------------
    # the event log (replay evidence)
    # ------------------------------------------------------------------

    def note(self, node: str, kind: str, member: str, incarnation: int) -> None:
        """Record a membership transition: log + tracer event."""
        self.events.append(
            (self.kernel.clock.now_us, node, kind, member, incarnation)
        )
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.event(  # springlint: disable=metrics-naming -- generic relay: the literal names live in _EVENT_NAMES
                _EVENT_NAMES[kind],
                subcontract="membership",
                node=node,
                member=member,
                incarnation=incarnation,
            )

    def log(self, node: str, kind: str, member: str, value: int) -> None:
        """Append a raw entry (no tracer event) — election, boot, tests."""
        self.events.append((self.kernel.clock.now_us, node, kind, member, value))

    def event_log_bytes(self) -> bytes:
        """The full event log as canonical JSON lines (replay evidence)."""
        lines = [
            json.dumps(list(entry), separators=(",", ":")) for entry in self.events
        ]
        return ("\n".join(lines) + "\n").encode("ascii")

    def transitions(self, kind: str | None = None):
        """Log entries, optionally filtered by kind."""
        if kind is None:
            return list(self.events)
        return [entry for entry in self.events if entry[2] == kind]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MembershipService nodes={len(self.nodes)} "
            f"events={len(self.events)} pending={len(self._heap)}>"
        )


def install_membership(
    kernel: "Kernel",
    fabric: "NetworkFabric",
    machines,
    seed: int = 0,
    **knobs,
) -> MembershipService:
    """Create a service and bootstrap a node per machine."""
    service = MembershipService(kernel, fabric, seed=seed, **knobs)
    service.bootstrap(machines)
    return service
