"""Lease-based leader election over gossip membership.

The saga coordinator (and the future shard-map owner) needs a single
writer; this module elects one and keeps it elected only while a
majority keeps agreeing.  The guarantees, and how they are enforced:

* **at most one leader per term** — terms are monotonic; a voter grants
  at most one vote per term; winning takes a majority of the *fixed
  electorate* (not of whoever is reachable), so the minority side of a
  partition can never elect;
* **no split-brain across a partition** — a leader that cannot renew
  against a majority within one lease steps down, and the majority side
  only elects a *new* term after the old leader's lease (as witnessed
  by its own grant) has expired or gossip has evicted it;
* **fast failover** — followers do not wait for the full lease when
  membership evicts the leader: the eviction triggers candidacy after a
  short seeded backoff.

Like membership, everything runs on the sim clock through the
membership service's event heap, and all messages travel fabric
datagrams (port ``"lease"``), so chaos, regions, and one-way partitions
apply.  Same seed ⇒ the same campaigns, the same grants, the same
winners, bit-for-bit.

:class:`ElectedCoordinator` binds a saga coordinator to the election:
each time its member wins a term it stands up a replacement
:class:`~repro.runtime.saga.SagaCoordinator` and runs journal-only
``recover`` — the "replacement coordinator" of PR 9, now self-appointing.
"""

from __future__ import annotations

import json
import random
import threading
from typing import TYPE_CHECKING, Callable

from repro.runtime import tsan as _tsan

if TYPE_CHECKING:
    from repro.kernel.domain import Domain
    from repro.runtime.membership import MembershipService

__all__ = ["ElectionConfig", "ElectionService", "ElectedCoordinator"]

#: the fabric datagram port lease traffic rides on
LEASE_PORT = "lease"

#: roles
FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"


class ElectionConfig:
    """Election tuning knobs, all in simulated microseconds."""

    __slots__ = (
        "lease_us",
        "renew_interval_us",
        "check_interval_us",
        "vote_timeout_us",
        "backoff_base_us",
    )

    def __init__(
        self,
        lease_us: float = 1_500_000.0,
        renew_interval_us: float = 400_000.0,
        check_interval_us: float = 300_000.0,
        vote_timeout_us: float = 400_000.0,
        backoff_base_us: float = 60_000.0,
    ) -> None:
        self.lease_us = lease_us
        self.renew_interval_us = renew_interval_us
        self.check_interval_us = check_interval_us
        self.vote_timeout_us = vote_timeout_us
        self.backoff_base_us = backoff_base_us


@_tsan.shared_state
class ElectionState:
    """One member's election state, shared between the protocol pump and
    readers asking ``is_leader`` / ``leader`` from application threads.
    All mutation happens under ``lock``.
    """

    __slots__ = (
        "lock",
        "role",
        "term",
        "voted_term",
        "voted_for",
        "leader",
        "leader_term",
        "lease_expiry_us",
        "votes",
        "renew_acks",
        "campaign_scheduled",
        "last_majority_us",
    )

    def __init__(self) -> None:
        self.lock = _tsan.instrument_lock(
            threading.Lock(), f"ElectionState.lock@{id(self):x}"
        )
        self.role = FOLLOWER
        self.term = 0
        self.voted_term = 0
        self.voted_for: str | None = None
        self.leader: str | None = None
        self.leader_term = 0
        self.lease_expiry_us = 0.0
        self.votes: set[str] = _tsan.track(set(), "election.votes")
        self.renew_acks: set[str] = _tsan.track(set(), "election.renew_acks")
        self.campaign_scheduled = False
        self.last_majority_us = 0.0


class _ElectionNode:
    """One electorate member's protocol participant."""

    def __init__(
        self, service: "ElectionService", name: str, seed: int
    ) -> None:
        self.service = service
        self.name = name
        self.machine = service.membership.nodes[name].machine
        self.rng = random.Random(seed)
        self.state = ElectionState()

    # -- the view ------------------------------------------------------

    def is_leader(self) -> bool:
        with self.state.lock:
            return self.state.role == LEADER

    def leader(self) -> tuple[str | None, int]:
        """The leader this member currently follows, and its term."""
        now = self.service.now()
        with self.state.lock:
            if self.state.leader is not None and (
                self.state.leader == self.name or now < self.state.lease_expiry_us
            ):
                return self.state.leader, self.state.leader_term
            return None, self.state.leader_term

    # -- the periodic check --------------------------------------------

    def _check(self) -> None:
        self.service.schedule(
            self.service.now() + self.service.config.check_interval_us,
            self._check,
            f"election-check:{self.name}",
        )
        if self.machine.crashed:
            return
        campaign_at: float | None = None
        with self.state.lock:
            if self.state.role == LEADER:
                return  # renewal loop owns leader liveness
            if self._leader_valid_locked():
                return
            if not self.state.campaign_scheduled:
                self.state.campaign_scheduled = True
                base = self.service.config.backoff_base_us
                campaign_at = (
                    self.service.now() + base + self.rng.random() * base
                )
        if campaign_at is not None:
            self.service.schedule(
                campaign_at, self._campaign, f"campaign:{self.name}"
            )

    def _leader_valid_locked(self) -> bool:
        """Called with ``state.lock`` held."""
        leader = self.state.leader
        if leader is None or leader == self.name:
            return False
        if self.service.now() >= self.state.lease_expiry_us:
            return False
        return self.service.membership.nodes[self.name].is_live(leader)

    # -- candidacy ------------------------------------------------------

    def _campaign(self) -> None:
        if self.machine.crashed:
            with self.state.lock:
                self.state.campaign_scheduled = False
            return
        if not self._quorum_visible():
            # Minority-side guard (pre-vote in spirit): with fewer than a
            # majority of the electorate visible in the membership view,
            # a campaign cannot win — skip it entirely so the stranded
            # side does not spin terms upward and dethrone the healthy
            # leader with a higher-term NACK on heal.
            with self.state.lock:
                self.state.campaign_scheduled = False
            return
        with self.state.lock:
            self.state.campaign_scheduled = False
            if self.state.role == LEADER or self._leader_valid_locked():
                return
            term = max(self.state.term, self.state.voted_term) + 1
            self.state.term = term
            self.state.voted_term = term
            self.state.voted_for = self.name
            self.state.role = CANDIDATE
            self.state.votes.clear()
            self.state.votes.add(self.name)
        self.service.log_entry(self.name, "election.campaign", self.name, term)
        self.service._event(
            "election.campaign", node=self.name, term=term
        )
        if self._won(term):  # single-member electorate wins instantly
            return
        for peer in self.service.electorate:
            if peer != self.name:
                self._send(peer, {"t": "vote_req", "c": self.name, "n": term})
        self.service.schedule(
            self.service.now() + self.service.config.vote_timeout_us,
            lambda: self._campaign_timeout(term),
            f"campaign-timeout:{self.name}",
        )

    def _on_membership_event(self, kind: str, member: str, incarnation: int) -> None:
        """Fast failover: gossip evicting our leader triggers candidacy
        after one short seeded backoff instead of waiting for the next
        periodic check to notice the lease lapsed."""
        if kind != "evict" or self.machine.crashed:
            return
        campaign_at: float | None = None
        with self.state.lock:
            if (
                self.state.leader == member
                and self.state.role == FOLLOWER
                and not self.state.campaign_scheduled
            ):
                self.state.campaign_scheduled = True
                base = self.service.config.backoff_base_us
                campaign_at = self.service.now() + base + self.rng.random() * base
        if campaign_at is not None:
            self.service.schedule(
                campaign_at, self._campaign, f"campaign:{self.name}"
            )

    def _quorum_visible(self) -> bool:
        """Whether this member's own gossip view still shows a majority
        of the electorate as live (self counts)."""
        view = self.service.membership.nodes[self.name]
        live = sum(
            1
            for peer in self.service.electorate
            if peer == self.name or view.is_live(peer)
        )
        return live >= self.service.majority

    def _campaign_timeout(self, term: int) -> None:
        with self.state.lock:
            if self.state.role == CANDIDATE and self.state.term == term:
                self.state.role = FOLLOWER

    def _won(self, term: int) -> bool:
        """Check the vote count; on majority, take office.  Returns True
        when this member is (already) the leader for ``term``."""
        now = self.service.now()
        with self.state.lock:
            if self.state.term != term:
                return False
            if self.state.role == LEADER:
                return True
            if self.state.role != CANDIDATE:
                return False
            if len(self.state.votes) < self.service.majority:
                return False
            self.state.role = LEADER
            self.state.leader = self.name
            self.state.leader_term = term
            self.state.lease_expiry_us = now + self.service.config.lease_us
            self.state.last_majority_us = now
        self.service._record_win(self.name, term)
        for peer in self.service.electorate:
            if peer != self.name:
                self._send(
                    peer,
                    {
                        "t": "leader",
                        "l": self.name,
                        "n": term,
                        "e": self.service.config.lease_us,
                    },
                )
        self.service.schedule(
            now + self.service.config.renew_interval_us,
            self._renew,
            f"renew:{self.name}",
        )
        for fn in self.service._win_callbacks.get(self.name, ()):
            fn(term)
        return True

    # -- lease renewal --------------------------------------------------

    def _renew(self) -> None:
        now = self.service.now()
        with self.state.lock:
            if self.state.role != LEADER or self.machine.crashed:
                return
            term = self.state.term
            self.state.renew_acks.clear()
            self.state.renew_acks.add(self.name)
        for peer in self.service.electorate:
            if peer != self.name:
                self._send(peer, {"t": "renew", "l": self.name, "n": term})
        stepdown = False
        with self.state.lock:
            if self.state.role != LEADER or self.state.term != term:
                return
            if len(self.state.renew_acks) >= self.service.majority:
                self.state.last_majority_us = now
                self.state.lease_expiry_us = now + self.service.config.lease_us
            elif now - self.state.last_majority_us >= self.service.config.lease_us:
                self.state.role = FOLLOWER
                self.state.leader = None
                stepdown = True
        if stepdown:
            self.service.log_entry(self.name, "election.stepdown", self.name, term)
            self.service._event("election.stepdown", node=self.name, term=term)
            return
        self.service.schedule(
            now + self.service.config.renew_interval_us,
            self._renew,
            f"renew:{self.name}",
        )

    # -- wire protocol --------------------------------------------------

    def _on_datagram(self, payload: bytes) -> None:
        if self.machine.crashed:
            return
        msg = json.loads(payload.decode("ascii"))
        kind = msg["t"]
        if kind == "vote_req":
            self._on_vote_req(msg["c"], msg["n"])
        elif kind == "vote":
            self._on_vote(msg["v"], msg["n"])
        elif kind == "leader":
            self._adopt(msg["l"], msg["n"], msg["e"])
        elif kind == "renew":
            self._on_renew(msg["l"], msg["n"])
        elif kind == "renew_ack":
            self._on_renew_ack(msg["f"], msg["n"])
        elif kind == "nack":
            self._on_nack(msg["n"])

    def _on_vote_req(self, candidate: str, term: int) -> None:
        grant = False
        with self.state.lock:
            if term > self.state.voted_term and not (
                self._leader_valid_locked() and self.state.leader != candidate
            ):
                self.state.voted_term = term
                self.state.voted_for = candidate
                if term > self.state.term:
                    self.state.term = term
                    if self.state.role != FOLLOWER:
                        self.state.role = FOLLOWER
                grant = True
        if grant:
            self.service.log_entry(self.name, "election.vote", candidate, term)
            self._send(candidate, {"t": "vote", "v": self.name, "n": term})

    def _on_vote(self, voter: str, term: int) -> None:
        with self.state.lock:
            if self.state.role != CANDIDATE or self.state.term != term:
                return
            self.state.votes.add(voter)
        self._won(term)

    def _adopt(self, leader: str, term: int, lease_us: float) -> None:
        now = self.service.now()
        demoted = False
        with self.state.lock:
            if term < self.state.term:
                return
            demoted = self.state.role == LEADER and leader != self.name
            self.state.term = term
            self.state.leader = leader
            self.state.leader_term = term
            self.state.lease_expiry_us = now + lease_us
            if leader != self.name:
                self.state.role = FOLLOWER
        if demoted:
            self.service.log_entry(self.name, "election.stepdown", self.name, term)
            self.service._event("election.stepdown", node=self.name, term=term)

    def _on_renew(self, leader: str, term: int) -> None:
        now = self.service.now()
        stale = False
        with self.state.lock:
            if term < self.state.term:
                stale = True
                current = self.state.term
            else:
                demote = self.state.role == LEADER and leader != self.name
                self.state.term = term
                self.state.leader = leader
                self.state.leader_term = term
                self.state.lease_expiry_us = (
                    now + self.service.config.lease_us
                )
                if demote:
                    self.state.role = FOLLOWER
        if stale:
            self._send(leader, {"t": "nack", "n": current})
            return
        self._send(leader, {"t": "renew_ack", "f": self.name, "n": term})

    def _on_renew_ack(self, follower: str, term: int) -> None:
        with self.state.lock:
            if self.state.role == LEADER and self.state.term == term:
                self.state.renew_acks.add(follower)

    def _on_nack(self, newer_term: int) -> None:
        """A peer has seen a newer term than ours: stop leading."""
        stepdown = False
        with self.state.lock:
            if newer_term > self.state.term:
                old_term = self.state.term
                self.state.term = newer_term
                if self.state.role == LEADER:
                    self.state.role = FOLLOWER
                    self.state.leader = None
                    stepdown = True
        if stepdown:
            self.service.log_entry(
                self.name, "election.stepdown", self.name, old_term
            )
            self.service._event("election.stepdown", node=self.name, term=old_term)

    def _send(self, member: str, msg: dict) -> None:
        peer = self.service._nodes.get(member)
        if peer is None:
            return
        payload = json.dumps(
            msg, separators=(",", ":"), sort_keys=True
        ).encode("ascii")
        self.service.membership.fabric.send_datagram(
            self.machine, peer.machine, LEASE_PORT, payload
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_ElectionNode {self.name} role={self.state.role}>"


class ElectionService:
    """Lease-based leader election over a fixed electorate.

    Piggybacks on the membership service's event heap and seed; the
    electorate defaults to the membership nodes present at install time
    and stays *fixed* — majority is always counted against it, which is
    what makes minority-side election impossible.
    """

    def __init__(
        self,
        membership: "MembershipService",
        electorate: list[str] | None = None,
        config: ElectionConfig | None = None,
        **knobs,
    ) -> None:
        self.membership = membership
        self.config = config if config is not None else ElectionConfig(**knobs)
        self.electorate = (
            sorted(membership.nodes) if electorate is None else sorted(electorate)
        )
        if not self.electorate:
            raise ValueError("the electorate is empty")
        self.majority = len(self.electorate) // 2 + 1
        self._nodes: dict[str, _ElectionNode] = {}
        #: term -> set of winners; the at-most-one-leader-per-term audit
        self.winners: dict[int, set[str]] = {}
        self._win_callbacks: dict[str, list[Callable[[int], None]]] = {}
        for index, name in enumerate(self.electorate):
            node = _ElectionNode(
                self,
                name,
                seed=(membership.seed * 999_983 + 104_729 * index) & 0x7FFFFFFF,
            )
            self._nodes[name] = node
            membership.fabric.register_port(
                node.machine, LEASE_PORT, node._on_datagram
            )
            membership.nodes[name].subscribe(node._on_membership_event)
        for index, name in enumerate(self.electorate):
            self.schedule(
                self.now()
                + self.config.check_interval_us * (index + 1) / (len(self.electorate) + 1),
                self._nodes[name]._check,
                f"election-check:{name}",
            )

    # -- plumbing shared with membership --------------------------------

    def now(self) -> float:
        return self.membership.now()

    def schedule(self, at_us: float, fn: Callable[[], None], label: str) -> None:
        self.membership.schedule(at_us, fn, label)

    def log_entry(self, node: str, kind: str, member: str, term: int) -> None:
        self.membership.log(node, kind, member, term)

    def _event(self, name: str, **detail) -> None:
        tracer = self.membership.kernel.tracer
        if tracer.enabled:
            tracer.event(name, subcontract="election", **detail)  # springlint: disable=metrics-naming -- generic relay: literal names live at the call sites

    # -- the public view -------------------------------------------------

    def member(self, name: str) -> _ElectionNode:
        return self._nodes[name]

    def leader_of(self, name: str) -> tuple[str | None, int]:
        """Who the named member currently follows, and the term."""
        return self._nodes[name].leader()

    def current_leaders(self) -> list[tuple[str, int]]:
        """Members currently holding office (name, term)."""
        out = []
        for name, node in sorted(self._nodes.items()):
            with node.state.lock:
                if node.state.role == LEADER:
                    out.append((name, node.state.term))
        return out

    def on_win(self, member: str, fn: Callable[[int], None]) -> None:
        """Call ``fn(term)`` whenever ``member`` wins a term."""
        if member not in self._nodes:
            raise ValueError(f"{member!r} is not in the electorate")
        self._win_callbacks.setdefault(member, []).append(fn)

    def _record_win(self, member: str, term: int) -> None:
        self.winners.setdefault(term, set()).add(member)
        self.log_entry(member, "election.won", member, term)
        self._event("election.won", node=member, term=term)

    def assert_single_leader_per_term(self) -> None:
        """The soak's core invariant: no term ever had two winners."""
        for term, names in sorted(self.winners.items()):
            if len(names) > 1:
                raise AssertionError(
                    f"split-brain: term {term} won by {sorted(names)}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ElectionService electorate={self.electorate} "
            f"majority={self.majority} terms={len(self.winners)}>"
        )


class ElectedCoordinator:
    """A saga coordinator slot bound to an election.

    Every time ``member`` wins a term, a fresh
    :class:`~repro.runtime.saga.SagaCoordinator` is stood up in
    ``domain`` against the shared journal ``store`` and immediately runs
    journal-only :meth:`~repro.runtime.saga.SagaCoordinator.recover`
    with the registered compensators — a failed-over workflow owner
    finishes (or compensates) whatever its predecessor left half-done
    before taking new work.
    """

    def __init__(
        self,
        election: ElectionService,
        member: str,
        domain: "Domain",
        name: str,
        compensators: dict | None = None,
        store=None,
        policy=None,
    ) -> None:
        self.election = election
        self.member = member
        self.domain = domain
        self.name = name
        self.compensators = dict(compensators) if compensators else {}
        self.store = store
        self.policy = policy
        self.coordinator = None
        self.term: int | None = None
        #: how many times this slot recovered after winning
        self.recoveries = 0
        election.on_win(member, self._on_win)

    def _on_win(self, term: int) -> None:
        from repro.runtime.saga import SagaCoordinator

        kwargs = {"name": self.name}
        if self.store is not None:
            kwargs["store"] = self.store
        if self.policy is not None:
            kwargs["policy"] = self.policy
        coordinator = SagaCoordinator(self.domain, **kwargs)
        if self.store is None:
            self.store = coordinator.store
        self.coordinator = coordinator
        self.term = term
        coordinator.recover(dict(self.compensators))
        self.recoveries += 1
        self.election.log_entry(
            self.member, "election.recovered", self.name, term
        )
        self.election._event(
            "election.recovered", node=self.member, saga=self.name, term=term
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ElectedCoordinator {self.name!r} member={self.member} "
            f"term={self.term} recoveries={self.recoveries}>"
        )
