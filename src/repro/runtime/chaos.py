"""The deterministic fault plane: seeded chaos for the invocation path.

The paper's argument is that subcontracts let replication, caching, and
crash recovery be layered in without changing the base system — which
means the *recovery paths* are the product.  This module turns them into
tested, measurable behaviour: a :class:`FaultPlane` installed on the
kernel (``Environment.install_chaos``) injects faults at well-defined
interception points, all driven by one ``random.Random(seed)`` and the
simulated clock, so every run is bit-for-bit replayable — same seed,
same workload, same faults, same trace.

Fault vocabulary
----------------

* **link faults** (per machine pair, or a default for every link):
  ``drop`` / ``duplicate`` / ``reorder`` probabilities for datagrams,
  ``drop`` for fabric carries (request or reply leg — a dropped reply is
  recycled and reported lost, like a partition forming mid-call),
  a deterministic extra ``delay_us``, and ``latency_scale`` / ``jitter``
  multipliers applied to wire time;
* **door faults**: ``door_fault_rate`` raises a transient
  :class:`InjectedFault` (a ``CommunicationError``) before the call
  launches — the signal replicon prunes on and reconnectable retries on;
* **crash-mid-call**: ``crash_mid_call_rate`` (or the one-shot
  :meth:`FaultPlane.crash_mid_call_next`) crashes the server domain
  after it has consumed the request but before it replies, surfacing
  client-side as :class:`~repro.kernel.errors.ServerDiedError`;
* **scheduled actions**: :meth:`schedule`, :meth:`schedule_crash_domain`,
  and :meth:`schedule_crash_machine` fire at an absolute simulated time,
  pumped from the interception points — crash-and-restart scripts are
  plain callables.

Determinism contract
--------------------

One rng, consumed only at interception points, in workload order.  A
fault kind whose probability is 0 draws nothing, so enabling one knob
never perturbs the draw sequence of another.  Scheduled actions fire in
``(at_us, insertion order)`` order.  Single-threaded workloads therefore
replay exactly; the chaos soak asserts identical span sequences per seed.

When no plane is installed (``kernel.chaos is None``) the hot path pays
one attribute read and one branch per interception point, and not one
simulated nanosecond: uninstalled sim totals are bit-for-bit identical
to the pre-chaos tree (gated by ``benchmarks/bench_p4_chaos_overhead``).

Every injected fault ticks :attr:`FaultPlane.injected` and, when a
tracer is live, annotates the current span with a ``chaos.*`` event
(metrics scope ``"chaos"``), so a chaos run is debuggable from a Chrome
trace.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import TYPE_CHECKING, Callable

from repro.kernel.errors import CommunicationError, ServerDiedError

if TYPE_CHECKING:
    from repro.kernel.domain import Domain
    from repro.kernel.doors import Door
    from repro.kernel.nucleus import Kernel
    from repro.net.fabric import NetworkFabric
    from repro.net.machine import Machine

__all__ = [
    "FaultPlane",
    "LinkChaos",
    "InjectedFault",
    "OpenLoopBurst",
    "install_chaos",
]


class OpenLoopBurst:
    """A seeded open-loop arrival process aimed at one governed door.

    Overload needs callers that do *not* slow down when the server does —
    an open loop.  A burst draws exponential interarrival times and
    per-call service demands from its own ``random.Random(seed)`` and
    feeds them to the :class:`~repro.runtime.admission.AdmissionController`
    as *phantom* arrivals: they occupy the door's virtual concurrency
    slots and queue positions (so real, measured calls experience genuine
    queueing and shedding) but never advance the clock or touch a real
    buffer.  Same seed, same clock, same workload ⇒ the same arrivals and
    the same sheds, bit-for-bit — overload runs replay from their seed.

    ``interarrival_us`` is the mean gap between arrivals; a door with
    concurrency limit *L* and mean service *S* saturates at ``L / S``
    calls/us, so ``interarrival_us = S / (L * m)`` offers *m*× capacity.
    """

    __slots__ = (
        "door",
        "interarrival_us",
        "service_us",
        "jitter",
        "seed",
        "calls",
        "generated",
        "rng",
        "_next_at",
    )

    def __init__(
        self,
        door: "Door",
        interarrival_us: float,
        service_us: float,
        seed: int = 0,
        jitter: float = 0.0,
        start_us: float = 0.0,
        calls: int | None = None,
    ) -> None:
        if interarrival_us <= 0 or service_us <= 0:
            raise ValueError("interarrival_us and service_us must be > 0")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        inner = getattr(door, "door", None)  # accept a DoorIdentifier too
        self.door = inner if inner is not None else door
        self.interarrival_us = interarrival_us
        self.service_us = service_us
        self.jitter = jitter
        self.seed = seed
        self.calls = calls
        self.generated = 0
        self.rng = random.Random(seed)
        self._next_at: float | None = (
            start_us + self.rng.expovariate(1.0 / interarrival_us)
        )

    @property
    def next_at_us(self) -> float | None:
        """When the next phantom arrives (sim-us); ``None`` once exhausted."""
        return self._next_at

    def take(self) -> tuple[float, float]:
        """Consume the next arrival: ``(arrival_us, service_demand_us)``."""
        at = self._next_at
        if at is None:
            raise RuntimeError("burst exhausted")
        service = self.service_us
        if self.jitter:
            service *= 1.0 + self.jitter * (2.0 * self.rng.random() - 1.0)
        self.generated += 1
        if self.calls is not None and self.generated >= self.calls:
            self._next_at = None
        else:
            self._next_at = at + self.rng.expovariate(1.0 / self.interarrival_us)
        return at, service

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<OpenLoopBurst door#{self.door.uid} mean={self.interarrival_us}us"
            f" service={self.service_us}us seed={self.seed}"
            f" generated={self.generated}>"
        )


class InjectedFault(CommunicationError):
    """A fault injected by the :class:`FaultPlane`.

    Subcontracts see an ordinary communication failure — chaos is
    indistinguishable from the real thing at the recovery layer, which
    is the point.
    """


class LinkChaos:
    """Fault knobs for one (unordered) machine pair, or the default link."""

    __slots__ = (
        "drop",
        "duplicate",
        "reorder",
        "delay_us",
        "latency_scale",
        "jitter",
        "carry_drop",
    )

    def __init__(
        self,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        delay_us: float = 0.0,
        latency_scale: float = 1.0,
        jitter: float = 0.0,
        carry_drop: float = 0.0,
    ) -> None:
        self.drop = drop
        self.duplicate = duplicate
        self.reorder = reorder
        self.delay_us = delay_us
        self.latency_scale = latency_scale
        self.jitter = jitter
        self.carry_drop = carry_drop

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LinkChaos drop={self.drop} dup={self.duplicate}"
            f" reorder={self.reorder} delay={self.delay_us}us"
            f" scale={self.latency_scale} jitter={self.jitter}"
            f" carry_drop={self.carry_drop}>"
        )


class FaultPlane:
    """Seeded, deterministic fault injection for one world."""

    def __init__(
        self,
        kernel: "Kernel",
        fabric: "NetworkFabric | None" = None,
        seed: int = 0,
    ) -> None:
        self.kernel = kernel
        self.fabric = fabric
        self.seed = seed
        self.rng = random.Random(seed)
        #: knobs applied to every link without a per-link override
        self.default_link = LinkChaos()
        self._links: dict[frozenset[str], LinkChaos] = {}
        #: probability that a door call fails transiently before launch
        self.door_fault_rate = 0.0
        #: probability that the server crashes after consuming a request
        self.crash_mid_call_rate = 0.0
        #: one-shot triggers (deterministic test hooks)
        self._fail_next_door_calls = 0
        self._crash_mid_call_armed: "Domain | None | bool" = False
        #: leg name -> remaining armed carry drops for that leg
        self._drop_next_carry: dict[str, int] = {}
        #: scheduled actions: (at_us, seq, label, fn)
        self._schedule: list[tuple[float, int, str, Callable[[], None]]] = []
        self._seq = itertools.count()
        #: reordering holdback: link key -> (dst name, port, payload)
        self._held: dict[frozenset[str], tuple[str, str, bytes]] = {}
        #: injected-fault counters by kind, for tests and reports
        self.injected: dict[str, int] = {}
        #: ordinal of the next aimed burst; seeds derive from it so a
        #: rebuilt world replays regardless of global door-uid drift
        self._burst_ordinal = 0

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    def link(self, a: "Machine | str", b: "Machine | str") -> LinkChaos:
        """The (created-on-demand) per-link override for a machine pair."""
        key = frozenset((_name(a), _name(b)))
        chaos = self._links.get(key)
        if chaos is None:
            chaos = self._links[key] = LinkChaos()
        return chaos

    def _link_for(self, src: str, dst: str) -> LinkChaos:
        return self._links.get(frozenset((src, dst)), self.default_link)

    def fail_next_door_calls(self, count: int = 1) -> None:
        """Arm a deterministic transient failure for the next N door calls."""
        self._fail_next_door_calls += count

    def crash_mid_call_next(self, domain: "Domain | None" = None) -> None:
        """Arm a one-shot crash-mid-call (optionally only for ``domain``)."""
        self._crash_mid_call_armed = domain if domain is not None else True

    def drop_next_carry(self, leg: str = "reply", count: int = 1) -> None:
        """Arm deterministic drops for the next N carries of one leg.

        ``leg="reply"`` is the lost-reply scenario the idempotency-key
        dedup layer exists for: the server executed, the result
        evaporated on the wire, and the client's retry must replay the
        recorded reply instead of re-executing.  Armed drops fire before
        (and without) a rate draw, so arming one never perturbs the
        seeded fault sequence.
        """
        self._drop_next_carry[leg] = self._drop_next_carry.get(leg, 0) + count

    def burst(
        self,
        door: "Door",
        interarrival_us: float,
        service_us: float,
        seed: int | None = None,
        **kwargs,
    ) -> OpenLoopBurst:
        """Aim an :class:`OpenLoopBurst` at a governed door.

        The burst's seed derives arithmetically from the plane's seed and
        the burst's aim ordinal (never from the plane's rng — configuring
        a burst must not perturb the fault draw sequence, and door uids
        are process-global so they would not replay across rebuilt
        worlds), so a chaos run's overload replays from the same single
        seed as its faults.  Requires an admission controller installed
        on the kernel.
        """
        admission = self.kernel.admission
        if admission is None:
            raise RuntimeError(
                "install an AdmissionController before aiming a burst "
                "(Environment.install_admission)"
            )
        inner = getattr(door, "door", None)
        door = inner if inner is not None else door
        ordinal = self._burst_ordinal
        self._burst_ordinal += 1
        if seed is None:
            seed = (self.seed * 1_000_003 + ordinal) & 0x7FFFFFFF
        burst = OpenLoopBurst(door, interarrival_us, service_us, seed=seed, **kwargs)
        admission.attach_burst(burst)
        self._count("burst")
        self._event(
            "chaos.burst",
            door=door.uid,
            interarrival_us=interarrival_us,
            service_us=service_us,
            seed=seed,
        )
        return burst

    # ------------------------------------------------------------------
    # scheduled faults (crash-and-restart scripts)
    # ------------------------------------------------------------------

    def schedule(
        self, at_us: float, fn: Callable[[], None], label: str = "action"
    ) -> None:
        """Run ``fn`` at the first interception point at/after ``at_us``."""
        heapq.heappush(self._schedule, (at_us, next(self._seq), label, fn))

    def schedule_crash_domain(self, domain: "Domain", at_us: float) -> None:
        """Crash a domain at a simulated time."""
        self.schedule(
            at_us, lambda: self.kernel.crash_domain(domain), f"crash:{domain.name}"
        )

    def schedule_crash_machine(self, machine: "Machine", at_us: float) -> None:
        """Power off a machine at a simulated time."""
        self.schedule(at_us, machine.crash, f"crash:{machine.name}")

    def schedule_partition_region(
        self, region: str, at_us: float, heal_at_us: float | None = None
    ) -> None:
        """Isolate a whole region at a simulated time; optionally heal it.

        Only the directed links the cut actually *added* are healed, so
        overlapping partitions keep their prior state (the same contract
        as :func:`repro.runtime.faults.region_partitioned`).
        """
        fabric = self.fabric
        if fabric is None:
            raise RuntimeError("this fault plane was installed without a fabric")

        def cut() -> None:
            added = fabric.partition_region(region)
            self._count("region_partition")
            self._event("chaos.region_partition", region=region, links=len(added))
            if heal_at_us is not None:
                def mend() -> None:
                    for src, dst in added:
                        fabric.heal_oneway(src, dst)
                    self._count("region_heal")
                    self._event("chaos.region_heal", region=region, links=len(added))

                self.schedule(heal_at_us, mend, f"heal-region:{region}")

        self.schedule(at_us, cut, f"partition-region:{region}")

    def pump(self) -> int:
        """Fire every scheduled action that is due; returns the count.

        Called from each interception point, so scheduled crashes land at
        the first communication attempt at/after their time — the closest
        a passive simulated clock comes to an asynchronous failure.
        """
        fired = 0
        schedule = self._schedule
        now = self.kernel.clock.now_us
        while schedule and schedule[0][0] <= now:
            _, _, label, fn = heapq.heappop(schedule)
            self._count("scheduled")
            self._event("chaos.scheduled", action=label)
            fn()
            fired += 1
            now = self.kernel.clock.now_us
        return fired

    # ------------------------------------------------------------------
    # interception points (called by the kernel and the fabric)
    # ------------------------------------------------------------------

    def on_door_call(self, caller: "Domain", door: "Door") -> None:
        """Kernel hook: runs before a door call launches; may raise."""
        if self._schedule:
            self.pump()
        if self._fail_next_door_calls > 0:
            self._fail_next_door_calls -= 1
            self._count("door_fault")
            self._event("chaos.door_fault", door=door.uid, armed=True)
            raise InjectedFault(
                f"chaos: transient failure calling door #{door.uid} (armed)"
            )
        rate = self.door_fault_rate
        if rate and self.rng.random() < rate:
            self._count("door_fault")
            self._event("chaos.door_fault", door=door.uid, armed=False)
            raise InjectedFault(
                f"chaos: transient failure calling door #{door.uid}"
            )

    def on_deliver(self, door: "Door") -> None:
        """Kernel hook: runs after the server consumed the request, before
        the handler replies; may crash the server (crash-mid-call).

        A domain with ``domain.locals["chaos_immune"]`` set is never
        crashed by the *random* knobs (rate or untargeted arming) —
        worlds use it to shield infrastructure such as the name service,
        whose loss would wedge every recovery path rather than exercise
        one.  Explicitly targeted crashes ignore the flag.  The rng draw
        happens before the immunity check, so shielding a domain never
        perturbs the draw sequence.
        """
        armed = self._crash_mid_call_armed
        if armed is not False:
            if armed is door.server or (
                armed is True and not door.server.locals.get("chaos_immune")
            ):
                self._crash_mid_call_armed = False
                self._crash_server(door)
        rate = self.crash_mid_call_rate
        if (
            rate
            and self.rng.random() < rate
            and not door.server.locals.get("chaos_immune")
        ):
            self._crash_server(door)

    def _crash_server(self, door: "Door") -> None:
        server = door.server
        self._count("crash_mid_call")
        self._event("chaos.crash_mid_call", door=door.uid, server=server.name)
        self.kernel.crash_domain(server)
        raise ServerDiedError(
            f"chaos: server domain {server.name!r} crashed mid-call on "
            f"door #{door.uid} (request consumed, no reply)"
        )

    def on_carry(self, src: "Machine", dst: "Machine", leg: str) -> None:
        """Fabric hook: once per carry leg; may drop the leg or add delay."""
        if self._schedule:
            self.pump()
        if self._drop_next_carry:
            armed = self._drop_next_carry.get(leg, 0)
            if armed > 0:
                if armed == 1:
                    del self._drop_next_carry[leg]
                else:
                    self._drop_next_carry[leg] = armed - 1
                self._count("carry_drop")
                self._event(
                    "chaos.carry_drop",
                    src=src.name,
                    dst=dst.name,
                    leg=leg,
                    armed=True,
                )
                raise InjectedFault(
                    f"chaos: {leg} lost between {src.name!r} and "
                    f"{dst.name!r} (armed)"
                )
        link = self._link_for(src.name, dst.name)
        rate = link.carry_drop
        if rate and self.rng.random() < rate:
            self._count("carry_drop")
            self._event("chaos.carry_drop", src=src.name, dst=dst.name, leg=leg)
            raise InjectedFault(
                f"chaos: {leg} lost between {src.name!r} and {dst.name!r}"
            )
        if link.delay_us:
            self._count("link_delay")
            # The delay amount rides on the event so latency attribution
            # can pull injected wire delay out of the fabric span's time.
            self._event(
                "chaos.link_delay",
                src=src.name,
                dst=dst.name,
                leg=leg,
                delay_us=link.delay_us,
            )
            self.kernel.clock.advance(link.delay_us, "chaos_delay")

    def wire_us(
        self, src: "Machine | str", dst: "Machine | str", base_us: float
    ) -> float:
        """Fabric hook: scale one wire-time charge by the link's model."""
        link = self._link_for(_name(src), _name(dst))
        us = base_us * link.latency_scale
        if link.jitter:
            us *= 1.0 + link.jitter * self.rng.random()
        return us

    def send_datagram(
        self,
        fabric: "NetworkFabric",
        src: "Machine | str",
        dst: "Machine | str",
        port: str,
        payload: bytes,
    ) -> bool:
        """Fabric hook: carry one datagram through the fault plane.

        Applies drop / duplicate / reorder / delay for the link, then
        delegates actual delivery back to the fabric.  Reordering holds a
        datagram back and releases it after the *next* datagram on the
        same link (swapping adjacent messages); a held datagram with no
        successor is lost, which an unreliable transport must tolerate
        anyway.
        """
        if self._schedule:
            self.pump()
        src_name, dst_name = _name(src), _name(dst)
        key = frozenset((src_name, dst_name))
        link = self._link_for(src_name, dst_name)
        held = self._held.pop(key, None)
        delivered = False
        dropped = link.drop and self.rng.random() < link.drop
        if dropped:
            self._count("datagram_drop")
            self._event("chaos.datagram_drop", src=src_name, dst=dst_name, port=port)
        else:
            if link.delay_us:
                self._count("link_delay")
                self.kernel.clock.advance(link.delay_us, "chaos_delay")
            if link.reorder and self.rng.random() < link.reorder:
                # Hold this one back; it goes after the link's next datagram.
                self._count("datagram_reorder")
                self._event(
                    "chaos.datagram_reorder", src=src_name, dst=dst_name, port=port
                )
                self._held[key] = (dst_name, port, bytes(payload))
                delivered = True  # offered to the network, in flight
            else:
                delivered = fabric._deliver_datagram(src, dst, port, payload)
                if delivered and link.duplicate and self.rng.random() < link.duplicate:
                    self._count("datagram_duplicate")
                    self._event(
                        "chaos.datagram_duplicate",
                        src=src_name,
                        dst=dst_name,
                        port=port,
                    )
                    fabric._deliver_datagram(src, dst, port, payload)
        if held is not None:
            held_dst, held_port, held_payload = held
            fabric._deliver_datagram(src_name, held_dst, held_port, held_payload)
        return delivered

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def _event(self, name: str, **detail) -> None:
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.event(name, subcontract="chaos", **detail)  # springlint: disable=metrics-naming -- generic relay: literal names live at the emit sites

    def total_injected(self) -> int:
        """Total faults injected so far (all kinds)."""
        return sum(self.injected.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultPlane seed={self.seed} injected={self.total_injected()}"
            f" scheduled={len(self._schedule)}>"
        )


def _name(machine: "Machine | str") -> str:
    return machine if isinstance(machine, str) else machine.name


def install_chaos(
    kernel: "Kernel", fabric: "NetworkFabric | None" = None, seed: int = 0
) -> FaultPlane:
    """Create a :class:`FaultPlane` and install it on ``kernel``."""
    plane = FaultPlane(kernel, fabric, seed=seed)
    kernel.chaos = plane
    return plane


def uninstall_chaos(kernel: "Kernel") -> None:
    """Remove the fault plane; the hot path reverts to fault-free."""
    kernel.chaos = None


__all__.append("uninstall_chaos")
