"""Sagas: multi-object workflows that are safe to retry end-to-end.

The retry taxonomy (:mod:`repro.runtime.retry`) makes single calls safe
to retry and the idempotency-key layer (:mod:`repro.runtime.idem`) makes
them safe even after a lost reply — but a workflow touching *several*
objects can still die between calls, leaving the first update applied
and the second not.  A saga closes that gap the way Section 8.4's
transactions do at the subcontract level: forward through the steps,
and if the workflow cannot finish, run each completed step's registered
*compensation* in reverse.

Exactly-once is the composition of three mechanisms:

* every step runs under one idempotency key held across all its
  attempts, so the step's effect lands at most once no matter how many
  retries the fault plane forces;
* every step journals its intent and completion synchronously through
  the machine's :class:`~repro.services.stable.StableStore` (each write
  charged ``STABLE_WRITE_US``), so a coordinator crash cannot forget
  which effects exist;
* :meth:`SagaCoordinator.recover` scans the journal after a crash and
  replays the compensations of every saga that never reached its ``end``
  record — the "quietly recover from server crashes" stance of
  Section 8.3, applied to workflows.

Journal wire format (one :class:`StableStore` record set per
coordinator, ``saga:<name>``; keys sort in execution order)::

    <sid>.begin        -> saga label
    <sid>.<seq>.s      -> step label          (step started)
    <sid>.<seq>.d      -> compensation token  (step done; "!" if
                                               irreversible)
    <sid>.<seq>.c      -> ""                  (step compensated)
    <sid>.end          -> "committed" | "aborted"

``sid`` is ``%010d`` of the kernel-scoped saga id and ``seq`` is
``%04d`` of the step number, so a plain key sort replays history.

Each step should make **one** effectful door call (or several calls to
*distinct* doors): all calls in a step share the step's idempotency key,
and a server-side dedup memo keys replies by it, so two calls to the
same door inside one step would wrongly dedup each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.runtime.idem import idempotency_key, next_idempotency_key
from repro.runtime.retry import RetryPolicy
from repro.services.stable import STABLE_WRITE_US, stable_store_for

if TYPE_CHECKING:
    from repro.kernel.domain import Domain
    from repro.services.stable import StableStore

__all__ = ["SagaCoordinator", "Saga", "SagaAborted", "SagaUsageError"]

#: sentinel compensation token journalled for irreversible steps
IRREVERSIBLE = "!"

#: the saga's own retry discipline on top of each subcontract's: a step
#: whose subcontract-level retries were exhausted gets this many more
#: rounds before the saga gives up and compensates
DEFAULT_SAGA_POLICY = RetryPolicy(
    base_us=100_000.0, multiplier=2.0, max_attempts=3
)


class SagaUsageError(Exception):
    """The saga API was misused (e.g. a step with no compensation)."""


class SagaAborted(Exception):
    """The saga could not finish; completed steps were compensated.

    ``cause`` is the failure that stopped the forward path and
    ``uncompensated`` lists step labels whose compensation also failed —
    those remain journalled for :meth:`SagaCoordinator.recover`.
    """

    def __init__(
        self,
        saga_id: int,
        label: str,
        step: str,
        cause: BaseException,
        uncompensated: "tuple[str, ...]" = (),
    ) -> None:
        tail = (
            f"; compensation still pending for {list(uncompensated)}"
            if uncompensated
            else ""
        )
        super().__init__(
            f"saga {saga_id} ({label!r}) aborted at step {step!r}: "
            f"{type(cause).__name__}: {cause}{tail}"
        )
        self.saga_id = saga_id
        self.label = label
        self.step = step
        self.cause = cause
        self.uncompensated = uncompensated


class SagaCoordinator:
    """Runs sagas for one domain and owns their durable journal.

    The journal lives in the domain's machine's stable store (or an
    explicit ``store``), so it survives the domain — a replacement
    coordinator on the same machine recovers it by name.
    """

    def __init__(
        self,
        domain: "Domain",
        name: str = "saga",
        policy: "RetryPolicy | None" = None,
        store: "StableStore | None" = None,
    ) -> None:
        self.domain = domain
        self.name = name
        self.policy = policy if policy is not None else DEFAULT_SAGA_POLICY
        if store is None:
            machine = domain.machine
            if machine is None:
                raise SagaUsageError(
                    f"domain {domain.name!r} has no machine; pass an "
                    "explicit StableStore for the saga journal"
                )
            store = stable_store_for(machine)
        self.store = store
        self.record = f"saga:{name}"
        self.committed = 0
        self.aborted = 0
        self.recovered = 0

    # ------------------------------------------------------------------
    # journal
    # ------------------------------------------------------------------

    def _journal(self, key: str, value: str) -> None:
        self.store.commit(self.record, key, value)
        tracer = self.domain.kernel.tracer
        if tracer.enabled:
            tracer.event(
                "saga.journal",
                subcontract="saga",
                key=key,
                write_us=STABLE_WRITE_US,
            )

    def journal_snapshot(self) -> dict[str, str]:
        """The journal's current records (free — no scan charge; tests
        and telemetry only, recovery uses the charged ``load``)."""
        return dict(self.store._records.get(self.record, {}))

    # ------------------------------------------------------------------
    # running sagas
    # ------------------------------------------------------------------

    def begin(self, label: str) -> "Saga":
        """Open a saga.  Use as a context manager: a clean exit commits,
        an exception compensates completed steps and re-raises."""
        saga = Saga(self, label)
        tracer = self.domain.kernel.tracer
        if tracer.enabled:
            tracer.event(
                "saga.begin", subcontract="saga", saga=saga.saga_id, label=label
            )
        self._journal(f"{saga.saga_id:010d}.begin", label)
        return saga

    def recover(
        self, compensators: "dict[str, Callable[[str], None]]"
    ) -> list[int]:
        """Compensate every journalled saga that never reached its end.

        ``compensators`` maps step labels to ``fn(comp_token)`` callables
        (the closures died with the crashed coordinator; recovery works
        from the journalled token instead).  Pays the recovery scan, then
        replays compensations newest-step-first per saga.  Returns the
        ids of the sagas it aborted.
        """
        journal = self.store.load(self.record)  # charged STABLE_SCAN_US
        kernel = self.domain.kernel
        tracer = kernel.tracer
        # Group journal keys by saga id; a plain key sort is history order.
        sagas: dict[int, dict[str, str]] = {}
        for key in sorted(journal):
            sid, _, rest = key.partition(".")
            sagas.setdefault(int(sid), {})[rest] = journal[key]
        aborted: list[int] = []
        for sid, entries in sagas.items():
            if "end" in entries:
                continue  # finished before the crash
            if tracer.enabled:
                tracer.event("saga.replay", subcontract="saga", saga=sid)
            # Steps that journalled done but not compensated, newest first.
            pending = [
                rest[: -len(".d")]
                for rest in sorted(entries)
                if rest.endswith(".d") and f"{rest[:-2]}.c" not in entries
            ]
            failed: list[str] = []
            for seq in reversed(pending):
                token = entries[f"{seq}.d"]
                label = entries.get(f"{seq}.s", "?")
                if token == IRREVERSIBLE:
                    continue
                fn = compensators.get(label)
                if fn is None:
                    raise SagaUsageError(
                        f"recovery of saga {sid} needs a compensator for "
                        f"step {label!r} and none was supplied"
                    )
                if self._compensate_one(sid, label, fn, token):
                    self._journal(f"{sid:010d}.{seq}.c", "")
                else:
                    failed.append(label)
            if failed:
                # Leave the saga open: a later recover() finishes the job.
                continue
            self._journal(f"{sid:010d}.end", "aborted")
            self.aborted += 1
            self.recovered += 1
            aborted.append(sid)
        return aborted

    def _compensate_one(
        self, sid: int, label: str, fn: Callable[..., Any], token: str
    ) -> bool:
        """Run one compensation under its own key + retry budget."""
        kernel = self.domain.kernel
        tracer = kernel.tracer
        policy = self.policy
        key = next_idempotency_key(kernel)
        if tracer.enabled:
            tracer.event(
                "saga.compensate", subcontract="saga", saga=sid, step=label
            )
        attempts = 0
        with idempotency_key(kernel, key):
            while True:
                try:
                    fn(token)
                    return True
                except Exception as failure:
                    attempts += 1
                    if (
                        not policy.retryable(failure)
                        or attempts >= policy.max_attempts
                    ):
                        if tracer.enabled:
                            tracer.event(
                                "saga.compensation_failed",
                                subcontract="saga",
                                saga=sid,
                                step=label,
                                error=type(failure).__name__,
                            )
                        return False
                    policy.pause(
                        kernel.clock,
                        attempts,
                        floor_us=policy.retry_after_us(failure),
                        tracer=tracer,
                    )


class Saga:
    """One running saga: forward steps, reverse compensations."""

    def __init__(self, coordinator: SagaCoordinator, label: str) -> None:
        self.coordinator = coordinator
        self.label = label
        self.saga_id = coordinator.domain.kernel.next_seq("saga")
        self.state = "active"  # active | committed | aborted
        #: completed steps as (seq, label, compensation, token) — the
        #: reverse path; irreversible steps record compensation=None
        self._done: list[tuple[int, str, "Callable[[str], None] | None", str]] = []
        self._seq = 0

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "Saga":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc_type is None:
            if self.state == "active":
                self.commit()
            return False
        if self.state == "active":
            if isinstance(exc, SagaAborted):
                return False  # a failed step already compensated
            self.abort(exc)
        return False

    # -- forward path ---------------------------------------------------

    def run(
        self,
        label: str,
        action: Callable[[], Any],
        compensation: "Callable[[str], None] | None" = None,
        comp_token: str = "",
        irreversible: bool = False,
    ) -> Any:
        """Run one step; returns the action's result.

        ``compensation`` is called with ``comp_token`` if a later step
        fails (or by :meth:`SagaCoordinator.recover` after a crash — the
        token is what the journal persists, so it must carry everything
        the compensation needs).  A step with no compensation must say so
        with ``irreversible=True``; springlint's ``compensation-
        discipline`` rule flags the silent omission.
        """
        if self.state != "active":
            raise SagaUsageError(f"saga {self.saga_id} is {self.state}")
        if compensation is None and not irreversible:
            raise SagaUsageError(
                f"step {label!r} has no compensation; register one or "
                "mark the step irreversible=True"
            )
        coord = self.coordinator
        kernel = coord.domain.kernel
        tracer = kernel.tracer
        policy = coord.policy
        self._seq += 1
        seq = self._seq
        coord._journal(f"{self.saga_id:010d}.{seq:04d}.s", label)
        key = next_idempotency_key(kernel)
        if tracer.enabled:
            tracer.event(
                "saga.step",
                subcontract="saga",
                saga=self.saga_id,
                step=label,
                seq=seq,
            )
        attempts = 0
        # One idempotency key across every attempt: the step is one
        # logical request, however many times the fault plane makes us
        # send it.
        with idempotency_key(kernel, key):
            while True:
                try:
                    result = action()
                    break
                except Exception as failure:
                    attempts += 1
                    if (
                        not policy.retryable(failure)
                        or attempts >= policy.max_attempts
                    ):
                        self.abort(failure, failed_step=label)
                        raise SagaAborted(
                            self.saga_id,
                            self.label,
                            label,
                            failure,
                            uncompensated=self._uncompensated,
                        ) from failure
                    if tracer.enabled:
                        tracer.event(
                            "saga.retry",
                            subcontract="saga",
                            saga=self.saga_id,
                            step=label,
                            attempt=attempts,
                        )
                    policy.pause(
                        kernel.clock,
                        attempts,
                        floor_us=policy.retry_after_us(failure),
                        tracer=tracer,
                    )
        coord._journal(
            f"{self.saga_id:010d}.{seq:04d}.d",
            IRREVERSIBLE if compensation is None else comp_token,
        )
        self._done.append((seq, label, compensation, comp_token))
        return result

    # -- outcomes -------------------------------------------------------

    def commit(self) -> None:
        """Mark the saga finished; its compensations will never run."""
        if self.state != "active":
            raise SagaUsageError(f"saga {self.saga_id} is {self.state}")
        coord = self.coordinator
        coord._journal(f"{self.saga_id:010d}.end", "committed")
        self.state = "committed"
        coord.committed += 1
        tracer = coord.domain.kernel.tracer
        if tracer.enabled:
            tracer.event("saga.commit", subcontract="saga", saga=self.saga_id)

    def abort(
        self, cause: "BaseException | None" = None, failed_step: str = ""
    ) -> None:
        """Compensate completed steps in reverse and close the saga."""
        if self.state != "active":
            raise SagaUsageError(f"saga {self.saga_id} is {self.state}")
        coord = self.coordinator
        tracer = coord.domain.kernel.tracer
        self._uncompensated: tuple[str, ...] = ()
        failed: list[str] = []
        fully = True
        for seq, label, compensation, token in reversed(self._done):
            if compensation is None:
                continue  # irreversible: nothing to undo
            if coord._compensate_one(self.saga_id, label, compensation, token):
                coord._journal(f"{self.saga_id:010d}.{seq:04d}.c", "")
            else:
                failed.append(label)
                fully = False
        self._uncompensated = tuple(failed)
        if fully:
            # Every effect undone: the journal can close.  Otherwise the
            # saga stays open for recover() to finish.
            coord._journal(f"{self.saga_id:010d}.end", "aborted")
        self.state = "aborted"
        coord.aborted += 1
        if tracer.enabled:
            tracer.event(
                "saga.abort",
                subcontract="saga",
                saga=self.saga_id,
                step=failed_step,
                error=type(cause).__name__ if cause is not None else "",
            )
