"""Idempotency keys: naming a logical request so retries are harmless.

PR 4's retry taxonomy makes calls *safe to retry* when the failure
guarantees the server never executed them.  A lost **reply** offers no
such guarantee: the server did the work, the result evaporated on the
wire, and a blind retry executes it twice.  This module closes that gap
from both sides:

* ``with idempotency_key(kernel, key):`` stamps a u64 key out-of-band on
  every buffer the calling thread transmits — the ``deadline_us``
  pattern: only a scalar crosses, never a Python object graph.  The key
  names one *logical* request, so a retry loop holds one key across all
  its attempts, and the kernel clears the thread slot while a handler
  runs (nested calls a handler makes are new logical requests).
* :class:`DedupMemo` is the server side: a bounded per-door memo of
  recorded reply bytes keyed by idempotency key, modelled on the caching
  subcontract's stale memo.  :func:`wrap_idempotent` splices it in front
  of any door handler — a keyed request whose key was already answered
  returns the recorded bytes instead of re-executing.

The memo MUST be bounded (springlint's ``compensation-discipline`` rule
enforces this): every retried request parks bytes in it, and an
unbounded memo is a slow leak under millions of clients.  Give the memo
a :class:`~repro.services.stable.StableStore` record and the recorded
replies survive server crashes — recovery pays one ``STABLE_SCAN_US``
and each record/evict pays ``STABLE_WRITE_US``, matching the durable
services the memo typically fronts.

Interplay with the rest of the runtime, by design:

* ``DeadlineExceeded`` still beats replay — the deadline gate in
  ``Kernel.door_call`` fires before delivery reaches the memo.
* Circuit breakers never count a dedup hit: the hit path returns a
  healthy reply, so the retry loop records success.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator

from repro.runtime import tsan as _tsan

if TYPE_CHECKING:
    from repro.kernel.domain import Domain
    from repro.kernel.nucleus import Kernel
    from repro.marshal.buffer import MarshalBuffer
    from repro.services.stable import StableStore

__all__ = [
    "idempotency_key",
    "next_idempotency_key",
    "current_idempotency_key",
    "DedupMemo",
    "wrap_idempotent",
]

#: distinct keys remembered per memo before FIFO eviction
DEDUP_MEMO_ENTRIES = 128

#: only door-free replies up to this size are recorded (caching's cap)
DEDUP_REPLY_CAP = 4096


def next_idempotency_key(kernel: "Kernel") -> int:
    """Allocate a fresh key from the kernel-scoped sequence.

    Kernel-scoped (not process-global) so seed-swept replays allocate
    identical keys regardless of test ordering — the same determinism
    contract as txn and saga ids.
    """
    return kernel.next_seq("idem")


def current_idempotency_key(kernel: "Kernel") -> "int | None":
    """The calling thread's active key; ``None`` when unset."""
    return kernel._idem.value


@contextmanager
def idempotency_key(kernel: "Kernel", key: int) -> Iterator[int]:
    """Stamp ``key`` on every call made in this block.

    A retry loop wraps *all* its attempts in one ``idempotency_key``
    block: the key names the logical request, not the attempt.  Restores
    the caller's prior key (if any) on exit, mirroring ``deadline()``.
    """
    if not isinstance(key, int) or key < 0 or key > 0xFFFFFFFFFFFFFFFF:
        raise ValueError(f"idempotency key must be a u64, got {key!r}")
    local = kernel._idem
    prior = local.value
    local.value = key
    # The active-context count lets door_call gate the (slow) thread-
    # local read behind a plain attribute read + branch while no key is
    # live anywhere in the process — the tracer/chaos/admission
    # uninstalled-cost discipline.  Mutated under the table lock: the
    # context enter/exit is not a hot path, door_call's read is.
    with kernel._table_lock:
        kernel._idem_depth += 1
    try:
        yield key
    finally:
        local.value = prior
        with kernel._table_lock:
            kernel._idem_depth -= 1


@_tsan.shared_state
class DedupMemo:
    """Bounded idempotency-key → recorded-reply-bytes memo for one door.

    Soft state by default; pass ``store``/``record`` to back it with
    stable storage so recorded replies survive server crashes (the memo
    reloads itself from the record set at construction, paying the
    recovery scan).  Sibling handler threads share the memo, so the
    dict is tsan-tracked and mutations go through an instrumented lock.
    """

    def __init__(
        self,
        entries: int = DEDUP_MEMO_ENTRIES,
        reply_cap: int = DEDUP_REPLY_CAP,
        store: "StableStore | None" = None,
        record: str = "",
    ) -> None:
        if not entries or entries <= 0:
            raise ValueError(
                f"dedup memo must be bounded (entries={entries!r}); "
                "an unbounded memo leaks under retrying clients"
            )
        if (store is None) != (not record):
            raise ValueError("durable memo needs both store and record name")
        self.entries = entries
        self.reply_cap = reply_cap
        self._store = store
        self._record = record
        self.lock = _tsan.instrument_lock(
            threading.Lock(), f"DedupMemo.lock@{id(self):x}"
        )
        memo: dict[int, bytes] = {}
        if store is not None:
            # Recovery scan: reload recorded replies committed by a prior
            # incarnation (insertion order survives, so FIFO age does too).
            for key_hex, value_hex in store.load(record).items():
                memo[int(key_hex, 16)] = bytes.fromhex(value_hex)
        self._memo = _tsan.track(memo, "idem.dedup")
        self.hits = 0
        self.misses = 0
        self.recorded = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._memo)

    def lookup(self, key: int) -> "bytes | None":
        """Recorded reply bytes for ``key``, or ``None`` (a miss counts)."""
        with self.lock:
            data = self._memo.get(key)
            if data is None:
                self.misses += 1
            else:
                self.hits += 1
            return data

    def record(self, key: int, reply: "MarshalBuffer") -> bool:
        """Remember ``reply`` for ``key``; ``False`` if not memoisable.

        Door-carrying replies never record: the bytes alone do not
        reproduce a capability transfer (caching's rule, same reason).
        """
        if reply.doors or len(reply.data) > self.reply_cap:
            return False
        data = bytes(reply.data)
        with self.lock:
            memo = self._memo
            if key not in memo and len(memo) >= self.entries:
                oldest = next(iter(memo))
                del memo[oldest]
                self.evicted += 1
                if self._store is not None:
                    self._store.commit(self._record, f"{oldest:016x}", None)
            memo[key] = data
            self.recorded += 1
        if self._store is not None:
            self._store.commit(self._record, f"{key:016x}", data.hex())
        return True


def wrap_idempotent(
    domain: "Domain",
    inner: Callable[["MarshalBuffer"], "MarshalBuffer"],
    memo: DedupMemo,
) -> Callable[["MarshalBuffer"], "MarshalBuffer"]:
    """Splice ``memo`` in front of a door handler.

    Unkeyed requests pass straight through (one attr read + branch).  A
    keyed request whose key is already recorded returns the recorded
    bytes — the handler does not run again; a keyed miss runs the
    handler and records its reply.
    """
    kernel = domain.kernel

    def handler(request: "MarshalBuffer") -> "MarshalBuffer":
        key = request.idem_key
        if key is None:
            return inner(request)
        data = memo.lookup(key)
        if data is None:
            reply = inner(request)
            if memo.record(key, reply):
                tracer = kernel.tracer
                if tracer.enabled:
                    tracer.event(
                        "dedup.record", subcontract="idem", bytes=len(reply.data)
                    )
            return reply
        # Replay: the first execution's reply, not a second execution.
        # A door-carrying *request* deduped here still holds live transit
        # refs that no handler will ever claim — discard them so the
        # caller's release balances.
        if request.live_door_count():
            request.discard()
        tracer = kernel.tracer
        if tracer.enabled:
            tracer.event("dedup.hit", subcontract="idem", bytes=len(data))
        reply = domain.acquire_buffer()
        reply.data.extend(data)
        kernel.clock.charge("memory_copy_byte", len(data))
        return reply

    return handler
