"""The shared retry policy: backoff, budgets, and circuit breakers.

Before this module each retrying subcontract carried its own ad-hoc
constants — reconnectable slept a flat ``RETRY_BACKOFF_US`` between
re-resolutions, rawnet retransmitted on a flat ``RTO_US`` — and none of
them shared a vocabulary for "stop hammering a dead target".  A
:class:`RetryPolicy` replaces those constants with one policy object:

* **exponential backoff** — attempt *n* waits
  ``base_us * multiplier**(n-1)``, capped at ``max_backoff_us``;
* **seeded jitter** — an optional multiplicative spread drawn from the
  policy's own ``random.Random(seed)``, so two clients backing off from
  the same failure do not retry in lockstep, yet every run with the same
  seed replays the same waits (the chaos soak relies on this);
* **a retry budget** — ``max_attempts`` bounds the loop; exhaustion is
  the caller's cue to raise cleanly;
* **circuit-breaker state** — after ``breaker_threshold`` consecutive
  failures against one target the breaker *opens* and calls fail fast
  (:class:`BreakerOpenError`) until ``breaker_cooldown_us`` of simulated
  time has passed; the first call after cooldown is the *half-open*
  probe whose outcome closes or re-opens the circuit.

All waiting is simulated time on the kernel clock (``clock.advance``);
nothing sleeps.  :meth:`RetryPolicy.retryable` centralises the one
taxonomy decision every loop was making by hand: communication failures
are retryable — including :class:`~repro.kernel.errors.ServerBusyError`,
whose ``retry_after_us`` hint the policy honours as the floor of the
next backoff (:meth:`RetryPolicy.backoff_us`) — but
:class:`~repro.kernel.errors.DeadlineExceeded` is not: a spent time
budget cannot be retried into compliance, and beats a busy-retry.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Hashable

from repro.kernel.errors import CommunicationError, DeadlineExceeded

if TYPE_CHECKING:
    from repro.kernel.clock import SimClock

__all__ = ["RetryPolicy", "CircuitBreaker", "BreakerOpenError"]


class BreakerOpenError(CommunicationError):
    """The circuit breaker for this target is open: failing fast.

    Raised *instead of* attempting the call, so a client that has already
    watched a target fail repeatedly spends no further simulated time on
    it until the breaker's cooldown elapses.
    """


#: breaker states (kept as strings so traces read naturally)
_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half_open"


class _BreakerEntry:
    __slots__ = ("state", "failures", "opened_at_us")

    def __init__(self) -> None:
        self.state = _CLOSED
        self.failures = 0
        self.opened_at_us = 0.0


class CircuitBreaker:
    """Per-target failure accounting with open/half-open/closed states.

    Targets are arbitrary hashable keys (a door uid, a ``(machine,
    port)`` endpoint, an object name).  The breaker never raises itself;
    callers ask :meth:`allow` before attempting and raise
    :class:`BreakerOpenError` on refusal, then report the attempt's
    outcome with :meth:`record_failure` / :meth:`record_success`.  State
    transitions are returned as strings (``"open"``, ``"half_open"``,
    ``"closed"``) so call sites can annotate them onto the active trace.
    """

    __slots__ = ("threshold", "cooldown_us", "_entries")

    def __init__(self, threshold: int, cooldown_us: float) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.cooldown_us = cooldown_us
        self._entries: dict[Hashable, _BreakerEntry] = {}

    def _entry(self, key: Hashable) -> _BreakerEntry:
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = _BreakerEntry()
        return entry

    def state(self, key: Hashable) -> str:
        """The breaker state for ``key`` (``closed`` when never tripped)."""
        entry = self._entries.get(key)
        return entry.state if entry is not None else _CLOSED

    def allow(self, key: Hashable, now_us: float) -> str | None:
        """May a call proceed against ``key`` right now?

        Returns ``None`` (closed: proceed), ``"half_open"`` (cooldown
        elapsed: this call is the probe), or raises nothing — a refusal
        is signalled by the ``"open"`` return so the caller can raise
        :class:`BreakerOpenError` with its own context.
        """
        entry = self._entries.get(key)
        if entry is None or entry.state == _CLOSED:
            return None
        if entry.state == _OPEN:
            if now_us - entry.opened_at_us < self.cooldown_us:
                return _OPEN
            entry.state = _HALF_OPEN
            return _HALF_OPEN
        # Already half-open: one probe is in flight per cooldown window;
        # further calls keep probing (single-threaded sims reach here only
        # after a probe failed and re-opened, so treat it as a probe too).
        return _HALF_OPEN

    def record_failure(self, key: Hashable, now_us: float) -> str | None:
        """Count a failed attempt; returns ``"open"`` on a new trip."""
        entry = self._entry(key)
        entry.failures += 1
        if entry.state == _HALF_OPEN or entry.failures >= self.threshold:
            was_open = entry.state == _OPEN
            entry.state = _OPEN
            entry.opened_at_us = now_us
            return None if was_open else _OPEN
        return None

    def record_success(self, key: Hashable) -> str | None:
        """Count a success; returns ``"closed"`` when it heals the circuit."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        healed = entry.state != _CLOSED
        entry.state = _CLOSED
        entry.failures = 0
        return _CLOSED if healed else None


class RetryPolicy:
    """One retry discipline, shared by every retrying subcontract.

    The defaults are deliberately conservative: no jitter and no breaker,
    so a subcontract that swaps its flat constant for
    ``RetryPolicy(base_us=OLD_CONSTANT, multiplier=1.0)`` reproduces its
    historical waits bit-for-bit, and the knobs are opted into one at a
    time.
    """

    __slots__ = (
        "base_us",
        "multiplier",
        "max_backoff_us",
        "max_attempts",
        "jitter",
        "seed",
        "_rng",
        "breaker",
    )

    def __init__(
        self,
        base_us: float,
        multiplier: float = 2.0,
        max_backoff_us: float | None = None,
        max_attempts: int = 8,
        jitter: float = 0.0,
        seed: int = 0,
        breaker_threshold: int | None = None,
        breaker_cooldown_us: float = 1_000_000.0,
    ) -> None:
        if base_us < 0:
            raise ValueError("base_us must be >= 0")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.base_us = base_us
        self.multiplier = multiplier
        self.max_backoff_us = max_backoff_us
        self.max_attempts = max_attempts
        self.jitter = jitter
        self.seed = seed
        self._rng = random.Random(seed)
        self.breaker: CircuitBreaker | None = (
            CircuitBreaker(breaker_threshold, breaker_cooldown_us)
            if breaker_threshold is not None
            else None
        )

    def reseed(self, seed: int) -> None:
        """Rewind the jitter stream (replaying a recorded chaos run)."""
        self.seed = seed
        self._rng = random.Random(seed)

    def backoff_us(self, attempt: int, floor_us: float = 0.0) -> float:
        """The wait before retry ``attempt`` (1-based), jitter applied.

        ``floor_us`` is a server-supplied lower bound — the
        ``retry_after_us`` hint a :class:`ServerBusyError` carries.  It is
        applied *after* jitter: the server said capacity frees up no
        sooner than that, so no jitter draw may undercut it (jitter still
        spreads retries out above the floor through the hint's own
        server-side jitter).
        """
        if attempt < 1:
            raise ValueError("attempt numbering is 1-based")
        wait = self.base_us * self.multiplier ** (attempt - 1)
        if self.max_backoff_us is not None and wait > self.max_backoff_us:
            wait = self.max_backoff_us
        if self.jitter:
            wait *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        if wait < floor_us:
            wait = floor_us
        return wait

    def pause(
        self,
        clock: "SimClock",
        attempt: int,
        category: str = "retry_backoff",
        floor_us: float = 0.0,
        tracer: "Any | None" = None,
    ) -> float:
        """Charge the backoff for ``attempt`` to the clock; returns it.

        Pass the kernel's ``tracer`` to stamp a ``retry.backoff`` event
        (with ``backoff_us`` detail) onto the current span, which is how
        latency attribution separates backoff from service time.
        """
        wait = self.backoff_us(attempt, floor_us=floor_us)
        if wait > 0.0:
            if tracer is not None and tracer.enabled:
                tracer.event(
                    "retry.backoff",
                    subcontract="retry",
                    attempt=attempt,
                    backoff_us=round(wait, 2),
                )
            clock.advance(wait, category)
        return wait

    @staticmethod
    def retryable(failure: BaseException) -> bool:
        """Is this failure worth another attempt?

        Communication failures are — including
        :class:`~repro.kernel.errors.ServerBusyError`, which is overload
        shedding, not death; an exceeded deadline is not (the time budget
        is spent), and neither is anything non-communication —
        application errors must surface unchanged.
        """
        return isinstance(failure, CommunicationError) and not isinstance(
            failure, DeadlineExceeded
        )

    @staticmethod
    def retry_after_us(failure: BaseException) -> float:
        """The server's busy hint riding on ``failure``, else ``0.0``.

        Feed the result to :meth:`backoff_us` / :meth:`pause` as
        ``floor_us`` so the next wait honours the server's own estimate
        of when capacity frees up.
        """
        return getattr(failure, "retry_after_us", 0.0)

    def derive(self, **overrides: Any) -> "RetryPolicy":
        """A copy of this policy with some knobs replaced (fresh rng)."""
        kwargs: dict[str, Any] = {
            "base_us": self.base_us,
            "multiplier": self.multiplier,
            "max_backoff_us": self.max_backoff_us,
            "max_attempts": self.max_attempts,
            "jitter": self.jitter,
            "seed": self.seed,
        }
        if self.breaker is not None:
            kwargs["breaker_threshold"] = self.breaker.threshold
            kwargs["breaker_cooldown_us"] = self.breaker.cooldown_us
        kwargs.update(overrides)
        return RetryPolicy(**kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RetryPolicy base={self.base_us}us x{self.multiplier}"
            f" attempts={self.max_attempts} jitter={self.jitter}"
            f" breaker={'on' if self.breaker is not None else 'off'}>"
        )
