"""The runtime environment: one call to stand up a small Spring world.

``Environment`` wires together everything a paper scenario needs:

* a kernel and a network fabric with machines;
* a name service (with each new domain handed a root-context capability
  in ``domain.locals["naming_root"]``, the way every Spring domain is
  booted with its name-service door);
* per-domain subcontract registries, seeded with the standard library or
  a restricted set, each with a discovery service that maps subcontract
  IDs to library names through the naming service and loads libraries
  from the trusted search path (Section 6.2);
* per-machine cache managers, registered in the machine-local naming
  context the caching subcontract resolves (Section 8.2).
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.core.discovery import DiscoveryService, LibraryLoader
from repro.core.registry import SubcontractRegistry
from repro.kernel.clock import CostModel
from repro.kernel.nucleus import Kernel
from repro.net.fabric import NetworkFabric
from repro.net.machine import Machine
from repro.services.cachemgr import DEFAULT_CACHEABLE_OPS, CacheManagerService
from repro.services.naming import NameService
from repro.subcontracts import standard_subcontracts

if TYPE_CHECKING:
    from repro.core.object import SpringObject
    from repro.core.subcontract import ClientSubcontract
    from repro.kernel.domain import Domain

__all__ = ["Environment"]


class Environment:
    """A self-contained distributed world for examples, tests, benches."""

    def __init__(
        self,
        latency_us: float = 1200.0,
        cost_model: CostModel | None = None,
        datagram_loss: float = 0.0,
        trusted_lib_dirs: Iterable[Path | str] = (),
        with_naming: bool = True,
        seed: int = 1993,
        transport: str = "sim",
    ) -> None:
        if transport not in ("sim", "proc"):
            raise ValueError(f"unknown transport {transport!r} (sim or proc)")
        self.kernel = Kernel(cost_model)
        self.clock = self.kernel.clock
        self.seed = seed
        #: which fabric carries cross-machine door calls: the in-process
        #: simulated fabric ("sim", the deterministic tier-1 default) or
        #: the real multiprocess fabric ("proc", installed on demand)
        self.transport = transport
        self.procfabric = None
        #: gossip membership / leader election, installed on demand
        self.membership = None
        self.election = None
        self.fabric = NetworkFabric(
            self.kernel,
            latency_us=latency_us,
            datagram_loss=datagram_loss,
            seed=seed,
        )
        self.loader = LibraryLoader(list(trusted_lib_dirs), clock=self.clock)
        self.name_service: NameService | None = None
        if with_naming:
            ns_machine = self.fabric.create_machine("nameserver")
            ns_domain = ns_machine.create_domain("naming")
            registry = SubcontractRegistry(ns_domain)
            registry.register_many(standard_subcontracts())
            self.name_service = NameService(ns_domain)
        #: cache manager services by (machine name, manager name)
        self.cache_managers: dict[tuple[str, str], CacheManagerService] = {}

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    def machine(self, name: str, region: str = "", zone: str = "") -> Machine:
        """Get or create a machine, optionally placing it in a region."""
        existing = self.fabric.machines.get(name)
        if existing is not None:
            if region:
                self.fabric.place(existing, region, zone)
            return existing
        return self.fabric.create_machine(name, region=region, zone=zone)

    def create_domain(
        self,
        machine: Machine | str,
        name: str,
        subcontracts: Iterable[type["ClientSubcontract"]] | None = None,
        with_discovery: bool = True,
    ) -> "Domain":
        """Boot a domain: registry seeded, naming root planted, discovery
        wired.

        ``subcontracts`` restricts the "linked-in standard libraries"; a
        restricted domain must still include the cluster client if it is
        to talk to the naming service.
        """
        if isinstance(machine, str):
            machine = self.machine(machine)
        domain = machine.create_domain(name)
        registry = SubcontractRegistry(domain)
        registry.register_many(
            standard_subcontracts() if subcontracts is None else subcontracts
        )
        if self.name_service is not None:
            naming_root = self.name_service.root_for(domain)
            domain.locals["naming_root"] = naming_root
            if with_discovery:
                registry.discovery = self._discovery_for(naming_root)
        return domain

    # ------------------------------------------------------------------
    # dynamic subcontract discovery (Section 6.2)
    # ------------------------------------------------------------------

    def _discovery_for(self, naming_root: "SpringObject") -> DiscoveryService:
        def resolver(subcontract_id: str) -> str | None:
            try:
                return naming_root.resolve_label(f"/subcontracts/{subcontract_id}")
            except Exception:
                return None

        return DiscoveryService(resolver, self.loader)

    def register_subcontract_library(
        self, subcontract_id: str, library_name: str
    ) -> None:
        """Administrator action: publish the subcontract-id -> library
        mapping in the network naming context (Section 6.2)."""
        if self.name_service is None:
            raise RuntimeError("environment was built without a naming service")
        self.name_service.root_impl.bind_label(
            f"/subcontracts/{subcontract_id}", library_name
        )

    def add_trusted_lib_dir(self, directory: Path | str) -> None:
        """Administrator action: extend the designated trusted search path."""
        self.loader.trusted_paths.append(Path(directory).resolve())

    # ------------------------------------------------------------------
    # cache managers (Section 8.2)
    # ------------------------------------------------------------------

    def install_cache_manager(
        self,
        machine: Machine | str,
        name: str = "default",
        cacheable_ops: tuple[str, ...] = DEFAULT_CACHEABLE_OPS,
    ) -> CacheManagerService:
        """Run a cache manager on a machine and register it in the
        machine-local naming context the caching subcontract searches."""
        if isinstance(machine, str):
            machine = self.machine(machine)
        key = (machine.name, name)
        if key in self.cache_managers:
            raise ValueError(f"machine {machine.name!r} already runs cache {name!r}")
        domain = self.create_domain(machine, f"cachemgr:{machine.name}:{name}")
        service = CacheManagerService(domain, cacheable_ops)
        naming_root = domain.locals["naming_root"]
        naming_root.rebind(
            f"/machines/{machine.name}/caches/{name}",
            service.manager.spring_copy(),
        )
        self.cache_managers[key] = service
        return service

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def install_chaos(self, seed: int | None = None):
        """Install a deterministic fault plane on this world.

        All fault injection — link drop/delay/duplicate/reorder, transient
        door failures, crash-mid-call, scheduled crashes — is driven by
        one ``random.Random(seed)`` (defaulting to the environment's own
        seed) and the simulated clock, so a run replays bit-for-bit.
        Returns the live :class:`repro.runtime.chaos.FaultPlane` (also at
        ``env.kernel.chaos``).
        """
        from repro.runtime.chaos import install_chaos

        return install_chaos(
            self.kernel, self.fabric, seed=self.seed if seed is None else seed
        )

    def uninstall_chaos(self) -> None:
        """Remove the fault plane; the hot path reverts to fault-free."""
        self.kernel.chaos = None

    def install_admission(self, seed: int | None = None):
        """Install overload protection (admission control) on this world.

        Returns the live
        :class:`repro.runtime.admission.AdmissionController` (also at
        ``env.kernel.admission``); attach per-door or per-domain
        :class:`~repro.runtime.admission.AdmissionPolicy` objects with
        ``govern`` / ``govern_domain``.  The controller's only rng draws
        jitter for ``retry_after_us`` hints, seeded here (defaulting to
        the environment's own seed) so shed-heavy runs replay.
        """
        from repro.runtime.admission import install_admission

        return install_admission(
            self.kernel, seed=self.seed if seed is None else seed
        )

    def uninstall_admission(self) -> None:
        """Remove admission control; doors revert to unbounded admission."""
        self.kernel.admission = None

    def install_tsan(self, **options):
        """Install the springtsan happens-before race detector.

        Door calls, thread start/join, instrumented locks, and marshal
        pool transfers become synchronization edges; accesses to tracked
        shared state (``domain.locals``, capability tables, anything
        declared via ``@shared_state`` / ``tsan.track``) are checked and
        two unordered accesses with disjoint locksets raise
        :class:`repro.runtime.tsan.DataRaceError` naming both sites.
        Returns the live :class:`repro.runtime.tsan.TsanRuntime` (also
        at ``env.kernel.tsan``).  No simulated time is charged either
        way — sim totals are bit-for-bit identical with and without it.
        """
        from repro.runtime.tsan import install_tsan

        return install_tsan(self.kernel, **options)

    def uninstall_tsan(self) -> None:
        """Remove the race detector; hooks revert to one-branch no-ops."""
        from repro.runtime.tsan import uninstall_tsan

        uninstall_tsan(self.kernel)

    def install_tracer(self, ring_capacity: int | None = None):
        """Turn on end-to-end tracing for this world.

        Every ``remote_call`` (and fused stub) from now on opens an
        invoke span; context propagates through doors, the fabric, and
        network servers into server-side dispatch.  Returns the live
        :class:`repro.obs.tracer.Tracer` (also at ``env.kernel.tracer``).
        """
        from repro.obs.tracer import install_tracer

        if ring_capacity is None:
            return install_tracer(self.kernel)
        return install_tracer(self.kernel, ring_capacity=ring_capacity)

    def install_windows(self, **options):
        """Attach windowed telemetry (obs v2) to this world's tracer.

        Installs a tracer first if the world is untraced.  ``options``
        pass through to :class:`repro.obs.windows.WindowedSeries`
        (``window_us``, ``retention``, ``alpha``).  Returns the live
        series (also at ``env.kernel.tracer.windows``).  While
        installed, every recorded span/event charges ``window_probe``
        simulated time — deterministic, and absent when uninstalled.
        """
        from repro.obs.windows import install_windows

        tracer = self.kernel.tracer
        if not tracer.enabled:
            tracer = self.install_tracer()
        return install_windows(tracer, **options)

    def uninstall_windows(self) -> None:
        """Detach windowed telemetry; the tracer feed reverts to no-op."""
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.windows = None

    def install_obsd(self, domain: "Domain", engine=None):
        """Serve this world's telemetry through an ``obsd`` door.

        Exports the introspection service from ``domain`` (an ordinary
        singleton-subcontract export); hand objects to clients with
        ``service.object_for(client_domain)``.  Returns the live
        :class:`repro.services.obsd.ObsdService`.
        """
        from repro.services.obsd import ObsdService

        return ObsdService(domain, engine)

    # ------------------------------------------------------------------
    # self-organization (gossip membership + leader election)
    # ------------------------------------------------------------------

    def install_membership(
        self, machines=None, seed: int | None = None, plant: bool = True, **knobs
    ):
        """Start SWIM gossip membership on this world.

        ``machines`` is the member set (names or :class:`Machine`
        objects); it defaults to every machine except the name server.
        The nodes bootstrap knowing each other and probe on the sim
        clock — drive the protocol with ``membership.run_for(...)``.
        With ``plant=True`` every domain already booted on a member
        machine gets its machine's view wired into its replicon /
        cluster / reconnectable client vectors.  Returns the live
        :class:`repro.runtime.membership.MembershipService` (also at
        ``env.membership``).  ``knobs`` pass through to
        :class:`~repro.runtime.membership.MembershipConfig`.
        """
        from repro.runtime.membership import MembershipService

        if self.membership is not None:
            raise RuntimeError("a membership service is already installed")
        if machines is None:
            members = [
                machine
                for name, machine in sorted(self.fabric.machines.items())
                if name != "nameserver"
            ]
        else:
            members = [
                self.machine(m) if isinstance(m, str) else m for m in machines
            ]
        service = MembershipService(
            self.kernel,
            self.fabric,
            seed=self.seed if seed is None else seed,
            **knobs,
        )
        service.bootstrap(members)
        if plant:
            for machine in members:
                for domain in machine.domains:
                    if domain.alive:
                        service.plant(domain)
        self.membership = service
        return service

    def install_election(
        self, electorate=None, seed: int | None = None, **knobs
    ):
        """Start lease-based leader election over the membership service.

        Requires :meth:`install_membership` first.  ``electorate``
        defaults to every membership node and stays fixed (majority is
        counted against it, so a minority partition can never elect).
        Returns the live
        :class:`repro.runtime.election.ElectionService` (also at
        ``env.election``).  ``knobs`` pass through to
        :class:`~repro.runtime.election.ElectionConfig`.  ``seed`` is
        accepted for signature symmetry but derivation happens from the
        membership service's seed to keep one seed per world.
        """
        from repro.runtime.election import ElectionService

        if self.membership is None:
            raise RuntimeError("install_membership before install_election")
        if self.election is not None:
            raise RuntimeError("an election service is already installed")
        service = ElectionService(self.membership, electorate=electorate, **knobs)
        self.election = service
        return service

    # ------------------------------------------------------------------
    # transports
    # ------------------------------------------------------------------

    def install_procfabric(self, bootstrap, workers: int = 2, **options):
        """Start the multiprocess fabric: real OS-process workers.

        Only available when the environment was built with
        ``transport="proc"`` — the in-process simulated fabric stays the
        deterministic default, and a world never mixes the two by
        accident.  ``bootstrap(env, index)`` runs inside each forked
        worker and returns its named exports; ``options`` pass through to
        :class:`repro.net.procfabric.ProcFabric` (``trace``,
        ``ring_bytes``, ``ring_min``, ``log_dir``, ...).  Returns the
        started fabric (also at ``env.procfabric``).
        """
        from repro.net.procfabric import ProcFabric, ProcFabricError

        if self.transport != "proc":
            raise ProcFabricError(
                "environment transport is 'sim'; build it with "
                "Environment(transport='proc') to use the process fabric"
            )
        if self.procfabric is not None:
            raise ProcFabricError("a process fabric is already installed")
        options.setdefault("seed", self.seed)
        fabric = ProcFabric(self.kernel, workers=workers, bootstrap=bootstrap, **options)
        fabric.start()
        self.procfabric = fabric
        return fabric

    def uninstall_procfabric(self, join_timeout_s: float = 5.0) -> None:
        """Shut the process fabric's workers down (idempotent)."""
        if self.procfabric is not None:
            self.procfabric.shutdown(join_timeout_s)
            self.procfabric = None

    # ------------------------------------------------------------------
    # naming conveniences
    # ------------------------------------------------------------------

    def bind(self, domain: "Domain", path: str, obj: "SpringObject") -> None:
        """Bind an object (moved from ``domain``) at a naming path."""
        domain.locals["naming_root"].rebind(path, obj)

    def resolve(self, domain: "Domain", path: str) -> "SpringObject":
        """Resolve a naming path into a generic object owned by ``domain``."""
        return domain.locals["naming_root"].resolve(path)
