"""Runtime environment helpers: one-call world setup and fault injection."""

from repro.runtime.env import Environment
from repro.runtime.faults import crash_domain, crash_machine, partitioned
from repro.runtime.report import CostReport, compare_tallies, format_tally
from repro.runtime.threads import run_concurrently
from repro.runtime.transfer import give, transfer

__all__ = [
    "run_concurrently",
    "Environment",
    "crash_domain",
    "crash_machine",
    "partitioned",
    "CostReport",
    "compare_tallies",
    "format_tally",
    "transfer",
    "give",
]
