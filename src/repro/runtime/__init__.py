"""Runtime environment helpers: one-call world setup and fault injection."""

from repro.runtime.admission import (
    AdmissionController,
    AdmissionPolicy,
    install_admission,
    uninstall_admission,
)
from repro.runtime.chaos import (
    FaultPlane,
    InjectedFault,
    LinkChaos,
    OpenLoopBurst,
    install_chaos,
)
from repro.runtime.deadline import deadline, remaining_us
from repro.runtime.env import Environment
from repro.runtime.faults import crash_domain, crash_machine, partitioned
from repro.runtime.idem import (
    DedupMemo,
    idempotency_key,
    next_idempotency_key,
    wrap_idempotent,
)
from repro.runtime.report import CostReport, compare_tallies, format_tally
from repro.runtime.retry import BreakerOpenError, CircuitBreaker, RetryPolicy
from repro.runtime.saga import Saga, SagaAborted, SagaCoordinator, SagaUsageError
from repro.runtime.threads import run_concurrently
from repro.runtime.transfer import give, transfer

__all__ = [
    "run_concurrently",
    "Environment",
    "crash_domain",
    "crash_machine",
    "partitioned",
    "FaultPlane",
    "LinkChaos",
    "InjectedFault",
    "OpenLoopBurst",
    "install_chaos",
    "AdmissionController",
    "AdmissionPolicy",
    "install_admission",
    "uninstall_admission",
    "deadline",
    "remaining_us",
    "idempotency_key",
    "next_idempotency_key",
    "DedupMemo",
    "wrap_idempotent",
    "SagaCoordinator",
    "Saga",
    "SagaAborted",
    "SagaUsageError",
    "RetryPolicy",
    "CircuitBreaker",
    "BreakerOpenError",
    "CostReport",
    "compare_tallies",
    "format_tally",
    "transfer",
    "give",
]
