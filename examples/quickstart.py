#!/usr/bin/env python3
"""Quickstart: define an interface in IDL, export an object with the
simplex subcontract, and invoke it from another machine.

This is the smallest complete tour of the machinery the paper describes
in Section 4 and Figure 3: generated stubs drive the subcontract
operations vector, which drives a kernel door, which reaches the server
skeleton and the application code.

Run:  python examples/quickstart.py
"""

from repro import Environment, compile_idl, narrow
from repro.subcontracts.simplex import SimplexServer

COUNTER_IDL = """
// Any IDL interface works with any subcontract (Section 9.1).
interface counter {
    int32 add(int32 n);
    int32 total();
    void reset();
}
"""


class CounterImpl:
    """The server application: a plain Python object whose methods match
    the IDL operations."""

    def __init__(self) -> None:
        self.value = 0

    def add(self, n: int) -> int:
        self.value += n
        return self.value

    def total(self) -> int:
        return self.value

    def reset(self) -> None:
        self.value = 0


def main() -> None:
    # One call stands up a kernel, a network fabric, and a name service.
    env = Environment()
    server = env.create_domain("machine-a", "counter-server")
    client = env.create_domain("machine-b", "client-app")

    # Compile the IDL: this generates client stubs and a server skeleton.
    module = compile_idl(COUNTER_IDL, module_name="quickstart")
    binding = module.binding("counter")

    # The server creates a Spring object from a language-level object
    # (Section 5.2.1) and publishes it in the name service.
    exported = SimplexServer(server).export(CounterImpl(), binding)
    env.bind(server, "/demo/counter", exported)
    print("server: exported a counter at /demo/counter (simplex subcontract)")

    # The client resolves the name and narrows the generic object to the
    # counter type (Section 6.3).
    counter = narrow(env.resolve(client, "/demo/counter"), binding)
    print(f"client: resolved the counter, static type {counter.spring_type_id()!r}")

    # Ordinary method calls now cross machines through the subcontract.
    print("client: add(5)   ->", counter.add(5))
    print("client: add(37)  ->", counter.add(37))
    print("client: total()  ->", counter.total())

    # Copy before giving the object away: Spring objects move (Figure 2).
    keeper = counter.spring_copy()
    print("client: copied the object; both handles share the same state")
    print("client: keeper.total() ->", keeper.total())

    print(f"\nsimulated time used: {env.clock.now_us:,.1f} us")
    breakdown = ", ".join(
        f"{k}={v:,.0f}us" for k, v in sorted(env.clock.tally().items()) if v >= 1
    )
    print(f"cost breakdown: {breakdown}")


if __name__ == "__main__":
    main()
