#!/usr/bin/env python3
"""A newsroom wire service: five subcontracts cooperating in one app.

This is the paper's Section 1 promise as a working system — different
object mechanisms, each chosen per type, all behind ordinary interfaces:

* the **article archive** is a file service; bureaus read articles as
  `cacheable_file` objects through their machine-local cache managers
  (caching subcontract, §8.2);
* the **headline index** is a replicon group across three racks — a rack
  can burn down mid-edition (replicon, §5);
* the **editor's assignment board** keeps its state in stable storage and
  survives editor-daemon crashes without readers noticing
  (reconnectable + stable store, §8.3);
* the directory tying it together is the naming service (cluster, §8.1);
* live wire-photos stream over raw datagrams, losing frames rather than
  stalling (video, §8.4).

Run:  python examples/newsroom.py
"""

from repro import Environment, compile_idl, narrow
from repro.runtime.faults import crash_domain
from repro.runtime.report import compare_tallies
from repro.services.fs import FileServer, fs_module
from repro.services.kv import ReplicatedKVService, kv_binding
from repro.services.stable import DurableKVService
from repro.subcontracts.video import VideoServer

PHOTO_IDL = """
interface photo_wire {
    subcontract "video";
    string caption();
}
"""


class PhotoWireImpl:
    def caption(self) -> str:
        return "scenes from the spring release"


def main() -> None:
    env = Environment(latency_us=1800.0)

    # ------------------------------------------------------------------
    print("== standing up the newsroom ==")
    archive_domain = env.create_domain("archive-machine", "archive")
    archive = FileServer(archive_domain)
    archive.make_file(
        "/articles/subcontract", b"Sun Labs ships a flexible base. " * 8
    )
    env.bind(archive_domain, "/newsroom/archive", archive.root.spring_copy())

    index_racks = [env.create_domain(f"rack-{i}", f"index-{i}") for i in range(3)]
    index_service = ReplicatedKVService(index_racks)
    env.bind(
        index_racks[0], "/newsroom/index", index_service.store_for(index_racks[0])
    )

    board = DurableKVService(env, "editorial-machine", "/newsroom/board")

    for office in ("bureau-paris", "bureau-tokyo"):
        env.install_cache_manager(env.machine(office))
    print("archive, 3-rack index, durable assignment board, 2 bureaus ready")

    # ------------------------------------------------------------------
    print("\n== the editor files the morning edition ==")
    editor = env.create_domain("editorial-machine", "editor")
    index = narrow(env.resolve(editor, "/newsroom/index"), kv_binding())
    index.put("front-page", "/articles/subcontract")
    board_client = board.client_for(editor)
    board_client.put("paris", "interview the kernel team")
    board_client.put("tokyo", "photograph the demo")
    print("index + assignments written")

    # ------------------------------------------------------------------
    print("\n== bureaus pull the edition (watch the caches work) ==")
    for office in ("bureau-paris", "bureau-tokyo"):
        reporter = env.create_domain(office, f"reporter@{office}")
        fs = narrow(
            env.resolve(reporter, "/newsroom/archive"),
            fs_module().binding("file_system"),
        )
        idx = narrow(env.resolve(reporter, "/newsroom/index"), kv_binding())
        path = idx.get("front-page")
        article = fs.open_cached(path)
        before = env.clock.tally()
        article.read(0, 64)
        for _ in range(4):
            article.read(0, 64)  # warm re-reads
        spent = compare_tallies(before, env.clock.tally())
        network = spent.tally.get("network", 0.0)
        assignment = board.client_for(reporter).get(office.split("-")[1])
        print(f"{office}: article cached locally "
              f"(network time for 5 reads: {network:,.0f} sim-us); "
              f"assignment: {assignment!r}")

    # ------------------------------------------------------------------
    print("\n== disaster drills ==")
    print("rack-0 burns down ...")
    crash_domain(index_racks[0])
    probe = env.create_domain("bureau-paris", "probe")
    idx = narrow(env.resolve(probe, "/newsroom/index"), kv_binding())
    print("   index still answers:", idx.get("front-page"))

    print("editor daemon crashes; replacement recovers from stable storage ...")
    board.restart()
    print("   assignments intact:", board.client_for(probe).keys())

    # ------------------------------------------------------------------
    print("\n== the photo wire opens (lossy, live, never stalls) ==")
    photo_module = compile_idl(PHOTO_IDL, module_name="newsroom.photos")
    studio = env.create_domain("archive-machine", "photo-studio")
    wire_server = VideoServer(studio)
    wire = wire_server.export(PhotoWireImpl(), photo_module.binding("photo_wire"))
    viewer_domain = env.create_domain("bureau-tokyo", "photo-viewer")
    env.bind(studio, "/newsroom/photos", wire)
    viewer = narrow(
        env.resolve(viewer_domain, "/newsroom/photos"),
        photo_module.binding("photo_wire"),
    )
    frames = []
    viewer._subcontract.subscribe(viewer, lambda seq, data: frames.append(seq))
    env.fabric.datagram_loss = 0.2
    sent = wire_server.pump_frames([b"photo" for _ in range(20)])
    env.fabric.datagram_loss = 0.0
    print(f"   {len(frames)}/{sent} frames arrived in order "
          f"({viewer.caption()!r})")

    print("\nedition shipped —", f"{env.clock.now_us/1000:,.1f} simulated ms elapsed")


if __name__ == "__main__":
    main()
