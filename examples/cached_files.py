#!/usr/bin/env python3
"""Client-side caching with the caching subcontract (Section 8.2, Figure 5).

A file server lives on one machine; two client machines each run a cache
manager.  When a `cacheable_file` object is unmarshalled on a client
machine, the caching subcontract resolves the cache manager name in a
machine-local naming context, presents the server door (D1), and receives
a local cache door (D2).  Every invoke then goes to the local cache.

Run:  python examples/cached_files.py
"""

from repro import Environment, narrow
from repro.marshal.buffer import MarshalBuffer
from repro.services.fs import FileServer, fs_module


def main() -> None:
    env = Environment(latency_us=2000.0)  # a noticeably slow network

    server_machine = env.machine("file-server-machine")
    desk_a = env.machine("desk-a")
    desk_b = env.machine("desk-b")
    env.install_cache_manager(desk_a)
    env.install_cache_manager(desk_b)
    print("cache managers installed on desk-a and desk-b")

    fs_domain = env.create_domain(server_machine, "fileserver")
    file_server = FileServer(fs_domain)
    file_server.make_file("/shared/report.txt", b"The subcontract abstraction " * 64)
    env.bind(fs_domain, "/services/fs", file_server.root.spring_copy())

    module = fs_module()
    for desk in ("desk-a", "desk-b"):
        user = env.create_domain(desk, f"user-on-{desk}")
        fs = narrow(env.resolve(user, "/services/fs"), module.binding("file_system"))
        handle = fs.open_cached("/shared/report.txt")
        print(f"\n{desk}: opened /shared/report.txt "
              f"(subcontract={handle._subcontract.id}, "
              f"local cache door={'yes' if handle._rep.cache_door else 'no'})")

        env.clock.reset_tally()
        handle.read(0, 256)
        cold = env.clock.tally().get("network", 0.0)
        env.clock.reset_tally()
        for _ in range(5):
            handle.read(0, 256)
        warm = env.clock.tally().get("network", 0.0)
        print(f"{desk}: cold read network time {cold:,.0f} us; "
              f"five warm reads {warm:,.0f} us (served by the local cache)")

        manager = env.cache_managers[(desk, "default")].impl
        print(f"{desk}: cache stats hits={manager.hit_count} misses={manager.miss_count}")

    # Writes go through the front and invalidate its entries.
    writer = env.create_domain("desk-a", "writer")
    fs = narrow(env.resolve(writer, "/services/fs"), module.binding("file_system"))
    doc = fs.open_cached("/shared/report.txt")
    doc.read(0, 8)
    doc.write(0, b"REVISED!")
    print("\ndesk-a writer updated the file; its front was invalidated")
    print("re-read sees the new bytes:", doc.read(0, 8))


if __name__ == "__main__":
    main()
