#!/usr/bin/env python3
"""Replication with the replicon subcontract (Section 5).

Three server domains conspire to maintain one key-value store.  The
client holds a single `kv_store` object whose representation is a set of
door identifiers, one per replica.  We kill replicas while the client
keeps working: invoke tries each door in turn, prunes the dead ones, and
the piggybacked epoch protocol delivers a fresh replica set when a new
member joins.

Run:  python examples/replicated_kv.py
"""

from repro import Environment, narrow
from repro.runtime.faults import crash_domain
from repro.services.kv import ReplicatedKVService, kv_binding


def main() -> None:
    env = Environment()

    # Three replicas across three racks.
    replicas = [env.create_domain(f"rack-{i}", f"kv-replica-{i}") for i in range(3)]
    service = ReplicatedKVService(replicas)
    print(f"started {len(replicas)} replicas; replica-set epoch = {service.group.epoch}")

    # A client on a laptop picks the store up from the name service.
    client = env.create_domain("laptop", "client")
    env.bind(replicas[0], "/stores/main", service.store_for(replicas[0]))
    store = narrow(env.resolve(client, "/stores/main"), kv_binding())
    print(f"client object holds {len(store._rep.doors)} replica doors")

    store.put("paper", "subcontract")
    store.put("venue", "sosp-1993")
    print("wrote two keys; every replica has them:")
    for i, impl in enumerate(service.replicas):
        print(f"  replica {i}: {impl._data}")

    # Kill the replica the client talks to first.
    print("\ncrashing replica 0 ...")
    crash_domain(replicas[0])
    print("client reads anyway:", store.get("paper"))
    print(f"client pruned its target set to {len(store._rep.doors)} doors")

    # A new replica joins; the next reply piggybacks the fresh set.
    print("\nbringing up a fourth replica ...")
    newcomer = env.create_domain("rack-3", "kv-replica-3")
    service.group.prune_dead()
    service.add_replica(newcomer)
    store.put("status", "recovered")
    print(
        f"after one call the client holds {len(store._rep.doors)} doors "
        f"(epoch {store._rep.epoch})"
    )

    # Keep killing; the last replica standing still serves.
    print("\ncrashing replicas 1 and 2 ...")
    crash_domain(replicas[1])
    crash_domain(replicas[2])
    print("value from the last replica:", store.get("status"))
    print("\nthe client application never mentioned replication once.")


if __name__ == "__main__":
    main()
