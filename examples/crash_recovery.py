#!/usr/bin/env python3
"""Quiet crash recovery with the reconnectable subcontract (Section 8.3).

A server keeps its state in stable storage.  Its clients hold
reconnectable objects: a door identifier plus an object name.  When the
server crashes, door identifiers become invalid — so the subcontract
re-resolves the name, adopts the new incarnation's door, and retries.
The client application sees nothing but a slightly slower call.

Run:  python examples/crash_recovery.py
"""

from repro import Environment, compile_idl
from repro.marshal.buffer import MarshalBuffer
from repro.runtime.faults import crash_domain
from repro.subcontracts.reconnectable import ReconnectableServer

MAILBOX_IDL = """
interface mailbox {
    subcontract "reconnectable";
    void post(string message);
    sequence<string> messages();
}
"""

STABLE_STORAGE: list[str] = []  # the disk that survives crashes


class MailboxImpl:
    def __init__(self) -> None:
        self._messages = list(STABLE_STORAGE)

    def post(self, message: str) -> None:
        self._messages.append(message)
        STABLE_STORAGE.append(message)

    def messages(self) -> list[str]:
        return list(self._messages)


def boot_server(env, incarnation: int, binding):
    domain = env.create_domain("server-rack", f"mailboxd-{incarnation}")
    ReconnectableServer(domain).export(
        MailboxImpl(), binding, name="/services/mailbox"
    )
    print(f"mailboxd incarnation {incarnation} is up (rebinding /services/mailbox)")
    return domain


def main() -> None:
    env = Environment()
    module = compile_idl(MAILBOX_IDL, module_name="mailbox")
    binding = module.binding("mailbox")

    server = boot_server(env, 1, binding)

    # A client resolves the mailbox by name; what comes back is already a
    # reconnectable object, so narrowing is all it needs.
    from repro import narrow

    client = env.create_domain("laptop", "mail-client")
    mailbox = narrow(env.resolve(client, "/services/mailbox"), binding)

    mailbox.post("first message")
    mailbox.post("second message")
    print("client posted two messages:", mailbox.messages())

    print("\n*** mailboxd crashes ***")
    crash_domain(server)

    server = boot_server(env, 2, binding)
    # The same client object quietly recovers: resolve name, new door,
    # retry (Section 8.3).  No application-level error handling at all.
    mailbox.post("after the crash")
    print("client kept using the SAME object; messages now:",
          mailbox.messages())

    print("\n*** mailboxd crashes again, twice ***")
    crash_domain(server)
    server = boot_server(env, 3, binding)
    crash_domain(server)
    boot_server(env, 4, binding)
    print("still fine:", mailbox.messages())
    retry_time = env.clock.tally().get("retry_backoff", 0.0)
    print(f"total simulated time spent in reconnect backoff: {retry_time:,.0f} us")


if __name__ == "__main__":
    main()
