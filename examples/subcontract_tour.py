#!/usr/bin/env python3
"""A tour of every bundled subcontract.

Walks each subcontract through the life-cycle of Section 7 — export,
transmit, invoke, copy, consume — and shows the subcontract-specific
behaviour that makes each one worth having.  This is the paper's
Section 8 as running code.

Run:  python examples/subcontract_tour.py
"""

from repro import Environment, compile_idl, narrow, transfer
from repro.runtime.faults import crash_domain
from repro.subcontracts.cluster import ClusterServer
from repro.subcontracts.realtime import RealtimeServer, set_priority
from repro.subcontracts.reconnectable import ReconnectableServer
from repro.subcontracts.replicon import RepliconGroup
from repro.subcontracts.shm import ShmServer
from repro.subcontracts.simplex import SimplexServer
from repro.subcontracts.singleton import SingletonServer
from repro.subcontracts.transact import (
    TransactServer,
    TransactionCoordinator,
    begin_transaction,
)
from repro.subcontracts.video import VideoServer

IDL = """
interface cell {
    int32 get();
    void set(int32 v);
}
"""


class CellImpl:
    def __init__(self, v: int = 0) -> None:
        self.v = v

    def get(self) -> int:
        return self.v

    def set(self, v: int) -> None:
        self.v = v


def ship(env, src, dst, obj, binding):
    # The public move API: kernel-mediated, subcontract-routed.
    return transfer(obj, dst)


def main() -> None:
    env = Environment()
    module = compile_idl(IDL, module_name="tour")
    binding = module.binding("cell")
    server = env.create_domain("servers", "tour-server")
    client = env.create_domain("clients", "tour-client")

    print("=== singleton: the standard default ===")
    obj = ship(env, server, client,
               SingletonServer(server).export(CellImpl(1), binding), binding)
    print("remote get() ->", obj.get())
    obj.spring_consume()

    print("\n=== simplex: same shape + same-address-space optimization ===")
    inline = SimplexServer(server).export(CellImpl(2), binding, inline=True)
    print("inline get() ->", inline.get(),
          f"(doors in kernel: {env.kernel.live_door_count()} — none added)")

    print("\n=== cluster: one door for a whole set of objects ===")
    cluster = ClusterServer(server)
    doors_before = env.kernel.live_door_count()
    members = [cluster.export(CellImpl(i), binding) for i in range(100)]
    print(f"exported 100 objects, kernel doors grew by "
          f"{env.kernel.live_door_count() - doors_before}")
    sample = ship(env, server, client, members[42], binding)
    print("member #42 get() ->", sample.get())

    print("\n=== replicon: replicated state, failover inside invoke ===")
    group = RepliconGroup(binding)
    impls = [CellImpl(7) for _ in range(3)]
    domains = [env.create_domain("servers", f"replica-{i}") for i in range(3)]
    for domain, impl in zip(domains, impls):
        group.add_replica(domain, impl)
    robj = ship(env, domains[0], client, group.make_object(domains[0]), binding)
    crash_domain(domains[0])
    print("get() with replica 0 dead ->", robj.get())

    print("\n=== caching: reads served by a machine-local cache manager ===")
    env.install_cache_manager(env.machine("clients"))
    from repro.subcontracts.caching import CachingServer

    cobj = ship(env, server, client,
                CachingServer(server).export(CellImpl(9), binding), binding)
    cobj.get()
    carried_before = env.fabric.calls_carried
    cobj.get()
    print("warm get() crossed the network",
          env.fabric.calls_carried - carried_before, "times")

    print("\n=== reconnectable: survive a server crash by name ===")
    mdomain = env.create_domain("servers", "recon-1")
    robj2 = ship(env, mdomain, client,
                 ReconnectableServer(mdomain).export(
                     CellImpl(3), binding, name="/tour/cell"),
                 binding)
    crash_domain(mdomain)
    m2 = env.create_domain("servers", "recon-2")
    ReconnectableServer(m2).export(CellImpl(3), binding, name="/tour/cell")
    print("get() across a crash ->", robj2.get())

    print("\n=== shm: marshal straight into a shared region ===")
    neighbour = env.create_domain("servers", "neighbour")
    sobj = ship(env, server, neighbour,
                ShmServer(server).export(CellImpl(4), binding), binding)
    env.clock.reset_tally()
    sobj.get()
    print("memory-copy charge on a same-machine call:",
          env.clock.tally().get("memory_copy_byte", 0.0), "us")

    print("\n=== video: control via doors, media via datagrams ===")
    vs = VideoServer(server)
    vobj = ship(env, server, client, vs.export(CellImpl(5), binding), binding)
    frames = []
    vobj._subcontract.subscribe(vobj, lambda seq, data: frames.append(seq))
    vs.pump_frames([b"frame"] * 4)
    print("frames delivered over the unreliable path:", frames)

    print("\n=== realtime: caller priority rides with the call ===")
    rt = RealtimeServer(server)
    rtobj = ship(env, server, client, rt.export(CellImpl(6), binding), binding)
    set_priority(client, 12)
    rtobj.get()
    print("server-side peak priority during dispatch:", rt.peak_priority)

    print("\n=== migratory: the state moves to its callers ===")
    import json

    from repro.subcontracts.migratory import MigratoryServer

    class MigratingCell(CellImpl):
        def migrate_out(self):
            return json.dumps(self.v).encode()

        @classmethod
        def migrate_in(cls, state):
            return cls(json.loads(state.decode()))

    mobj = ship(env, server, client,
                MigratoryServer(server).export(MigratingCell(10), binding),
                binding)
    for _ in range(3):
        mobj.get()  # the third call pulls the state across
    carried_before = env.fabric.calls_carried
    print("get() after migration ->", mobj.get(),
          "| network calls for it:", env.fabric.calls_carried - carried_before)

    print("\n=== rawnet: RPC over raw packets, no doors at all ===")
    from repro.subcontracts.rawnet import RawNetServer

    raw = ship(env, server, client,
               RawNetServer(server).export(CellImpl(8), binding), binding)
    carried_before = env.fabric.calls_carried
    datagrams_before = env.fabric.datagrams_sent
    print("get() over packets ->", raw.get())
    print("door calls carried:", env.fabric.calls_carried - carried_before,
          "| datagrams sent:", env.fabric.datagrams_sent - datagrams_before)

    print("\n=== transact: transaction context in subcontract control ===")
    coordinator = TransactionCoordinator()

    class TxnCell(CellImpl):
        def __init__(self):
            super().__init__(0)
            self._pending = {}

        def set(self, v):
            txns = [t for t, ps in coordinator._participants.items() if self in ps]
            if txns:
                self._pending[txns[0]] = v
            else:
                self.v = v

        def txn_commit(self, txn_id):
            if txn_id in self._pending:
                self.v = self._pending.pop(txn_id)

        def txn_rollback(self, txn_id):
            self._pending.pop(txn_id, None)

    tobj = ship(env, server, client,
                TransactServer(server, coordinator).export(TxnCell(), binding),
                binding)
    txn = begin_transaction(client, coordinator)
    tobj.set(99)
    print("inside txn, committed value still", tobj.get())
    txn.commit()
    print("after commit, value is", tobj.get())

    print("\ntour complete —", f"{env.clock.now_us:,.0f} simulated us elapsed")


if __name__ == "__main__":
    main()
