#!/usr/bin/env python3
"""Dynamic subcontract discovery (Section 6.2).

An *old* application was linked only with the standard singleton,
simplex, and cluster subcontracts.  Somebody sends it a replicated
object.  The unmarshal path: singleton peeks the subcontract ID, the
registry misses, the naming context maps "replicon" to a library name,
and the dynamic linker loads it — but only from the administrator's
trusted directory.

Run:  python examples/dynamic_discovery.py
"""

import tempfile
from pathlib import Path

from repro import Environment, narrow
from repro.core.errors import UnknownSubcontractError
from repro.services.kv import ReplicatedKVService, kv_binding
from repro.subcontracts.cluster import ClusterClient
from repro.subcontracts.simplex import SimplexClient
from repro.subcontracts.singleton import SingletonClient

REPLICON_LIBRARY = """\
# replicon.so, in spirit: a dynamically loadable subcontract library.
from repro.subcontracts.replicon import RepliconClient

SUBCONTRACTS = {"replicon": RepliconClient}
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trusted = Path(tmp) / "trusted-libs"
        trusted.mkdir()
        untrusted = Path(tmp) / "random-downloads"
        untrusted.mkdir()

        env = Environment(trusted_lib_dirs=[trusted])

        # The replicated service, and its object bound in naming.
        replicas = [env.create_domain("dc", f"replica-{i}") for i in range(2)]
        service = ReplicatedKVService(replicas)
        env.bind(replicas[0], "/stores/main", service.store_for(replicas[0]))

        # The old application: standard libraries only, no replicon.
        oldapp = env.create_domain(
            "desk",
            "oldapp",
            subcontracts=[SingletonClient, SimplexClient, ClusterClient],
        )
        registry = oldapp.subcontract_registry
        print("oldapp links:", ", ".join(registry.known_ids()))

        # Attempt 1: no mapping, no library -> refused.
        try:
            env.resolve(oldapp, "/stores/main")
        except UnknownSubcontractError as exc:
            print(f"\nattempt 1 failed as expected:\n  {exc}")

        # Attempt 2: the mapping exists but the library sits in an
        # untrusted directory -> still refused (Section 6.2 security).
        (untrusted / "replicon_lib.py").write_text(REPLICON_LIBRARY)
        env.register_subcontract_library("replicon", "replicon_lib")
        try:
            env.resolve(oldapp, "/stores/main")
        except UnknownSubcontractError as exc:
            print(f"\nattempt 2 failed as expected (untrusted location):\n  {exc}")

        # Attempt 3: a privileged administrator installs the library on
        # the designated search path.
        (trusted / "replicon_lib.py").write_text(REPLICON_LIBRARY)
        store = narrow(env.resolve(oldapp, "/stores/main"), kv_binding())
        print("\nattempt 3 succeeded: the registry dynamically loaded",
              registry.dynamically_loaded)
        store.put("obtained", "dynamically")
        print("oldapp is now talking to a replicated store:",
              store.get("obtained"))
        print("oldapp links:", ", ".join(registry.known_ids()))


if __name__ == "__main__":
    main()
