"""Shared fixtures and helpers for the benchmark harness.

Every bench:

* measures wall-clock time with pytest-benchmark (the usual tables), and
* measures *simulated* microseconds on the kernel clock — the
  hardware-independent accounting that reproduces the paper's Section 9.3
  comparisons — and **asserts the paper's qualitative shape** (who wins,
  by roughly what factor), so `pytest benchmarks/` failing means the
  reproduction has drifted.

Numbers are also appended to ``benchmarks/results.txt`` so a run leaves a
readable record (EXPERIMENTS.md is written from those records).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.kernel.clock import ClockWindow
from repro.kernel.nucleus import Kernel
from repro.marshal.buffer import MarshalBuffer
from repro.runtime.env import Environment

RESULTS_PATH = Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS_PATH.write_text("# Subcontract reproduction: simulated-time results\n")
    yield


@pytest.fixture
def record():
    """Append one experiment record to the results file."""

    def _record(experiment: str, line: str) -> None:
        with RESULTS_PATH.open("a") as fh:
            fh.write(f"[{experiment}] {line}\n")

    return _record


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def local_env():
    return Environment(latency_us=0.0)


def sim_us(kernel_or_env, fn):
    """Run ``fn`` once and return the simulated microseconds it cost."""
    clock = getattr(kernel_or_env, "clock", None) or kernel_or_env.clock
    with ClockWindow(clock) as window:
        fn()
    return window.elapsed_us


def ship(kernel, src, dst, obj, binding):
    """Move a Spring object between domains (marshal/unmarshal)."""
    buffer = MarshalBuffer(kernel)
    obj._subcontract.marshal(obj, buffer)
    buffer.seal_for_transmission(src)
    return binding.unmarshal_from(buffer, dst)


COUNTER_IDL = """
interface counter {
    int32 add(int32 n);
    int32 total();
    void reset();
}
"""

BLOB_IDL = """
interface blob_store {
    bytes roundtrip(bytes data);
    void absorb(bytes data);
}
"""


class CounterImpl:
    def __init__(self) -> None:
        self.value = 0

    def add(self, n: int) -> int:
        self.value += n
        return self.value

    def total(self) -> int:
        return self.value

    def reset(self) -> None:
        self.value = 0


class BlobImpl:
    def roundtrip(self, data: bytes) -> bytes:
        return data

    def absorb(self, data: bytes) -> None:
        return None


@pytest.fixture(scope="session")
def counter_module():
    from repro.idl.compiler import compile_idl

    return compile_idl(COUNTER_IDL, module_name="bench.counter")


@pytest.fixture(scope="session")
def blob_module():
    from repro.idl.compiler import compile_idl

    return compile_idl(BLOB_IDL, module_name="bench.blob")
