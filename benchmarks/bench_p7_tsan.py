"""P7 — springtsan race-detector bench (PR 7's dynamic tentpole head).

Two questions, in the P3/P4/P5/P6 style:

1. **What does an uninstalled detector cost the hot path?**  Nothing
   measurable: with ``kernel.tsan = None`` (every kernel's default)
   each sync-edge hook is one attribute read and one branch.  The PR
   gates are the usual pair — the general-stub simulated time stays
   *bit-for-bit* the pre-P7 figure (asserted on every run against
   :data:`PRE_TSAN_GENERAL_SIM_US`), and the PR-time interleaved A/B
   against a worktree at the pre-P7 commit stays inside the 2% wall
   gate (committed in :data:`PR_AB_VS_PRE_TSAN`).

2. **What does an installed detector buy, and at what cost?**  The
   enabled leg re-measures the same general-stub probe with a
   collect-mode detector attached to the kernel: its wall overhead is
   *recorded* (vector clocks and tracked tables are not free and the
   number should be honest), its simulated time must still match the
   pre-P7 record bit-for-bit (the detector charges zero sim time), and
   the clean hot path must report zero races.  Detection power is the
   deterministic part: the four canonical race classes — unlocked
   write/write, lock-protected-but-disjoint locksets, a missed join
   edge, and the door-handoff pattern that must *not* be flagged — are
   replayed on every run and must classify 4/4.  ``run_concurrently``
   forks every worker's token before any thread starts, so the classes
   detect deterministically regardless of host scheduling.

The static head rides along: the whole-program springlint pass over
``src/`` must come back clean, and its wall time is recorded serial and
parallel (``--jobs 4``) so the cost of the project-wide call graph is
visible in the same artifact.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import pytest

from benchmarks.bench_p1_hotpath import best_of, build_world
from benchmarks.conftest import sim_us
from repro.runtime import tsan
from repro.runtime.threads import run_concurrently
from repro.runtime.tsan import DataRaceError, install_tsan, uninstall_tsan

#: tsan-uninstalled wall-us/call may regress at most this fraction
#: versus the pre-P7 tree measured in the same session
UNINSTALLED_OVERHEAD_GATE = 0.02

#: general-stub sim-us/call recorded by the PRE-P7 tree (the same figure
#: P3/P4/P5/P6 pinned: tracing, chaos, admission and now the race
#: detector all charge nothing while idle — and the detector charges
#: nothing even while live).
PRE_TSAN_GENERAL_SIM_US = 111.61000000010245

#: the PR-time wall gate record: ten alternating best-of-6000 rounds of
#: the P1 general-stub probe on this tree versus a worktree at the
#: pre-P7 commit (01b8c50), same machine, same session.  Floor-to-floor
#: across the alternating rounds (the P3–P6 statistic): best-of 10.67
#: instrumented vs 10.56 pre-P7 = +1.0%, inside the 2% gate.
PR_AB_VS_PRE_TSAN = {
    "pre_p7_commit": "01b8c50",
    "rounds_per_sample": 6000,
    "pre_p7_general_wall_us": [
        10.81, 10.89, 10.61, 10.56, 10.96, 10.93, 11.01, 10.95, 10.91, 10.79,
    ],
    "instrumented_general_wall_us": [
        10.75, 10.86, 10.76, 10.86, 11.21, 11.09, 10.67, 10.85, 11.15, 11.51,
    ],
    "best_of_overhead_pct": round(100.0 * (10.67 - 10.56) / 10.56, 1),
    "gate_pct": 100.0 * UNINSTALLED_OVERHEAD_GATE,
    "gate": "pass",
}

SRC_ROOT = Path(__file__).resolve().parents[1] / "src"


def _fresh_detector(kernel, **options):
    if tsan.active() is not None:
        uninstall_tsan()
    return install_tsan(kernel, **options)


def _raced(program) -> bool:
    """True when ``program()`` raises a DataRaceError naming both sites."""
    try:
        program()
    except DataRaceError as failure:
        first, second = failure.report.sites()
        return bool(first and second)
    return False


def detect_race_classes() -> dict:
    """Replay the four canonical race classes; all deterministic.

    Returns one boolean per class, True meaning the detector classified
    it correctly (flagged the three real races, stayed quiet on the
    door handoff, and flagged the handoff again once door edges were
    switched off — proving the suppression is load-bearing, not luck).
    """
    from repro.kernel.nucleus import Kernel

    results = {}

    # 1. unlocked write/write
    _fresh_detector(Kernel())
    shared = tsan.track({}, "p7.ww")
    results["unlocked_write_write"] = _raced(
        lambda: run_concurrently([lambda: shared.update(hits=1)] * 2)
    )

    # 2. lock-protected but disjoint locksets
    _fresh_detector(Kernel())
    lock_a = tsan.instrument_lock(threading.Lock(), "p7.lock-a")
    lock_b = tsan.instrument_lock(threading.Lock(), "p7.lock-b")
    disjoint = tsan.track({}, "p7.disjoint")

    def _under(lock):
        with lock:
            disjoint.update(hits=1)

    results["disjoint_locksets"] = _raced(
        lambda: run_concurrently([lambda: _under(lock_a), lambda: _under(lock_b)])
    )

    # 3. missed join edge: clean with thread edges, racy without
    def _join_program():
        joined = tsan.track({}, "p7.join")
        run_concurrently([lambda: joined.update(hits=1)])
        joined.update(hits=2)

    _fresh_detector(Kernel())
    clean_with_edges = not _raced(_join_program)
    _fresh_detector(Kernel(), thread_edges=False)
    results["missed_join_edge"] = clean_with_edges and _raced(_join_program)

    # 4. door handoff: an edge, not a race — and only because of the edge
    def _door_program(runtime):
        handoff = tsan.track({}, "p7.door")
        parcel = object()
        sent = threading.Event()

        def sender():
            handoff.update(payload=1)
            runtime.on_door_send(None, parcel)
            sent.set()

        def receiver():
            sent.wait(5.0)
            runtime.on_door_receive(None, parcel)
            handoff.update(payload=2)

        run_concurrently([sender, receiver])

    runtime = _fresh_detector(Kernel())
    suppressed = not _raced(lambda: _door_program(runtime))
    runtime = _fresh_detector(Kernel(), door_edges=False)
    results["door_handoff_suppressed"] = suppressed and _raced(
        lambda: _door_program(runtime)
    )

    uninstall_tsan()
    return results


def springlint_whole_program() -> dict:
    """Whole-program springlint over src/: must be clean; time it."""
    from repro.analysis import default_analyzer

    legs = {}
    for jobs in (1, 4):
        start = time.perf_counter()
        findings = default_analyzer().run_paths([SRC_ROOT], jobs=jobs)
        elapsed_ms = round(1e3 * (time.perf_counter() - start), 1)
        assert findings == [], (
            f"whole-program springlint found {len(findings)} issue(s) in src/"
        )
        legs[f"jobs_{jobs}_wall_ms"] = elapsed_ms
    legs["files"] = len(list(SRC_ROOT.rglob("*.py")))
    legs["findings"] = 0
    return legs


def _detached_world():
    """A P1 world with no detector attached — the default posture.

    Under ``REPRO_TSAN=1`` every new kernel auto-installs a detector,
    so the bench detaches after construction: the uninstalled leg must
    measure what every kernel ships with, env var or not.
    """
    world = build_world()
    if tsan.active() is not None:
        uninstall_tsan()
    return world


def run(rounds: int = 20000, warmup: int = 2000) -> dict:
    """Run the P7 springtsan bench; returns the measurement dict."""
    if tsan.active() is not None:
        uninstall_tsan()

    # Uninstalled leg first, with no detector anywhere in the process:
    # this is every kernel's default posture.
    kernel_off, _, general_off, _ = _detached_world()
    for _ in range(warmup):
        general_off.total()
    sim_off = min(sim_us(kernel_off, general_off.total) for _ in range(5))
    wall_off = round(best_of(general_off.total, rounds), 2)

    # Enabled leg: same world shape, collect-mode detector attached.
    kernel_on, _, general_on, _ = _detached_world()
    runtime = install_tsan(kernel_on, report_mode="collect")
    try:
        for _ in range(warmup):
            general_on.total()
        sim_on = min(sim_us(kernel_on, general_on.total) for _ in range(5))
        wall_on = round(best_of(general_on.total, rounds), 2)
        races = list(runtime.races)
        edges = runtime.stats["edges"]
    finally:
        uninstall_tsan()

    results = {
        "rounds": rounds,
        "uninstalled_general_wall_us": wall_off,
        "enabled_general_wall_us": wall_on,
        "uninstalled_general_sim_us": sim_off,
        "enabled_general_sim_us": sim_on,
        "enabled_wall_overhead_pct": round(
            100.0 * (wall_on - wall_off) / wall_off, 1
        ),
        "enabled_sync_edges_observed": edges,
        "race_classes": detect_race_classes(),
        "springlint_whole_program": springlint_whole_program(),
    }

    # -- deterministic invariants (machine-independent) -----------------

    # Uninstalled mode charges not one simulated nanosecond: sim time
    # matches the recorded pre-P7 tree bit-for-bit.
    assert abs(sim_off - PRE_TSAN_GENERAL_SIM_US) < 1e-6, (
        f"tsan-uninstalled sim time drifted: {sim_off} != pre-P7 "
        f"record {PRE_TSAN_GENERAL_SIM_US}"
    )
    # The detector watches the clock, never advances it: enabled sim
    # time is the same bit-for-bit figure.
    assert sim_on == sim_off, (
        f"enabled detector charged sim time: {sim_on} != {sim_off}"
    )
    # The clean hot path must be reported clean — by a detector that
    # demonstrably looked at it.
    assert races == [], f"detector flagged the race-free hot path: {races}"
    assert edges > 0, "enabled leg recorded no sync edges: detector inert"
    # Detection power: all four canonical classes classified correctly.
    missed = [name for name, hit in results["race_classes"].items() if not hit]
    assert not missed, f"race classes misclassified: {missed}"
    return results


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


@pytest.fixture
def tsan_worlds():
    if tsan.active() is not None:
        uninstall_tsan()
    _, _, general_off, _ = _detached_world()
    kernel_on, _, general_on, _ = _detached_world()
    install_tsan(kernel_on, report_mode="collect")
    yield general_off, general_on
    if tsan.active() is not None:
        uninstall_tsan()


@pytest.mark.benchmark(group="P7-tsan")
def bench_p7_uninstalled_general(benchmark, tsan_worlds):
    general_off, _ = tsan_worlds
    benchmark(general_off.total)


@pytest.mark.benchmark(group="P7-tsan")
def bench_p7_enabled_general(benchmark, tsan_worlds):
    _, general_on = tsan_worlds
    benchmark(general_on.total)


@pytest.mark.bench_smoke
def bench_p7_shape_and_record(record):
    results = run(rounds=2000, warmup=500)
    record("P7", f"uninstalled general: {results['uninstalled_general_wall_us']:8.2f} wall-us/call (best)")
    record("P7", f"enabled general:     {results['enabled_general_wall_us']:8.2f} wall-us/call (best)")
    record("P7", f"enabled overhead:    {results['enabled_wall_overhead_pct']:+.1f}% wall (sim: bit-for-bit, asserted)")
    for name, hit in results["race_classes"].items():
        record("P7", f"race class {name}: {'detected' if hit else 'MISSED'}")
    lint = results["springlint_whole_program"]
    record(
        "P7",
        f"springlint whole-program over src: {lint['findings']} findings in "
        f"{lint['files']} files ({lint['jobs_1_wall_ms']:.0f} ms serial, "
        f"{lint['jobs_4_wall_ms']:.0f} ms at --jobs 4)",
    )
