"""A4 (ablation) — object migration as a subcontract.

Section 1 lists object migration among the semantics whole RPC systems
were built around; `repro.subcontracts.migratory` supplies it as a plug-in
subcontract instead.  The interesting curve: mean per-call latency for a
client that makes N calls, as a function of N.  The first
``DEFAULT_THRESHOLD`` calls pay remote prices plus a one-time state
transfer; everything after is local, so the amortized cost collapses.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.conftest import ship, sim_us
from repro.marshal.buffer import MarshalBuffer
from repro.runtime.env import Environment
from repro.subcontracts.migratory import DEFAULT_THRESHOLD, MigratoryServer
from repro.subcontracts.singleton import SingletonServer


class Tally:
    def __init__(self, value: int = 0) -> None:
        self.value = value

    def add(self, n):
        self.value += n
        return self.value

    def total(self):
        return self.value

    def reset(self):
        self.value = 0

    def migrate_out(self) -> bytes:
        return json.dumps(self.value).encode()

    @classmethod
    def migrate_in(cls, state: bytes) -> "Tally":
        return cls(json.loads(state.decode()))


CALL_COUNTS = (1, 3, 10, 50, 200)


def _client_object(counter_module, server_cls):
    env = Environment()
    server = env.create_domain("east", "server")
    client = env.create_domain("west", "client")
    binding = counter_module.binding("counter")
    exported = server_cls(server).export(Tally(), binding)
    return env, ship(env.kernel, server, client, exported, binding)


@pytest.mark.benchmark(group="A4-migration")
def bench_call_before_migration(benchmark, counter_module):
    env, obj = _client_object(counter_module, MigratoryServer)
    obj._subcontract.migration_threshold = None  # pin it remote
    benchmark(obj.total)


@pytest.mark.benchmark(group="A4-migration")
def bench_call_after_migration(benchmark, counter_module):
    env, obj = _client_object(counter_module, MigratoryServer)
    obj._subcontract.migrate(obj)
    benchmark(obj.total)


@pytest.mark.benchmark(group="A4-migration")
def bench_a4_shape_and_record(benchmark, counter_module, record):
    env0, warmed = _client_object(counter_module, MigratoryServer)
    warmed._subcontract.migrate(warmed)
    benchmark(warmed.total)

    singleton_mean = None
    means = []
    for calls in CALL_COUNTS:
        env_m, migratory_obj = _client_object(counter_module, MigratoryServer)
        total = sum(sim_us(env_m, migratory_obj.total) for _ in range(calls))
        mean = total / calls
        means.append(mean)

        env_s, singleton_obj = _client_object(counter_module, SingletonServer)
        s_total = sum(sim_us(env_s, singleton_obj.total) for _ in range(calls))
        singleton_mean = s_total / calls
        record(
            "A4",
            f"N={calls:4d} calls: migratory mean {mean:9.1f} sim-us, "
            f"server-based mean {singleton_mean:9.1f} sim-us",
        )

    # Shape: the classic migration trade-off.  N at the threshold pays a
    # *premium* over staying remote (the state transfer lands there);
    # beyond it the amortized cost falls monotonically and ends far below
    # the stay-remote cost.
    assert means[1] > means[0]  # the migration call itself is the hump
    assert all(means[i] > means[i + 1] for i in range(1, len(means) - 1))
    assert means[1] > singleton_mean  # premium at the threshold
    assert means[-1] < 0.1 * singleton_mean
