"""E9 — Section 6.2: the cost of dynamic subcontract discovery.

Rows regenerated: unmarshal latency of a replicon object in a domain that
(a) already links replicon, (b) must dynamically load it (first
encounter), (c) has already loaded it (second encounter).

Shape: the first encounter pays a large one-time library-load penalty;
afterwards unmarshalling matches the statically-linked case.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CounterImpl, sim_us
from repro.core.discovery import DiscoveryService, LibraryLoader
from repro.core.registry import SubcontractRegistry
from repro.kernel.nucleus import Kernel
from repro.marshal.buffer import MarshalBuffer
from repro.subcontracts import standard_subcontracts
from repro.subcontracts.cluster import ClusterClient
from repro.subcontracts.replicon import RepliconGroup
from repro.subcontracts.simplex import SimplexClient
from repro.subcontracts.singleton import SingletonClient

REPLICON_LIB = (
    "from repro.subcontracts.replicon import RepliconClient\n"
    "SUBCONTRACTS = {'replicon': RepliconClient}\n"
)


@pytest.fixture
def world(tmp_path, counter_module):
    trusted = tmp_path / "trusted"
    trusted.mkdir()
    (trusted / "replicon_lib.py").write_text(REPLICON_LIB)

    kernel = Kernel()
    binding = counter_module.binding("counter")
    replica = kernel.create_domain("replica")
    SubcontractRegistry(replica).register_many(standard_subcontracts())
    group = RepliconGroup(binding)
    group.add_replica(replica, CounterImpl())

    def wire_form():
        obj = group.make_object(replica)
        buffer = MarshalBuffer(kernel)
        obj._subcontract.marshal(obj, buffer)
        buffer.seal_for_transmission(replica)
        return buffer

    linked = kernel.create_domain("linked")
    SubcontractRegistry(linked).register_many(standard_subcontracts())

    restricted = kernel.create_domain("restricted")
    loader = LibraryLoader([trusted], clock=kernel.clock)
    discovery = DiscoveryService({"replicon": "replicon_lib"}.get, loader)
    registry = SubcontractRegistry(restricted, discovery)
    registry.register_many([SingletonClient, SimplexClient, ClusterClient])

    return kernel, binding, wire_form, linked, restricted


def _unmarshal(binding, wire_form, domain):
    obj = binding.unmarshal_from(wire_form(), domain)
    obj.spring_consume()


@pytest.mark.benchmark(group="E9-discovery")
def bench_unmarshal_statically_linked(benchmark, world):
    kernel, binding, wire_form, linked, _ = world
    benchmark(_unmarshal, binding, wire_form, linked)


@pytest.mark.benchmark(group="E9-discovery")
def bench_unmarshal_after_dynamic_load(benchmark, world):
    kernel, binding, wire_form, _, restricted = world
    _unmarshal(binding, wire_form, restricted)  # pay the load once
    benchmark(_unmarshal, binding, wire_form, restricted)


@pytest.mark.benchmark(group="E9-discovery")
def bench_e9_shape_and_record(benchmark, world, record):
    kernel, binding, wire_form, linked, restricted = world
    benchmark(_unmarshal, binding, wire_form, linked)

    known = min(sim_us(kernel, lambda: _unmarshal(binding, wire_form, linked))
                for _ in range(3))
    first = sim_us(kernel, lambda: _unmarshal(binding, wire_form, restricted))
    later = min(sim_us(kernel, lambda: _unmarshal(binding, wire_form, restricted))
                for _ in range(3))
    record("E9", f"statically linked unmarshal: {known:10.1f} sim-us")
    record("E9", f"first encounter (dyn load):  {first:10.1f} sim-us")
    record("E9", f"subsequent encounters:       {later:10.1f} sim-us")

    # Shape: the first encounter pays the load; later ones match the
    # statically linked cost (the code is cached in the registry).
    assert first > 10 * known
    assert later < known * 1.25
    load = kernel.clock.model.library_load_us
    assert first - later >= load * 0.9
