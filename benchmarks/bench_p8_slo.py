"""P8 — SLO plane bench (windowed quantiles, attribution, obsd head).

Two questions, in the P3/P4/P5/P6/P7 style:

1. **What does the uninstalled windowed feed cost the hot path?**
   Nothing measurable: with ``tracer.windows = None`` (every tracer's
   default — and the NullTracer worlds the P1 probe builds never reach
   even that) each span/event finish is one attribute read and one
   branch.  The PR gates are the usual pair — the general-stub
   simulated time stays *bit-for-bit* the pre-P8 figure (asserted on
   every run against :data:`PRE_P8_GENERAL_SIM_US`), and the PR-time
   interleaved A/B against a worktree at the pre-P8 commit stays inside
   the 2% wall gate (committed in :data:`PR_AB_VS_PRE_P8`).

2. **What does the installed plane buy, and at what cost?**  The
   enabled leg re-measures the same general-stub probe with a live
   tracer *and* a :class:`~repro.obs.windows.WindowedSeries` attached:
   wall overhead is recorded (sketch inserts are not free and the
   number should be honest), the simulated surcharge is the explicit,
   deterministic ``trace_span``/``window_probe`` tariff (asserted
   identical across two fresh worlds), and the windowed snapshot the
   run produces must agree with the live series exactly — the offline
   analyzer over the wire form IS the live answer.  Micro-legs record
   the raw :class:`~repro.obs.sketch.Sketch` insert/quantile cost and
   the end-to-end :class:`~repro.obs.slo.SloEngine` evaluation time so
   the obsd pull path's constituents are visible in the same artifact.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.bench_p1_hotpath import best_of, build_world
from benchmarks.conftest import sim_us
from repro.obs.sketch import Sketch
from repro.obs.slo import SloEngine, SloPolicy
from repro.obs.tracer import install_tracer
from repro.obs.windows import WindowedSeries, install_windows, snapshot_quantile

#: windows-uninstalled wall-us/call may regress at most this fraction
#: versus the pre-P8 tree measured in the same session
UNINSTALLED_OVERHEAD_GATE = 0.02

#: general-stub sim-us/call recorded by the PRE-P8 tree (the same figure
#: P3/P4/P5/P6/P7 pinned: tracing, chaos, admission, the race detector
#: and now the windowed feed all charge nothing while uninstalled).
PRE_P8_GENERAL_SIM_US = 111.61000000010245

#: the PR-time wall gate record: ten alternating best-of-6000 rounds of
#: the P1 general-stub probe on this tree versus a worktree at the
#: pre-P8 commit (638e430), same machine, same session.  Floor-to-floor
#: across the alternating rounds (the P3–P7 statistic): best-of 10.65
#: instrumented vs 10.60 pre-P8 = +0.5%, inside the 2% gate.
PR_AB_VS_PRE_P8 = {
    "pre_p8_commit": "638e430",
    "rounds_per_sample": 6000,
    "pre_p8_general_wall_us": [
        10.60, 10.63, 11.14, 10.76, 11.05, 10.73, 11.04, 10.68, 10.62, 10.64,
    ],
    "instrumented_general_wall_us": [
        10.87, 12.23, 11.11, 10.65, 11.12, 10.82, 10.80, 10.98, 10.93, 10.91,
    ],
    "best_of_overhead_pct": round(100.0 * (10.65 - 10.60) / 10.60, 1),
    "gate_pct": 100.0 * UNINSTALLED_OVERHEAD_GATE,
    "gate": "pass",
}


def sketch_micro(values: int = 100_000) -> dict:
    """Raw sketch cost: ns/insert and us/quantile at ``values`` items."""
    sketch = Sketch()
    seed = 0x9E3779B9
    samples = []
    for i in range(values):
        seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF
        samples.append(1.0 + (seed % 1_000_000) / 100.0)
    start = time.perf_counter()
    insert = sketch.insert
    for value in samples:
        insert(value)
    insert_ns = 1e9 * (time.perf_counter() - start) / values
    start = time.perf_counter()
    reads = 200
    for _ in range(reads):
        sketch.quantile(0.99)
    quantile_us = 1e6 * (time.perf_counter() - start) / reads
    return {
        "values": values,
        "buckets": len(sketch._buckets),
        "insert_ns": round(insert_ns, 1),
        "quantile_p99_us": round(quantile_us, 2),
    }


def slo_eval_micro(windows: int = 64, calls_per_window: int = 50) -> dict:
    """End-to-end SLO evaluation cost over a filled series."""
    series = WindowedSeries(window_us=1_000.0, retention=windows)
    for index in range(windows):
        now = index * 1_000.0 + 1.0
        for call in range(calls_per_window):
            series.count("svc", "invocations", now_us=now)
            series.observe("svc", "invoke_sim_us", 50.0 + call, now_us=now)
    engine = SloEngine(
        [
            SloPolicy(
                name="bench-latency", scope="svc", latency_p_us=80.0,
                fast_windows=4, slow_windows=32,
            ),
            SloPolicy(
                name="bench-errors", scope="svc", max_error_rate=0.01,
                fast_windows=4, slow_windows=32,
            ),
        ]
    )
    evaluations = 200
    start = time.perf_counter()
    for _ in range(evaluations):
        states = engine.evaluate(series)
    eval_us = 1e6 * (time.perf_counter() - start) / evaluations
    # replaying the engine over the wire snapshot must agree exactly
    replayed = engine.evaluate_snapshot(series.snapshot())
    assert states == replayed, "snapshot replay diverged from live evaluation"
    return {
        "windows": windows,
        "calls_per_window": calls_per_window,
        "evaluate_us": round(eval_us, 1),
        "states": sorted(s["state"] for s in states),
    }


def _windowed_world():
    """A P1 world with the full obs v2 plane attached."""
    kernel, raw, general, special = build_world()
    tracer = install_tracer(kernel)
    install_windows(tracer, window_us=50_000.0, retention=256)
    return kernel, general, tracer


def run(rounds: int = 20000, warmup: int = 2000) -> dict:
    """Run the P8 SLO-plane bench; returns the measurement dict."""
    # Uninstalled leg first: every kernel's default posture (NullTracer,
    # no windows object anywhere near the hot path).
    kernel_off, _, general_off, _ = build_world()
    for _ in range(warmup):
        general_off.total()
    sim_off = min(sim_us(kernel_off, general_off.total) for _ in range(5))
    wall_off = round(best_of(general_off.total, rounds), 2)

    # Enabled leg: same world shape, tracer + windowed series attached.
    kernel_on, general_on, tracer = _windowed_world()
    for _ in range(warmup):
        general_on.total()
    sim_on = min(sim_us(kernel_on, general_on.total) for _ in range(5))
    wall_on = round(best_of(general_on.total, rounds), 2)
    windows = tracer.windows
    live_p99 = windows.quantile("singleton", "invoke_sim_us", 0.99)
    wire_p99 = snapshot_quantile(
        windows.snapshot(), "singleton", "invoke_sim_us", 0.99
    )

    results = {
        "rounds": rounds,
        "uninstalled_general_wall_us": wall_off,
        "enabled_general_wall_us": wall_on,
        "uninstalled_general_sim_us": sim_off,
        "enabled_general_sim_us": sim_on,
        "enabled_wall_overhead_pct": round(
            100.0 * (wall_on - wall_off) / wall_off, 1
        ),
        "enabled_sim_surcharge_us": round(sim_on - sim_off, 6),
        "windowed_observations": windows.recorded,
        "sketch_micro": sketch_micro(),
        "slo_eval_micro": slo_eval_micro(),
    }

    # -- deterministic invariants (machine-independent) -----------------

    # Uninstalled mode charges not one simulated nanosecond: sim time
    # matches the recorded pre-P8 tree bit-for-bit.
    assert abs(sim_off - PRE_P8_GENERAL_SIM_US) < 1e-6, (
        f"windows-uninstalled sim time drifted: {sim_off} != pre-P8 "
        f"record {PRE_P8_GENERAL_SIM_US}"
    )
    # The enabled surcharge is a deterministic tariff, not noise: a
    # second fresh windowed world charges the identical figure.
    kernel_again, general_again, _ = _windowed_world()
    for _ in range(warmup):
        general_again.total()
    sim_again = min(sim_us(kernel_again, general_again.total) for _ in range(5))
    assert sim_again == sim_on, (
        f"enabled sim tariff nondeterministic: {sim_again} != {sim_on}"
    )
    assert sim_on > sim_off, "enabled plane charged nothing: feed inert"
    # The wire form IS the analysis form: offline == live, bit for bit.
    assert wire_p99 == live_p99 > 0.0, (
        f"snapshot p99 {wire_p99} != live p99 {live_p99}"
    )
    assert windows.recorded > 0, "enabled leg recorded no observations"
    return results


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


@pytest.fixture
def slo_worlds():
    _, _, general_off, _ = build_world()
    _, general_on, _ = _windowed_world()
    return general_off, general_on


@pytest.mark.benchmark(group="P8-slo")
def bench_p8_uninstalled_general(benchmark, slo_worlds):
    general_off, _ = slo_worlds
    benchmark(general_off.total)


@pytest.mark.benchmark(group="P8-slo")
def bench_p8_enabled_general(benchmark, slo_worlds):
    _, general_on = slo_worlds
    benchmark(general_on.total)


@pytest.mark.bench_smoke
def bench_p8_shape_and_record(record):
    results = run(rounds=2000, warmup=500)
    record("P8", f"uninstalled general: {results['uninstalled_general_wall_us']:8.2f} wall-us/call (best)")
    record("P8", f"enabled general:     {results['enabled_general_wall_us']:8.2f} wall-us/call (best)")
    record("P8", f"enabled overhead:    {results['enabled_wall_overhead_pct']:+.1f}% wall, +{results['enabled_sim_surcharge_us']:.2f} sim-us/call tariff (deterministic, asserted)")
    micro = results["sketch_micro"]
    record("P8", f"sketch: {micro['insert_ns']:.0f} ns/insert, p99 read {micro['quantile_p99_us']:.2f} us at {micro['values']} values ({micro['buckets']} buckets)")
    slo = results["slo_eval_micro"]
    record("P8", f"slo engine: {slo['evaluate_us']:.0f} us/evaluation over {slo['windows']} windows (snapshot replay exact, asserted)")
