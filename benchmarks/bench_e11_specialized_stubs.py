"""E11 — Section 9.1: subcontracts versus specialized stubs.

"As a future direction, we are interested in providing specialized stubs
for some particularly popular and performance-critical combinations of
types and subcontracts."

Rows regenerated: per-call cost of the general path (generated stub ->
method table -> subcontract vector) versus the library's real
``repro.idl.specialize`` feature, which fuses the singleton subcontract
into generated stubs for this one (type, subcontract) combination.  The
general stubs stay available for every other subcontract (verified by
tests/idl/test_specialize.py).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import COUNTER_IDL, CounterImpl, ship, sim_us
from repro.core.registry import SubcontractRegistry
from repro.idl.compiler import compile_idl
from repro.idl.specialize import specialize
from repro.kernel.nucleus import Kernel
from repro.subcontracts import standard_subcontracts
from repro.subcontracts.singleton import SingletonServer


@pytest.fixture
def world():
    kernel = Kernel()
    server = kernel.create_domain("server")
    client = kernel.create_domain("client")
    for domain in (server, client):
        SubcontractRegistry(domain).register_many(standard_subcontracts())

    general_module = compile_idl(COUNTER_IDL, "e11_general")
    special_module = compile_idl(COUNTER_IDL, "e11_special")
    specialize(special_module, "counter", "singleton")

    def exported(module):
        binding = module.binding("counter")
        return ship(
            kernel,
            server,
            client,
            SingletonServer(server).export(CounterImpl(), binding),
            binding,
        )

    general_obj = exported(general_module)
    special_obj = exported(special_module)
    assert special_obj._method_table is not general_obj._method_table

    def specialized_total(spring_obj=special_obj):
        return spring_obj.total()

    return kernel, general_obj, specialized_total


@pytest.mark.benchmark(group="E11-specialized")
def bench_general_stub(benchmark, world):
    _, obj, _ = world
    benchmark(obj.total)


@pytest.mark.benchmark(group="E11-specialized")
def bench_specialized_stub(benchmark, world):
    _, obj, specialized_total = world
    benchmark(specialized_total)


@pytest.mark.benchmark(group="E11-specialized")
def bench_e11_shape_and_record(benchmark, world, record):
    kernel, obj, specialized_total = world
    benchmark(specialized_total)
    assert obj.total() == specialized_total()

    def best_of(fn, rounds=2000):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best * 1e6

    general = best_of(obj.total)
    specialized = best_of(specialized_total)
    record("E11", f"general stub:     {general:8.2f} wall-us/call (best)")
    record("E11", f"specialized stub: {specialized:8.2f} wall-us/call (best)")
    record("E11", f"specialization ceiling: {general / specialized:.2f}x")

    # Shape: the fused combination is at least as fast (wall clock, with
    # a small tolerance for scheduler noise), and in simulated time it
    # saves exactly the client-side indirect calls.
    assert specialized <= general * 1.05
    sim_general = min(sim_us(kernel, obj.total) for _ in range(5))
    sim_special = min(sim_us(kernel, specialized_total) for _ in range(5))
    record("E11", f"sim: general {sim_general:.2f} us, specialized {sim_special:.2f} us")
    model = kernel.clock.model
    expected_saving = 2 * model.indirect_call_us
    assert sim_general - sim_special >= expected_saving - 1e-9
