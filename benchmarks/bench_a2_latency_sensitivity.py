"""A2 (ablation) — how the caching subcontract's win scales with network
latency.

The paper's Figure 5 setup presumes a network expensive enough that a
machine-local cache pays off.  This ablation sweeps the fabric latency to
show where that presumption holds: the warm-read speedup grows linearly
with latency, while the registration overhead (E5's unmarshal cost) is
amortized over fewer reads as the network gets slower.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import sim_us
from repro.runtime.env import Environment
from repro.services.fs import FileServer, fs_module
from repro.marshal.buffer import MarshalBuffer

LATENCIES = (100.0, 500.0, 2500.0, 12500.0)


def _world(latency_us: float):
    env = Environment(latency_us=latency_us)
    env.install_cache_manager(env.machine("desk"))
    fs_domain = env.create_domain("file-server", "fs")
    client = env.create_domain("desk", "user")
    file_server = FileServer(fs_domain)
    file_server.make_file("/doc", b"d" * 512)
    root = file_server.root.spring_copy()
    buffer = MarshalBuffer(env.kernel)
    root._subcontract.marshal(root, buffer)
    buffer.seal_for_transmission(fs_domain)
    fs = fs_module().binding("file_system").unmarshal_from(buffer, client)
    return env, fs


@pytest.mark.benchmark(group="A2-latency")
@pytest.mark.parametrize("latency", LATENCIES)
def bench_warm_read_at_latency(benchmark, latency):
    env, fs = _world(latency)
    handle = fs.open_cached("/doc")
    handle.read(0, 64)
    benchmark(handle.read, 0, 64)


@pytest.mark.benchmark(group="A2-latency")
def bench_a2_shape_and_record(benchmark, record):
    env0, fs0 = _world(LATENCIES[0])
    handle0 = fs0.open_cached("/doc")
    handle0.read(0, 64)
    benchmark(handle0.read, 0, 64)

    speedups = []
    for latency in LATENCIES:
        env, fs = _world(latency)
        plain = fs.open("/doc")
        cached = fs.open_cached("/doc")
        cached.read(0, 64)  # warm
        remote = min(sim_us(env, lambda: plain.read(0, 64)) for _ in range(3))
        warm = min(sim_us(env, lambda: cached.read(0, 64)) for _ in range(3))
        speedup = remote / warm
        speedups.append(speedup)
        record(
            "A2",
            f"latency={latency:8.0f} us: remote {remote:9.1f}, "
            f"warm {warm:7.1f}, speedup {speedup:6.1f}x",
        )

    # Shape: the slower the network, the bigger caching's win — strictly
    # monotone because warm reads never touch the fabric.
    assert all(speedups[i] < speedups[i + 1] for i in range(len(speedups) - 1))
