"""A5 (ablation) — Section 8.4: the video subcontract's media path.

"One [future direction] is to develop a subcontract that lets video
objects encapsulate a specific network packet protocol for live video."

Series regenerated: delivery ratio and per-frame cost of the datagram
media path versus pushing the same frames as reliable door calls, and the
media path's graceful degradation under loss — the property live video
wants (a late/lost frame is worthless; never stall the stream for it).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import ship, sim_us
from repro.idl.compiler import compile_idl
from repro.marshal.buffer import MarshalBuffer
from repro.runtime.env import Environment
from repro.subcontracts.singleton import SingletonServer
from repro.subcontracts.video import VideoServer

FEED_IDL = """
interface feed {
    subcontract "video";
    void push_frame(bytes frame);   // the reliable-path alternative
    string title();
}
"""

LOSS_RATES = (0.0, 0.1, 0.3)
FRAME = b"f" * 256
FRAMES = 50


class FeedImpl:
    def __init__(self):
        self.pushed = 0

    def push_frame(self, frame):
        self.pushed += 1

    def title(self):
        return "bench"


def _world(loss):
    env = Environment(datagram_loss=loss, seed=7)
    module = compile_idl(FEED_IDL, f"a5_feed_{loss}")
    binding = module.binding("feed")
    server = env.create_domain("studio", "server")
    client = env.create_domain("home", "client")
    video_server = VideoServer(server)
    obj = ship(
        env.kernel, server, client, video_server.export(FeedImpl(), binding), binding
    )
    return env, video_server, obj


@pytest.mark.benchmark(group="A5-video")
def bench_media_path_batch(benchmark, counter_module):
    env, video_server, obj = _world(0.0)
    received = []
    obj._subcontract.subscribe(obj, lambda seq, data: received.append(seq))
    benchmark(video_server.pump_frames, [FRAME] * 10)


@pytest.mark.benchmark(group="A5-video")
def bench_reliable_path_batch(benchmark, counter_module):
    env, _, obj = _world(0.0)

    def push_batch():
        for _ in range(10):
            obj.push_frame(FRAME)

    benchmark(push_batch)


@pytest.mark.benchmark(group="A5-video")
def bench_a5_shape_and_record(benchmark, record):
    env0, video_server0, obj0 = _world(0.0)
    received0: list[int] = []
    obj0._subcontract.subscribe(obj0, lambda seq, data: received0.append(seq))
    benchmark(video_server0.pump_frames, [FRAME])

    # Per-frame cost: media datagram vs reliable door call.
    media_cost = sim_us(env0, lambda: video_server0.pump_frames([FRAME]))
    reliable_cost = sim_us(env0, lambda: obj0.push_frame(FRAME))
    record("A5", f"media frame:    {media_cost:9.1f} sim-us (fire-and-forget)")
    record("A5", f"reliable frame: {reliable_cost:9.1f} sim-us (door round trip)")
    # One-way datagram beats the two-way door call.
    assert media_cost < reliable_cost

    # Loss sweep: delivery degrades gracefully, order is preserved, the
    # control path keeps working, and the sender never stalls.
    for loss in LOSS_RATES:
        env, video_server, obj = _world(loss)
        received: list[int] = []
        obj._subcontract.subscribe(obj, lambda seq, data: received.append(seq))
        before = env.clock.now_us
        sent = video_server.pump_frames([FRAME] * FRAMES)
        elapsed = env.clock.now_us - before
        ratio = len(received) / sent
        record(
            "A5",
            f"loss={loss:4.0%}: delivered {len(received)}/{sent} "
            f"({ratio:4.0%}), sender time {elapsed:9.1f} sim-us",
        )
        assert sent == FRAMES
        assert received == sorted(received)
        assert obj.title() == "bench"
        if loss == 0.0:
            assert ratio == 1.0
        else:
            assert 1.0 - loss - 0.25 < ratio < 1.0 - loss + 0.25
