"""P5 — admission-control bench (PR 5's overload-protection gates).

Two questions, answered in the same style as P3/P4:

1. **What does an uninstalled controller cost the hot path?**  Nothing
   measurable: with ``kernel.admission = None`` (every kernel's default)
   the interception point is one attribute read and one branch.  The PR
   gate is that this regresses pre-admission ``general_wall_us`` by at
   most 2% (same-session interleaved A/B against the pre-admission
   commit, committed in :data:`PR_AB_VS_PRE_ADMISSION`), and that
   uninstalled simulated time is *bit-for-bit* the pre-admission figure
   (asserted on every run against :data:`PRE_ADMISSION_GENERAL_SIM_US`).
   An **installed but ungoverned** controller must match bit-for-bit
   too: governance is opt-in per door, and a door that never opted in
   pays one cached dictionary miss, ever.

2. **What does shedding buy under overload?**  The goodput curve: a
   limit-1 door under a seeded open-loop burst at 1x / 2x / 5x its
   service capacity, with shedding **on** (bounded queue, deadline
   aware) versus **off** (unbounded queue, deadline blind).  Everything
   is simulated time under a fixed seed, so the curve is deterministic
   and machine-independent.  The PR gate: at 5x offered load the
   shedding configuration must deliver at least **2x** the goodput of
   the unprotected one — bounded queues fail the excess fast instead of
   letting every call pay the standing queue's wait.

The wall-gate methodology is the P3/P4 one: wall clocks in a JSON
measure the machine of the day, so the ≤2% gate was applied as a
same-session interleaved A/B against a worktree at the pre-admission
commit, best-of across alternating rounds (the floor each tree can
reach), committed below and riding into ``BENCH_P5.json``.  What *is*
asserted on every run are the machine-independent invariants: the two
sim-time parities and the goodput gate.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.bench_p1_hotpath import best_of, build_world
from benchmarks.conftest import COUNTER_IDL, CounterImpl, ship, sim_us
from repro.idl.compiler import compile_idl
from repro.kernel.clock import ClockWindow
from repro.kernel.errors import ServerBusyError
from repro.runtime.admission import AdmissionPolicy, install_admission
from repro.runtime.env import Environment
from repro.subcontracts.singleton import SingletonServer

#: admission-uninstalled wall-us/call may regress at most this fraction
#: versus the pre-admission tree measured in the same session
UNINSTALLED_OVERHEAD_GATE = 0.02

#: general-stub sim-us/call recorded by the PRE-admission tree (the same
#: figure P3 and P4 pinned: the deadline gate, the fault plane and now
#: the admission gate all charge nothing while idle).  The sim clock is
#: deterministic, so the check is machine-independent.
PRE_ADMISSION_GENERAL_SIM_US = 111.61000000010245

#: the PR-time wall gate record: ten alternating best-of-6000 rounds of
#: the P1 general-stub probe on this tree versus a worktree at the
#: pre-admission commit (1fa45ca), same machine, same session.  The
#: comparison is floor-to-floor across the alternating rounds (the same
#: statistic P3/P4 used): best-of 9.18 instrumented vs 9.23
#: pre-admission = -0.5%, inside the 2% gate.
PR_AB_VS_PRE_ADMISSION = {
    "pre_admission_commit": "1fa45ca",
    "rounds_per_sample": 6000,
    "pre_admission_general_wall_us": [
        9.34, 9.25, 9.34, 9.36, 9.36, 9.29, 9.35, 9.23, 9.34, 9.42,
    ],
    "instrumented_general_wall_us": [
        9.20, 9.22, 11.12, 9.37, 9.53, 9.18, 9.37, 9.32, 9.41, 9.58,
    ],
    "best_of_overhead_pct": round(100.0 * (9.18 - 9.23) / 9.23, 1),
    "gate_pct": 100.0 * UNINSTALLED_OVERHEAD_GATE,
    "gate": "pass",
}

#: phantom service demand in the goodput worlds; the limit-1 door's
#: capacity is one call per SERVICE_US
SERVICE_US = 400.0

#: offered-load multiples swept by the goodput curve
GOODPUT_FACTORS = (1, 2, 5)

#: at 5x offered load, shedding-on goodput must beat shedding-off by
#: at least this factor
GOODPUT_GATE_AT_5X = 2.0


def goodput_leg(factor: int, shedding: bool, calls: int = 240) -> dict:
    """Drive one governed door under a ``factor``-x burst; goodput.

    ``shedding`` on is the PR-5 overload posture (bounded queue,
    deadline aware); off is the unprotected baseline (unbounded queue,
    deadline blind — the controller still models occupancy, so every
    admitted call pays the standing queue's wait, but nothing is ever
    refused).  Goodput is successful calls per simulated second over
    the whole storm, think time included.
    """
    env = Environment(seed=7)
    server = env.create_domain(env.machine("s"), "server")
    client = env.create_domain(env.machine("c"), "client")
    module = compile_idl(COUNTER_IDL, f"p5_goodput_{factor}_{int(shedding)}")
    binding = module.binding("counter")
    exported = SingletonServer(server).export(CounterImpl(), binding)
    obj = ship(env.kernel, server, client, exported, binding)

    admission = env.install_admission(seed=7)
    door = obj._rep.door
    if shedding:
        policy = AdmissionPolicy(
            limit=1, queue_limit=8, deadline_aware=True,
            service_estimate_us=SERVICE_US,
        )
    else:
        policy = AdmissionPolicy(
            limit=1, queue_limit=None, deadline_aware=False,
            service_estimate_us=SERVICE_US,
        )
    admission.govern(door, policy)
    plane = env.install_chaos(seed=7)  # every rate zero: burst only
    plane.burst(door, interarrival_us=SERVICE_US / factor, service_us=SERVICE_US)

    rng = random.Random(7)
    ok = busy = 0
    with ClockWindow(env.clock) as window:
        for _ in range(calls):
            env.clock.advance(50.0 + 150.0 * rng.random(), "think_time")
            try:
                obj.add(1)
            except ServerBusyError:
                busy += 1
            else:
                ok += 1
    elapsed = window.elapsed_us
    snapshot = admission.door_snapshot(door)
    return {
        "factor": factor,
        "shedding": shedding,
        "calls": calls,
        "ok": ok,
        "busy": busy,
        "elapsed_sim_us": round(elapsed, 2),
        "goodput_per_sim_s": round(ok / (elapsed / 1e6), 1),
        "mean_sim_us_per_call": round(elapsed / calls, 2),
        "queued": snapshot["queued"],
        "shed": snapshot["shed"],
        "rejected": snapshot["rejected"],
        "phantom_admitted": snapshot["phantom_admitted"],
    }


def goodput_curve(calls: int = 240) -> list[dict]:
    return [
        goodput_leg(factor, shedding, calls=calls)
        for factor in GOODPUT_FACTORS
        for shedding in (True, False)
    ]


def run(rounds: int = 20000, warmup: int = 2000, goodput_calls: int = 240) -> dict:
    """Run the P5 admission bench; returns the measurement dict."""
    # Two identical P1 worlds; only one gets an (ungoverned) controller.
    kernel_off, _, general_off, _ = build_world()
    kernel_inst, _, general_inst, _ = build_world()
    install_admission(kernel_inst, seed=0)  # installed, nothing governed

    for _ in range(warmup):
        general_off.total()
        general_inst.total()

    sim_off = min(sim_us(kernel_off, general_off.total) for _ in range(5))
    sim_inst = min(sim_us(kernel_inst, general_inst.total) for _ in range(5))

    results = {
        "rounds": rounds,
        "uninstalled_general_wall_us": round(best_of(general_off.total, rounds), 2),
        "ungoverned_general_wall_us": round(best_of(general_inst.total, rounds), 2),
        "uninstalled_general_sim_us": sim_off,
        "ungoverned_general_sim_us": sim_inst,
        "goodput": goodput_curve(calls=goodput_calls),
    }
    results["ungoverned_wall_overhead_pct"] = round(
        100.0
        * (results["ungoverned_general_wall_us"] - results["uninstalled_general_wall_us"])
        / results["uninstalled_general_wall_us"],
        1,
    )

    # -- deterministic invariants (machine-independent) -----------------

    # Uninstalled mode charges not one simulated nanosecond: sim time
    # matches the recorded pre-admission tree bit-for-bit.
    assert abs(sim_off - PRE_ADMISSION_GENERAL_SIM_US) < 1e-6, (
        f"admission-uninstalled sim time drifted: {sim_off} != pre-admission "
        f"record {PRE_ADMISSION_GENERAL_SIM_US}"
    )
    # An installed controller with no governed doors resolves each door
    # to a cached None and charges nothing: governance is opt-in.
    assert sim_inst == sim_off, (
        f"ungoverned admission controller charged sim time: {sim_inst} != {sim_off}"
    )

    # The goodput gate and the curve's shape.
    by_config = {(leg["factor"], leg["shedding"]): leg for leg in results["goodput"]}
    on_5x = by_config[(5, True)]
    off_5x = by_config[(5, False)]
    ratio = on_5x["goodput_per_sim_s"] / off_5x["goodput_per_sim_s"]
    results["goodput_ratio_at_5x"] = round(ratio, 2)
    assert ratio >= GOODPUT_GATE_AT_5X, (
        f"shedding goodput gate failed at 5x: {on_5x['goodput_per_sim_s']} vs "
        f"{off_5x['goodput_per_sim_s']} ({ratio:.2f}x < {GOODPUT_GATE_AT_5X}x)"
    )
    # The unprotected configuration never refuses a call — every one of
    # them just pays the wait — while the protected one really shed.
    for factor in GOODPUT_FACTORS:
        off = by_config[(factor, False)]
        assert off["busy"] == 0 and off["ok"] == off["calls"]
    assert on_5x["busy"] > 0 and on_5x["ok"] > 0
    # Unprotected goodput degrades monotonically as offered load grows.
    off_curve = [by_config[(f, False)]["goodput_per_sim_s"] for f in GOODPUT_FACTORS]
    assert off_curve == sorted(off_curve, reverse=True), (
        f"unprotected goodput not monotone in offered load: {off_curve}"
    )
    return results


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


@pytest.fixture
def worlds():
    kernel_off, _, general_off, _ = build_world()
    kernel_inst, _, general_inst, _ = build_world()
    install_admission(kernel_inst, seed=0)
    return general_off, general_inst


@pytest.mark.benchmark(group="P5-admission")
def bench_p5_uninstalled_general(benchmark, worlds):
    general_off, _ = worlds
    benchmark(general_off.total)


@pytest.mark.benchmark(group="P5-admission")
def bench_p5_ungoverned_general(benchmark, worlds):
    _, general_inst = worlds
    benchmark(general_inst.total)


@pytest.mark.bench_smoke
def bench_p5_shape_and_record(record):
    results = run(rounds=2000, warmup=500, goodput_calls=120)
    record("P5", f"uninstalled general: {results['uninstalled_general_wall_us']:8.2f} wall-us/call (best)")
    record("P5", f"ungoverned general:  {results['ungoverned_general_wall_us']:8.2f} wall-us/call (best)")
    record("P5", f"ungoverned overhead: {results['ungoverned_wall_overhead_pct']:+.1f}%")
    for leg in results["goodput"]:
        mode = "shed" if leg["shedding"] else "wait"
        record(
            "P5",
            f"goodput @ {leg['factor']}x [{mode}]: "
            f"{leg['goodput_per_sim_s']:8.1f} ok-calls/sim-s "
            f"({leg['ok']} ok, {leg['busy']} busy, "
            f"{leg['mean_sim_us_per_call']:.0f} sim-us/call)",
        )
    record("P5", f"goodput ratio at 5x: {results['goodput_ratio_at_5x']:.2f}x (gate >= {GOODPUT_GATE_AT_5X}x)")
