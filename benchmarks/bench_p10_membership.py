"""P10 — membership bench (gossip failure detection + leader election).

Two questions, in the P3–P9 style:

1. **What does the uninstalled membership plane cost the hot path?**
   Nothing measurable: a world that never calls ``install_membership``
   has no gossip timers, no election checks, and every membership-aware
   subcontract's fast path is one class-default attribute read
   (``membership is None``) + one branch.  The PR gates are the usual
   pair — the general-stub simulated time stays *bit-for-bit* the
   pre-P10 figure (asserted on every run against
   :data:`PRE_P10_GENERAL_SIM_US`), and the PR-time interleaved A/B
   against a worktree at the pre-P10 commit stays inside the 2% wall
   gate (committed in :data:`PR_AB_VS_PRE_P10`).

2. **How fast is failover, and how tight is its distribution?**  The
   failover leg builds a five-machine membership + election world per
   seed, crashes the sitting leader, and measures two simulated
   intervals: crash → first gossip eviction of the leader (detection)
   and crash → a new member winning a higher term (failover).  Both
   distributions are swept across :data:`FAILOVER_SEEDS` seeds, checked
   against the computable protocol bound, and asserted deterministic by
   replaying the entire sweep and requiring identical results — the
   same property the chaos soak enforces end-to-end.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_p1_hotpath import best_of, build_world
from benchmarks.conftest import sim_us

#: membership-uninstalled wall-us/call may regress at most this
#: fraction versus the pre-P10 tree measured in the same session
UNINSTALLED_OVERHEAD_GATE = 0.02

#: general-stub sim-us/call recorded by the PRE-P10 tree (the same
#: figure P3–P9 pinned: every uninstalled plane, now including gossip
#: membership and election, charges nothing).
PRE_P10_GENERAL_SIM_US = 111.61000000010245

#: the PR-time wall gate record: ten alternating best-of-6000 rounds of
#: the P1 general-stub probe on this tree versus a worktree at the
#: pre-P10 commit (4512e18), same machine, same session.  Floor-to-floor
#: across the alternating rounds (the P3–P9 statistic): best-of 10.69
#: instrumented vs 10.74 pre-P10 = -0.5%, inside the 2% gate.
PR_AB_VS_PRE_P10 = {
    "pre_p10_commit": "4512e18",
    "rounds_per_sample": 6000,
    "pre_p10_general_wall_us": [
        10.88, 10.74, 10.98, 10.88, 10.89, 10.78, 10.74, 10.98, 11.16, 10.94,
    ],
    "instrumented_general_wall_us": [
        10.87, 10.92, 10.69, 10.99, 10.83, 11.01, 10.77, 11.10, 11.25, 11.22,
    ],
    "best_of_overhead_pct": round(100.0 * (10.69 - 10.74) / 10.74, 1),
    "gate_pct": 100.0 * UNINSTALLED_OVERHEAD_GATE,
    "gate": "pass",
}

#: seeds the failover distribution sweeps
FAILOVER_SEEDS = tuple(range(12))
#: members per failover world
FAILOVER_MEMBERS = 5


def failover_bound_us(election, membership) -> float:
    """Crash-to-new-leader bound: detection (lease lapse or gossip
    eviction, whichever is slower), then scheduling, backoff, and a
    vote round — the same bound the runtime tests assert."""
    cfg = election.config
    mcfg = membership.config
    detect = max(
        cfg.lease_us,
        (len(membership.nodes) - 1)
        * (mcfg.probe_interval_us + mcfg.probe_jitter_us)
        + 2 * mcfg.ack_timeout_us
        + mcfg.suspicion_timeout_us,
    )
    return (
        detect
        + cfg.check_interval_us
        + 2 * cfg.backoff_base_us
        + 2 * cfg.vote_timeout_us
        + 1_000_000.0
    )


def failover_leg(seed: int) -> dict:
    """One crash-failover measurement: detection and failover times."""
    from repro.runtime.env import Environment

    env = Environment(seed=seed)
    machines = [env.machine(f"m{i}") for i in range(FAILOVER_MEMBERS)]
    mem = env.install_membership()
    election = env.install_election()

    bound = failover_bound_us(election, mem)
    while not election.current_leaders() and mem.now() < 15_000_000.0:
        mem.run_for(100_000)
    leaders = election.current_leaders()
    assert leaders, f"seed {seed}: no initial leader"
    leader, term = leaders[0]

    crash_at = mem.now()
    machines[int(leader[1:])].crash()
    detected_at = won_at = None
    # Detection and failover race: with the default config the lease
    # lapses before gossip finishes evicting, so run until *both* have
    # happened (each must land within the bound).
    while mem.now() - crash_at < bound and (detected_at is None or won_at is None):
        mem.run_for(50_000)
        if detected_at is None:
            evicts = [
                e[0]
                for e in mem.events
                if e[2] == "evict" and e[3] == leader and e[0] > crash_at
            ]
            if evicts:
                detected_at = evicts[0]
        if won_at is None:
            wins = [
                e[0]
                for e in mem.events
                if e[2] == "election.won" and e[4] > term and e[0] > crash_at
            ]
            if wins:
                won_at = wins[0]
    assert detected_at is not None, f"seed {seed}: leader never evicted"
    assert won_at is not None, f"seed {seed}: no failover within the bound"
    election.assert_single_leader_per_term()
    return {
        "seed": seed,
        "detection_us": round(detected_at - crash_at, 2),
        "failover_us": round(won_at - crash_at, 2),
        "bound_us": round(bound, 2),
    }


def _distribution(values: list[float]) -> dict:
    ordered = sorted(values)
    return {
        "min_us": ordered[0],
        "median_us": ordered[len(ordered) // 2],
        "max_us": ordered[-1],
        "mean_us": round(sum(ordered) / len(ordered), 2),
    }


def run(rounds: int = 20000, warmup: int = 2000) -> dict:
    """Run the P10 membership bench; returns the measurement dict."""
    # Uninstalled leg: no membership anywhere — the default posture of
    # every kernel in the tree.
    kernel_off, _, general_off, _ = build_world()
    for _ in range(warmup):
        general_off.total()
    sim_off = min(sim_us(kernel_off, general_off.total) for _ in range(5))
    wall_off = round(best_of(general_off.total, rounds), 2)

    # Failover legs: deterministic, asserted by replaying the sweep.
    legs = [failover_leg(seed) for seed in FAILOVER_SEEDS]
    again = [failover_leg(seed) for seed in FAILOVER_SEEDS]
    assert legs == again, "failover sweep nondeterministic"

    results = {
        "rounds": rounds,
        "uninstalled_general_wall_us": wall_off,
        "uninstalled_general_sim_us": sim_off,
        "failover_seeds": len(legs),
        "failover_members": FAILOVER_MEMBERS,
        "detection": _distribution([leg["detection_us"] for leg in legs]),
        "failover": _distribution([leg["failover_us"] for leg in legs]),
        "failover_legs": legs,
    }

    # -- deterministic invariants (machine-independent) -----------------

    # Uninstalled mode charges not one simulated nanosecond: sim time
    # matches the recorded pre-P10 tree bit-for-bit.
    assert abs(sim_off - PRE_P10_GENERAL_SIM_US) < 1e-6, (
        f"membership-uninstalled sim time drifted: {sim_off} != pre-P10 "
        f"record {PRE_P10_GENERAL_SIM_US}"
    )
    # Both detection and failover respect the protocol bound.
    for leg in legs:
        assert leg["detection_us"] <= leg["bound_us"]
        assert leg["failover_us"] <= leg["bound_us"]
    return results


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


@pytest.mark.benchmark(group="P10-membership")
def bench_p10_uninstalled_general(benchmark):
    _, _, general_off, _ = build_world()
    benchmark(general_off.total)


@pytest.mark.bench_smoke
def bench_p10_shape_and_record(record):
    results = run(rounds=2000, warmup=500)
    record("P10", f"uninstalled general: {results['uninstalled_general_wall_us']:8.2f} wall-us/call (best; sim bit-for-bit pre-P10)")
    detection, failover = results["detection"], results["failover"]
    record(
        "P10",
        f"detection over {results['failover_seeds']} seeds: "
        f"{detection['min_us']:.0f} / {detection['median_us']:.0f} / "
        f"{detection['max_us']:.0f} us (min/median/max, deterministic, asserted)",
    )
    record(
        "P10",
        f"failover over {results['failover_seeds']} seeds: "
        f"{failover['min_us']:.0f} / {failover['median_us']:.0f} / "
        f"{failover['max_us']:.0f} us (min/median/max, within bound, asserted)",
    )
