"""P1 — hot-path invocation microbench (PR 1's perf tentpole).

Measures the wall-clock floor of one round-trip invocation through the
full Figure-3 path (E11 methodology: best-of-N ``time.perf_counter``
samples), for three configurations:

    raw door RPC        (hand-written stubs, no subcontract)
    general stub        (generated stub -> method table -> subcontract)
    specialized stub    (repro.idl.specialize fused path)

plus allocation behaviour per call: ``MarshalBuffer`` constructions
(should be ~0 once the per-domain pool is warm) and net traced bytes via
``tracemalloc``.

Simulated time is *also* sampled and asserted against the cost model —
the perf work moves wall time only; sim-µs is the paper's model and must
not drift.

Run standalone (``python benchmarks/run_all.py``) or under pytest
(``pytest benchmarks/bench_p1_hotpath.py``).  The ``bench_smoke`` marker
selects a tiny configuration suitable for tier-1.
"""

from __future__ import annotations

import time
import tracemalloc

import pytest

from benchmarks.conftest import COUNTER_IDL, CounterImpl, ship, sim_us
from repro.core.registry import SubcontractRegistry
from repro.idl.compiler import compile_idl
from repro.idl.specialize import specialize
from repro.kernel.nucleus import Kernel
from repro.marshal.buffer import MarshalBuffer
from repro.subcontracts import standard_subcontracts
from repro.subcontracts.singleton import SingletonServer

#: wall-us/call figures measured on the seed tree (commit 76ff150) with
#: this same harness, before the hot-path overhaul; run_all.py reports
#: the current tree against these.
SEED_BASELINE = {
    "raw_door_wall_us": 6.98,
    "general_wall_us": 12.53,
    "specialized_wall_us": 11.19,
    "general_buffer_allocs_per_call": 2.0,
}


def build_world():
    """One kernel, two domains, raw/general/specialized counter objects."""
    kernel = Kernel()
    server = kernel.create_domain("server")
    client = kernel.create_domain("client")
    for domain in (server, client):
        SubcontractRegistry(domain).register_many(standard_subcontracts())

    general_module = compile_idl(COUNTER_IDL, "p1_general")
    special_module = compile_idl(COUNTER_IDL, "p1_special")
    specialize(special_module, "counter", "singleton")

    def exported(module):
        binding = module.binding("counter")
        return ship(
            kernel,
            server,
            client,
            SingletonServer(server).export(CounterImpl(), binding),
            binding,
        )

    general_obj = exported(general_module)
    special_obj = exported(special_module)

    impl = CounterImpl()

    def raw_handler(request):
        reply = MarshalBuffer(kernel)
        reply.put_int32(impl.add(request.get_int32()))
        return reply

    raw_id = kernel.create_door(server, raw_handler, label="p1-raw")
    raw_door = kernel.attach_door_id(client, kernel.detach_door_id(server, raw_id))

    def raw_call(n: int = 1) -> int:
        buffer = MarshalBuffer(kernel)
        kernel.clock.charge("memory_copy_byte", 5)
        buffer.put_int32(n)
        reply = kernel.door_call(client, raw_door, buffer)
        return reply.get_int32()

    return kernel, raw_call, general_obj, special_obj


def best_of(fn, rounds: int) -> float:
    """Best single-call wall time in microseconds over ``rounds`` samples."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best * 1e6


def buffer_allocs_per_call(fn, rounds: int = 200) -> float:
    """MarshalBuffer constructions per call (pool effectiveness)."""
    counted = 0
    original = MarshalBuffer.__init__

    def counting(self, kernel=None):
        nonlocal counted
        counted += 1
        original(self, kernel)

    fn()  # warm the pool before instrumenting
    MarshalBuffer.__init__ = counting
    try:
        for _ in range(rounds):
            fn()
    finally:
        MarshalBuffer.__init__ = original
    return counted / rounds


def traced_net_bytes_per_call(fn, rounds: int = 200) -> float:
    """Net bytes retained per call under tracemalloc (leak detector)."""
    fn()
    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    for _ in range(rounds):
        fn()
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    total = sum(stat.size_diff for stat in after.compare_to(before, "filename"))
    return total / rounds


def run(rounds: int = 20000, warmup: int = 2000) -> dict:
    """Run the P1 microbench; returns the measurement dict."""
    kernel, raw_call, general_obj, special_obj = build_world()
    for _ in range(warmup):
        raw_call()
        general_obj.total()
        special_obj.total()

    model = kernel.clock.model
    sim_general = min(sim_us(kernel, general_obj.total) for _ in range(5))
    sim_special = min(sim_us(kernel, special_obj.total) for _ in range(5))
    sim_raw = min(sim_us(kernel, lambda: raw_call(1)) for _ in range(5))

    results = {
        "rounds": rounds,
        "raw_door_wall_us": round(best_of(raw_call, rounds), 2),
        "general_wall_us": round(best_of(general_obj.total, rounds), 2),
        "specialized_wall_us": round(best_of(special_obj.total, rounds), 2),
        "general_buffer_allocs_per_call": round(
            buffer_allocs_per_call(general_obj.total), 3
        ),
        "general_traced_net_bytes_per_call": round(
            traced_net_bytes_per_call(general_obj.total), 1
        ),
        "raw_sim_us": sim_raw,
        "general_sim_us": sim_general,
        "specialized_sim_us": sim_special,
    }

    # Sim-time model invariants (bit-for-bit with the cost model, not
    # with wall clocks): the fused path saves exactly the two client-side
    # indirect calls, and subcontract's sim-time tax stays tiny.
    expected_saving = 2 * model.indirect_call_us
    assert sim_general - sim_special >= expected_saving - 1e-9
    assert sim_general - sim_raw < 0.10 * sim_raw
    return results


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


@pytest.fixture
def world():
    return build_world()


@pytest.mark.benchmark(group="P1-hotpath")
def bench_p1_general_stub(benchmark, world):
    _, _, general_obj, _ = world
    benchmark(general_obj.total)


@pytest.mark.benchmark(group="P1-hotpath")
def bench_p1_specialized_stub(benchmark, world):
    _, _, _, special_obj = world
    benchmark(special_obj.total)


@pytest.mark.benchmark(group="P1-hotpath")
def bench_p1_raw_door(benchmark, world):
    _, raw_call, _, _ = world
    benchmark(raw_call, 1)


@pytest.mark.bench_smoke
def bench_p1_shape_and_record(record):
    results = run(rounds=2000, warmup=500)
    record("P1", f"raw door RPC:     {results['raw_door_wall_us']:8.2f} wall-us/call (best)")
    record("P1", f"general stub:     {results['general_wall_us']:8.2f} wall-us/call (best)")
    record("P1", f"specialized stub: {results['specialized_wall_us']:8.2f} wall-us/call (best)")
    record("P1", f"buffer allocs/call (warm pool): {results['general_buffer_allocs_per_call']:.3f}")
    # A warm pool means the general path constructs (almost) no buffers.
    assert results["general_buffer_allocs_per_call"] < 0.5
