"""E1 — Section 9.3: the invocation overhead of subcontract.

The paper: "Each object invocation always requires an additional two
indirect procedure calls from the stubs into the client subcontract and
typically requires a third indirect call from the server-side subcontract
into the server stubs ... we estimate that these costs add less than 2
microseconds (on a SPARCstation 2) to the costs for a minimal remote
call."

Rows regenerated (as wall-time benchmark groups and simulated-us
records):

    direct local call           (no IPC at all)
    raw door RPC                (hand-written stubs, no subcontract)
    subcontract call            (full Figure-3 path)

Shape that must hold: door RPC >> local call; the subcontract layer adds
a small constant that is a small fraction of a minimal door call.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CounterImpl, ship, sim_us
from repro.core.registry import SubcontractRegistry
from repro.kernel.nucleus import Kernel
from repro.marshal.buffer import MarshalBuffer
from repro.subcontracts import standard_subcontracts
from repro.subcontracts.singleton import SingletonServer


def _domain(kernel, name):
    domain = kernel.create_domain(name)
    registry = SubcontractRegistry(domain)
    registry.register_many(standard_subcontracts())
    return domain


@pytest.fixture
def world(counter_module):
    kernel = Kernel()
    server = _domain(kernel, "server")
    client = _domain(kernel, "client")
    binding = counter_module.binding("counter")

    impl = CounterImpl()

    # --- raw door RPC: hand-written "stubs", no subcontract anywhere.
    def raw_handler(request):
        reply = MarshalBuffer(kernel)
        n = request.get_int32()
        reply.put_int32(impl.add(n))
        return reply

    raw_door_server = kernel.create_door(server, raw_handler, label="raw")
    transit = kernel.detach_door_id(server, raw_door_server)
    raw_door = kernel.attach_door_id(client, transit)

    def raw_call(n: int) -> int:
        buffer = MarshalBuffer(kernel)
        kernel.clock.charge("memory_copy_byte", 5)
        buffer.put_int32(n)
        reply = kernel.door_call(client, raw_door, buffer)
        return reply.get_int32()

    # --- the full subcontract path.
    exported = SingletonServer(server).export(CounterImpl(), binding)
    subcontract_obj = ship(kernel, server, client, exported, binding)

    return kernel, impl, raw_call, subcontract_obj


@pytest.mark.benchmark(group="E1-invocation")
def bench_direct_local_call(benchmark, world):
    _, impl, _, _ = world
    benchmark(impl.add, 1)


@pytest.mark.benchmark(group="E1-invocation")
def bench_raw_door_rpc(benchmark, world):
    _, _, raw_call, _ = world
    benchmark(raw_call, 1)


@pytest.mark.benchmark(group="E1-invocation")
def bench_subcontract_call(benchmark, world):
    _, _, _, obj = world
    benchmark(obj.add, 1)


@pytest.mark.benchmark(group="E1-invocation")
def bench_e1_shape_and_record(benchmark, world, record):
    kernel, impl, raw_call, obj = world
    model = kernel.clock.model
    benchmark(obj.total)

    local = sim_us(kernel, lambda: impl.add(1))
    raw = min(sim_us(kernel, lambda: raw_call(1)) for _ in range(5))
    full = min(sim_us(kernel, lambda: obj.add(1)) for _ in range(5))
    added = full - raw

    record("E1", f"direct local call: {local:8.2f} sim-us")
    record("E1", f"raw door RPC:      {raw:8.2f} sim-us")
    record("E1", f"subcontract call:  {full:8.2f} sim-us")
    record("E1", f"subcontract adds:  {added:8.2f} sim-us "
                 f"({100 * added / raw:.1f}% of a minimal door call)")

    # Paper shape: door IPC dwarfs a local call.
    assert raw > 50 * local
    # Subcontract adds a small positive constant ...
    assert added > 0
    # ... dominated by the three indirect calls and the method-table hop,
    # and well under 10% of a minimal cross-domain call (the analogue of
    # "<2us on a call that costs O(100us)").
    assert added < 0.10 * raw
    floor = 3 * model.indirect_call_us + model.local_call_us
    assert added >= floor - 1e-9
