"""F1 — Figures 1 and 2: the Spring object model, executable.

Figure 1 shows the conventional model (clients hold references to a
server-side object); Figure 2 shows Spring's model (clients hold the
object, whose local state may be a handle to remote state).  The
observable difference:

* transmitting a Spring object *moves* it — the sender ceases to have it;
* copy-then-transmit yields two distinct objects sharing underlying
  state.

The bench verifies both behaviours as a trace and measures the cost of
the copy that the Figure-2 model makes explicit.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CounterImpl, ship, sim_us
from repro.core.errors import ObjectConsumedError
from repro.core.registry import SubcontractRegistry
from repro.kernel.nucleus import Kernel
from repro.subcontracts import standard_subcontracts
from repro.subcontracts.singleton import SingletonServer


@pytest.fixture
def world(counter_module):
    kernel = Kernel()
    server = kernel.create_domain("server")
    client = kernel.create_domain("client")
    for domain in (server, client):
        SubcontractRegistry(domain).register_many(standard_subcontracts())
    binding = counter_module.binding("counter")
    return kernel, server, client, binding


@pytest.mark.benchmark(group="F1-model")
def bench_spring_copy(benchmark, world):
    kernel, server, client, binding = world
    obj = SingletonServer(server).export(CounterImpl(), binding)

    def copy_and_release():
        obj.spring_copy().spring_consume()

    benchmark(copy_and_release)


@pytest.mark.benchmark(group="F1-model")
def bench_move_transmission(benchmark, world):
    kernel, server, client, binding = world
    exporter = SingletonServer(server)

    def move():
        obj = exporter.export(CounterImpl(), binding)
        ship(kernel, server, client, obj, binding).spring_consume()

    benchmark(move)


@pytest.mark.benchmark(group="F1-model")
def bench_f1_shape_and_record(benchmark, world, record):
    kernel, server, client, binding = world
    exporter = SingletonServer(server)
    obj = exporter.export(CounterImpl(), binding)
    benchmark(obj.total)

    # Figure 2 trace: transmit moves; the sender's handle is dead.
    moved = ship(kernel, server, client, obj, binding)
    with pytest.raises(ObjectConsumedError):
        obj.total()
    assert moved.add(1) == 1
    record("F1", "transmit moves the object: sender handle invalidated  [OK]")

    # Copy-then-transmit: two live objects, one underlying state.
    original = exporter.export(CounterImpl(), binding)
    duplicate = original.spring_copy()
    shipped = ship(kernel, server, client, duplicate, binding)
    original.add(10)
    assert shipped.total() == 10
    record("F1", "copy-then-transmit: two objects share state           [OK]")

    copy_cost = sim_us(kernel, lambda: original.spring_copy().spring_consume())
    record("F1", f"explicit copy+release cost: {copy_cost:.2f} sim-us")
    model = kernel.clock.model
    assert copy_cost >= model.door_copy_us + model.door_delete_us
