"""E7 — Section 8.3: reconnectable crash recovery.

Series regenerated: call latency in three phases — healthy, the first
call after a crash+restart (pays resolve + backoff once), and steady
state after recovery (back to baseline).  Plus the failure case: retries
until the budget runs out when the server never returns.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CounterImpl, sim_us
from repro.kernel import CommunicationError
from repro.marshal.buffer import MarshalBuffer
from repro.runtime.env import Environment
from repro.runtime.faults import crash_domain
from repro.subcontracts.reconnectable import RETRY_BACKOFF_US, ReconnectableServer


def _world(counter_module):
    env = Environment(latency_us=0.0)
    server = env.create_domain("rack", "server-1")
    client = env.create_domain("desk", "client")
    binding = counter_module.binding("counter")
    obj = ReconnectableServer(server).export(
        CounterImpl(), binding, name="/svc/counter"
    )
    buffer = MarshalBuffer(env.kernel)
    obj._subcontract.marshal(obj, buffer)
    buffer.seal_for_transmission(server)
    client_obj = binding.unmarshal_from(buffer, client)
    return env, server, client_obj, binding


@pytest.mark.benchmark(group="E7-reconnect")
def bench_healthy_call(benchmark, counter_module):
    env, server, obj, binding = _world(counter_module)
    benchmark(obj.total)


@pytest.mark.benchmark(group="E7-reconnect")
def bench_recovery_call(benchmark, counter_module):
    def setup():
        env, server, obj, binding = _world(counter_module)
        crash_domain(server)
        replacement = env.create_domain("rack", "server-2")
        ReconnectableServer(replacement).export(
            CounterImpl(), binding, name="/svc/counter"
        )
        return (obj,), {}

    benchmark.pedantic(lambda obj: obj.total(), setup=setup, rounds=20)


@pytest.mark.benchmark(group="E7-reconnect")
def bench_e7_shape_and_record(benchmark, counter_module, record):
    env, server, obj, binding = _world(counter_module)
    benchmark(obj.total)

    healthy = min(sim_us(env, obj.total) for _ in range(3))
    crash_domain(server)
    replacement = env.create_domain("rack", "server-2")
    ReconnectableServer(replacement).export(
        CounterImpl(), binding, name="/svc/counter"
    )
    recovery = sim_us(env, obj.total)
    steady = min(sim_us(env, obj.total) for _ in range(3))
    record("E7", f"healthy call:   {healthy:11.1f} sim-us")
    record("E7", f"recovery call:  {recovery:11.1f} sim-us (one-time penalty)")
    record("E7", f"steady after:   {steady:11.1f} sim-us")

    # Shape: the recovery call pays at least one backoff plus the
    # re-resolution; afterwards latency is back at the healthy baseline.
    assert recovery > RETRY_BACKOFF_US
    assert steady < healthy * 1.25

    # Failure case: server never returns -> bounded retries, then error.
    env2, server2, obj2, _ = _world(counter_module)
    crash_domain(server2)
    with pytest.raises(CommunicationError):
        obj2.total()
    retried = env2.clock.tally().get("retry_backoff", 0.0)
    record("E7", f"giving up after {retried / RETRY_BACKOFF_US:.0f} backoffs "
                 f"({retried:,.0f} sim-us)")
    assert retried >= 8 * RETRY_BACKOFF_US
