"""F3 — Figure 3: invoking a method on a server-based object.

The figure's arrow sequence:

    application -> method table (stubs) -> subcontract
        -> [kernel door] -> server subcontract -> server stubs
        -> server application

and back.  The bench verifies the sequence with an instrumented
subcontract and measures the full path against its pieces.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CounterImpl, ship, sim_us
from repro.core.registry import SubcontractRegistry
from repro.kernel.nucleus import Kernel
from repro.subcontracts import standard_subcontracts
from repro.subcontracts.singleton import SingletonClient, SingletonServer


@pytest.fixture
def world(counter_module):
    kernel = Kernel()
    server = kernel.create_domain("server")
    client = kernel.create_domain("client")
    for domain in (server, client):
        SubcontractRegistry(domain).register_many(standard_subcontracts())
    binding = counter_module.binding("counter")

    trace: list[str] = []

    class TracingClient(SingletonClient):
        def invoke_preamble(self, obj, buffer):
            trace.append("subcontract.invoke_preamble")

        def invoke(self, obj, buffer):
            trace.append("subcontract.invoke")
            reply = super().invoke(obj, buffer)
            trace.append("subcontract.reply")
            return reply

    client.subcontract_registry.register(TracingClient)

    class TracingCounter(CounterImpl):
        def add(self, n):
            trace.append("server.application")
            return super().add(n)

    obj = ship(
        kernel,
        server,
        client,
        SingletonServer(server).export(TracingCounter(), binding),
        binding,
    )
    return kernel, obj, trace


@pytest.mark.benchmark(group="F3-callpath")
def bench_figure3_call(benchmark, world):
    _, obj, _ = world
    benchmark(obj.add, 1)


@pytest.mark.benchmark(group="F3-callpath")
def bench_f3_shape_and_record(benchmark, world, record):
    kernel, obj, trace = world
    benchmark(obj.total)

    trace.clear()
    door = obj._rep.door.door
    handled = door.calls_handled
    obj.add(1)
    assert trace == [
        "subcontract.invoke_preamble",
        "subcontract.invoke",
        "server.application",
        "subcontract.reply",
    ]
    assert door.calls_handled == handled + 1
    record("F3", "call path matches Figure 3 arrow sequence            [OK]")

    cost = min(sim_us(kernel, lambda: obj.add(1)) for _ in range(5))
    tally = kernel.clock.tally()
    record("F3", f"full Figure-3 path: {cost:.2f} sim-us per call")
    # The door traversal dominates; everything else is the thin layers
    # the figure stacks around it.
    assert cost > kernel.clock.model.door_call_us
    assert cost < 1.5 * kernel.clock.model.door_call_us
