"""P6 — process-fabric scaling bench (PR 6's multiprocess tentpole).

Two questions:

1. **Does the default transport pay anything for the new one existing?**
   Nothing measurable: transport selection is construction-time
   (``Environment(transport=...)``) and the process fabric is not even
   imported on the sim path.  The gates are the P3/P4/P5 ones — the
   default transport's general-stub simulated time stays *bit-for-bit*
   the pre-P6 figure (asserted on every run against
   :data:`PRE_PROCFABRIC_GENERAL_SIM_US`), and the PR-time interleaved
   A/B against the pre-P6 commit stays inside the 2% wall gate
   (committed in :data:`PR_AB_VS_PRE_P6`).

2. **Is wall throughput finally a multi-core number?**  Every BENCH_P1–P5
   figure was a single-process, single-core number by construction.  The
   scaling legs drive CPU-bound general-stub calls through 1 / 2 / 4
   worker processes (one supervisor thread per worker, all released by a
   barrier) and report aggregate wall calls/sec.  On a runner with >= 4
   cores the 1 -> 4 ratio must reach :data:`SCALING_GATE_1_TO_4` (2.5x);
   on smaller machines the legs still run and the ratio is recorded, but
   the gate is not asserted — real parallelism cannot be demonstrated on
   hardware that has none, and the JSON records the core count so the
   claim is honest.

Wall throughput here is deliberately *wall*, not simulated: each worker
process runs its own sim clock, and the thing PR 6 adds is precisely the
number the simulated fabric could never produce.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time

import pytest

from benchmarks.bench_p1_hotpath import best_of, build_world
from benchmarks.conftest import sim_us
from repro.idl.compiler import compile_idl
from repro.runtime.env import Environment
from repro.subcontracts.singleton import SingletonServer

#: general-stub sim-us/call recorded by the PRE-P6 tree (the same figure
#: P3/P4/P5 pinned — the sim hot path is untouched by this PR, so the
#: deterministic clock must reproduce it bit-for-bit).
PRE_PROCFABRIC_GENERAL_SIM_US = 111.61000000010245

#: on a runner with >= 4 cores, 4-worker aggregate wall calls/sec must
#: reach this multiple of the 1-worker figure
SCALING_GATE_1_TO_4 = 2.5

WORKER_COUNTS = (1, 2, 4)

#: LCG spin iterations per call — enough CPU work (~hundreds of wall-µs)
#: that the worker processes, not the supervisor's marshalling, dominate
GRIND_ITERS = 4000

#: the PR-time wall gate record for the *default* transport: ten
#: alternating best-of-6000 rounds of the P1 general-stub probe on this
#: tree versus a worktree at the pre-P6 commit (8569ef0), same machine,
#: same session.  Floor-to-floor across the alternating rounds (the
#: P3/P4/P5 statistic): this PR adds no hot-path branch at all, and the
#: floors agree within the 2% gate.
PR_AB_VS_PRE_P6 = {
    "pre_p6_commit": "8569ef0",
    "rounds_per_sample": 6000,
    "pre_p6_general_wall_us": [
        10.71, 10.64, 10.68, 10.72, 10.96, 10.65, 10.88, 10.70, 10.77, 10.98,
    ],
    "instrumented_general_wall_us": [
        16.71, 10.71, 10.92, 10.84, 10.70, 10.82, 10.88, 10.54, 10.76, 11.13,
    ],
    "best_of_overhead_pct": round(100.0 * (10.54 - 10.64) / 10.64, 1),
    "gate_pct": 2.0,
    "gate": "pass",
}

GRINDER_IDL = """
interface grinder {
    int32 grind(int32 iters);
}
"""

grinder_module = compile_idl(GRINDER_IDL, "p6_grinder")


class GrindImpl:
    """CPU-bound worker payload: a pure-python LCG spin."""

    def grind(self, iters: int) -> int:
        acc = 1
        for _ in range(iters):
            acc = (acc * 1103515245 + 12345) % 2147483647
        return acc


def export_grinder(env, index):
    server = env.create_domain("w", "server")
    obj = SingletonServer(server).export(
        GrindImpl(), grinder_module.binding("grinder")
    )
    return {"grinder": obj}


def throughput_leg(
    workers: int, calls_per_worker: int = 300, iters: int = GRIND_ITERS
) -> dict:
    """Aggregate wall calls/sec of general-stub calls across ``workers``
    real OS processes, one driving thread per worker."""
    env = Environment(latency_us=0.0, transport="proc", seed=11)
    fabric = env.install_procfabric(export_grinder, workers=workers)
    try:
        client = env.create_domain("m0", "client")
        binding = grinder_module.binding("grinder")
        proxies = [
            fabric.bind(client, "grinder", binding, worker=i)
            for i in range(workers)
        ]
        for proxy in proxies:  # warm both sides (pools, import graphs)
            proxy.grind(10)

        barrier = threading.Barrier(workers + 1)

        def drive(proxy):
            barrier.wait()
            for _ in range(calls_per_worker):
                proxy.grind(iters)

        threads = [
            threading.Thread(target=drive, args=(proxy,)) for proxy in proxies
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed_s = time.perf_counter() - started
        calls = workers * calls_per_worker
        return {
            "workers": workers,
            "calls": calls,
            "grind_iters": iters,
            "elapsed_s": round(elapsed_s, 4),
            "wall_calls_per_s": round(calls / elapsed_s, 1),
            "wall_us_per_call": round(1e6 * elapsed_s / calls, 2),
        }
    finally:
        env.uninstall_procfabric()


def run(
    rounds: int = 20000,
    warmup: int = 2000,
    calls_per_worker: int = 300,
    worker_counts: tuple = WORKER_COUNTS,
) -> dict:
    """Run the P6 process-fabric bench; returns the measurement dict."""
    kernel, _, general, _ = build_world()
    for _ in range(warmup):
        general.total()
    sim_default = min(sim_us(kernel, general.total) for _ in range(5))

    results = {
        "rounds": rounds,
        "cores": len(os.sched_getaffinity(0)),
        "default_transport_general_wall_us": round(best_of(general.total, rounds), 2),
        "default_transport_general_sim_us": sim_default,
        "scaling": [
            throughput_leg(workers, calls_per_worker) for workers in worker_counts
        ],
    }

    # -- deterministic invariant (machine-independent) ------------------

    # The default transport is byte-identical behaviour: sim time matches
    # the pre-P6 record bit-for-bit (the procfabric is never imported on
    # this path, let alone charged for).
    assert abs(sim_default - PRE_PROCFABRIC_GENERAL_SIM_US) < 1e-6, (
        f"default-transport sim time drifted: {sim_default} != pre-P6 "
        f"record {PRE_PROCFABRIC_GENERAL_SIM_US}"
    )

    # -- the scaling gate (hardware-conditional) ------------------------

    by_workers = {leg["workers"]: leg for leg in results["scaling"]}
    lo = min(by_workers)
    hi = max(by_workers)
    ratio = (
        by_workers[hi]["wall_calls_per_s"] / by_workers[lo]["wall_calls_per_s"]
    )
    results["scaling_ratio"] = round(ratio, 2)
    results["scaling_span"] = f"{lo}->{hi} workers"
    results["scaling_gate"] = SCALING_GATE_1_TO_4
    checked = results["cores"] >= 4 and lo == 1 and hi == 4
    results["scaling_gate_checked"] = checked
    if checked:
        assert ratio >= SCALING_GATE_1_TO_4, (
            f"process-fabric scaling gate failed on a {results['cores']}-core "
            f"runner: {by_workers[1]['wall_calls_per_s']} -> "
            f"{by_workers[4]['wall_calls_per_s']} calls/s "
            f"({ratio:.2f}x < {SCALING_GATE_1_TO_4}x)"
        )
    return results


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


@pytest.mark.bench_smoke
def bench_p6_shape_and_record(record):
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("the process fabric requires the fork start method")
    results = run(
        rounds=2000, warmup=500, calls_per_worker=40, worker_counts=(1, 2)
    )
    record(
        "P6",
        f"default transport general: "
        f"{results['default_transport_general_wall_us']:8.2f} wall-us/call "
        f"(best); sim {results['default_transport_general_sim_us']:.2f} "
        f"sim-us/call == pre-P6 record (asserted)",
    )
    for leg in results["scaling"]:
        record(
            "P6",
            f"procfabric @ {leg['workers']} worker(s): "
            f"{leg['wall_calls_per_s']:8.1f} wall calls/s "
            f"({leg['wall_us_per_call']:.0f} wall-us/call, "
            f"{leg['calls']} calls)",
        )
    record(
        "P6",
        f"scaling {results['scaling_span']}: {results['scaling_ratio']:.2f}x "
        f"on {results['cores']} core(s) "
        f"(gate >= {results['scaling_gate']}x "
        f"{'checked' if results['scaling_gate_checked'] else 'recorded only: needs a 4-core runner'})",
    )
