"""E6 — Section 5.1.3: replicon failover.

"Replicon attempts to invoke each of its door identifiers in turn.  If
the door invocation fails due to a communications error, then replicon
deletes that door identifier from its set of targets and proceeds to try
the next door identifier."

Series regenerated: latency of the first call after k leading replicas
have died, k in 0..R-1, for R = 4; and the latency of the *second* call,
which must be back at baseline because the dead targets were pruned.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import sim_us
from repro.marshal.buffer import MarshalBuffer
from repro.runtime.env import Environment
from repro.runtime.faults import crash_domain
from repro.services.kv import ReplicatedKVService, kv_binding

REPLICAS = 4


def _world(kill_leading: int):
    env = Environment(latency_us=0.0)
    replicas = [env.create_domain("dc", f"kv-{i}") for i in range(REPLICAS)]
    service = ReplicatedKVService(replicas)
    client = env.create_domain("desk", "client")
    exported = service.store_for(replicas[0])
    buffer = MarshalBuffer(env.kernel)
    exported._subcontract.marshal(exported, buffer)
    buffer.seal_for_transmission(replicas[0])
    store = kv_binding().unmarshal_from(buffer, client)
    store.put("k", "v")
    for i in range(kill_leading):
        crash_domain(replicas[i])
    return env, store


@pytest.mark.benchmark(group="E6-failover")
@pytest.mark.parametrize("dead", [0, 1, 2, 3])
def bench_first_call_after_k_deaths(benchmark, dead):
    def setup():
        env, store = _world(dead)
        return (store,), {}

    def call(store):
        return store.get("k")

    benchmark.pedantic(call, setup=setup, rounds=20)


@pytest.mark.benchmark(group="E6-failover")
def bench_e6_shape_and_record(benchmark, record):
    env0, store0 = _world(0)
    benchmark(store0.get, "k")

    first_call = []
    second_call = []
    for dead in range(REPLICAS):
        env, store = _world(dead)
        first = sim_us(env, lambda: store.get("k"))
        second = sim_us(env, lambda: store.get("k"))
        first_call.append(first)
        second_call.append(second)
        record(
            "E6",
            f"dead={dead}: first call {first:8.2f} sim-us, "
            f"second call {second:8.2f} sim-us "
            f"(doors left: {len(store._rep.doors)})",
        )

    # Shape: the first call's latency grows with each leading dead
    # replica (one wasted attempt each) ...
    assert all(first_call[i] < first_call[i + 1] for i in range(REPLICAS - 1))
    # ... while the second call is back near the healthy baseline,
    # because invoke pruned the dead identifiers.
    baseline = second_call[0]
    for dead, second in enumerate(second_call):
        assert second < baseline * 1.25, (dead, second, baseline)
