"""E8 — Section 5.1.4: the invoke_preamble / shared-memory optimization.

"When invoke_preamble is called, the subcontract can adjust the
communications buffer to point into the shared memory region so that
arguments are directly marshalled into the region, rather than having to
be copied there after all marshalling is complete."

Series regenerated: same-machine call cost, singleton (marshal then copy)
vs shm (marshal straight into the region), payload 64 B .. 256 KiB.

Shape: shm saves exactly the copy charges; the saving grows linearly
with payload, crossing over the small fixed region-setup cost once the
payload is more than a few hundred bytes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BlobImpl, ship, sim_us
from repro.marshal.buffer import MarshalBuffer
from repro.runtime.env import Environment
from repro.subcontracts.shm import ShmClient, ShmServer
from repro.subcontracts.singleton import SingletonServer

PAYLOADS = (64, 1024, 16 * 1024, 256 * 1024)


def _world(blob_module, server_cls):
    env = Environment(latency_us=0.0)
    server = env.create_domain("workstation", "server")
    client = env.create_domain("workstation", "client")
    binding = blob_module.binding("blob_store")
    exported = server_cls(server).export(BlobImpl(), binding)
    obj = ship(env.kernel, server, client, exported, binding)
    return env, obj


@pytest.mark.benchmark(group="E8-shm")
@pytest.mark.parametrize("size", PAYLOADS)
def bench_singleton_payload(benchmark, blob_module, size):
    env, obj = _world(blob_module, SingletonServer)
    payload = b"x" * size
    benchmark(obj.absorb, payload)


@pytest.mark.benchmark(group="E8-shm")
@pytest.mark.parametrize("size", PAYLOADS)
def bench_shm_payload(benchmark, blob_module, size):
    env, obj = _world(blob_module, ShmServer)
    payload = b"x" * size
    benchmark(obj.absorb, payload)


@pytest.mark.benchmark(group="E8-shm")
def bench_e8_shape_and_record(benchmark, blob_module, record):
    env_s, singleton_obj = _world(blob_module, SingletonServer)
    env_m, shm_obj = _world(blob_module, ShmServer)
    benchmark(shm_obj.absorb, b"x" * 1024)

    model = env_s.clock.model
    savings = []
    for size in PAYLOADS:
        payload = b"x" * size
        plain = min(
            sim_us(env_s, lambda: singleton_obj.absorb(payload)) for _ in range(3)
        )
        shm = min(sim_us(env_m, lambda: shm_obj.absorb(payload)) for _ in range(3))
        saved = plain - shm
        savings.append(saved)
        record(
            "E8",
            f"payload={size:7d}B: singleton {plain:10.1f} sim-us, "
            f"shm {shm:10.1f} sim-us, saved {saved:9.1f}",
        )

    # Shape: the saving grows with payload (it is the eliminated copy) ...
    assert all(savings[i] < savings[i + 1] for i in range(len(savings) - 1))
    # ... and for large payloads approximates the copy cost of the
    # argument bytes minus the region setup.
    big = PAYLOADS[-1]
    expected = big * model.memory_copy_byte_us
    assert savings[-1] > 0.5 * expected
    # Tiny payloads may not win (region setup dominates); that crossover
    # is the realistic part of the story — record it.
    record(
        "E8",
        f"crossover: setup {ShmClient.REGION_SETUP_US} sim-us vs copy "
        f"{model.memory_copy_byte_us} sim-us/B -> "
        f"~{ShmClient.REGION_SETUP_US / model.memory_copy_byte_us:.0f} B",
    )
