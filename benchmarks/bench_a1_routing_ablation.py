"""A1 (ablation) — Section 6.1: what compatible-subcontract routing costs.

Design choice being ablated: every unmarshal *peeks* the subcontract ID
and, on a mismatch with the expected subcontract, re-routes through the
per-domain registry.  The alternative (hard-wiring the expected
subcontract) would be cheaper but would make `cacheable_file`-style
subtyping impossible (Section 6.1's motivating problem).

Rows: unmarshal when expected == actual (peek only) vs expected != actual
(peek + registry lookup + delegated unmarshal).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CounterImpl, sim_us
from repro.core.registry import SubcontractRegistry
from repro.idl.compiler import compile_idl
from repro.kernel.nucleus import Kernel
from repro.marshal.buffer import MarshalBuffer
from repro.subcontracts import standard_subcontracts
from repro.subcontracts.simplex import SimplexServer
from repro.subcontracts.singleton import SingletonServer

MATCHED_IDL = 'interface item { subcontract "simplex"; int32 poke(); }'
MISMATCHED_IDL = 'interface item { subcontract "singleton"; int32 poke(); }'


class Impl:
    def poke(self):
        return 1


@pytest.fixture
def world():
    kernel = Kernel()
    server = kernel.create_domain("server")
    client = kernel.create_domain("client")
    for domain in (server, client):
        SubcontractRegistry(domain).register_many(standard_subcontracts())
    matched = compile_idl(MATCHED_IDL, "route_match").binding("item")
    mismatched = compile_idl(MISMATCHED_IDL, "route_miss").binding("item")
    exporter = SimplexServer(server)
    return kernel, server, client, exporter, matched, mismatched


def _roundtrip(kernel, server, client, exporter, binding):
    obj = exporter.export(Impl(), binding)
    buffer = MarshalBuffer(kernel)
    obj._subcontract.marshal(obj, buffer)
    buffer.seal_for_transmission(server)
    binding.unmarshal_from(buffer, client).spring_consume()


@pytest.mark.benchmark(group="A1-routing")
def bench_unmarshal_expected_matches(benchmark, world):
    kernel, server, client, exporter, matched, _ = world
    benchmark(_roundtrip, kernel, server, client, exporter, matched)


@pytest.mark.benchmark(group="A1-routing")
def bench_unmarshal_routed_through_registry(benchmark, world):
    kernel, server, client, exporter, _, mismatched = world
    benchmark(_roundtrip, kernel, server, client, exporter, mismatched)


@pytest.mark.benchmark(group="A1-routing")
def bench_a1_shape_and_record(benchmark, world, record):
    kernel, server, client, exporter, matched, mismatched = world
    benchmark(_roundtrip, kernel, server, client, exporter, matched)

    direct = min(
        sim_us(kernel, lambda: _roundtrip(kernel, server, client, exporter, matched))
        for _ in range(5)
    )
    routed = min(
        sim_us(
            kernel, lambda: _roundtrip(kernel, server, client, exporter, mismatched)
        )
        for _ in range(5)
    )
    record("A1", f"unmarshal, expected==actual: {direct:8.2f} sim-us")
    record("A1", f"unmarshal, routed:           {routed:8.2f} sim-us")
    record("A1", f"routing adds:                {routed - direct:8.2f} sim-us")

    # Shape: routing costs one extra indirection — a small constant, not
    # a multiple.  That is the price of Section 6.1's flexibility.
    assert routed > direct
    assert routed - direct < 0.05 * direct
