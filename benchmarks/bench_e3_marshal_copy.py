"""E3 — Section 5.1.5: the fused marshal_copy optimization.

"This mode was originally implemented by first calling the subcontract
copy operation and then by calling the subcontract marshal operation on
the copy.  However, it was observed that this frequently led to redundant
work ... The marshal_copy operation ... is permitted to optimize out some
of the intermediate steps."

Rows regenerated, for the simplex subcontract (modest win: skips one
intermediate Spring object) and the caching subcontract (real win: the
composed path duplicates the machine-local D2 door only to throw it away,
and the fused path never touches D2):

    copy-then-marshal   vs   marshal_copy
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CounterImpl, ship, sim_us
from repro.marshal.buffer import MarshalBuffer
from repro.runtime.env import Environment
from repro.subcontracts.caching import CachingServer
from repro.subcontracts.simplex import SimplexServer


@pytest.fixture
def simplex_world(counter_module):
    env = Environment(latency_us=0.0)
    server = env.create_domain("m", "server")
    binding = counter_module.binding("counter")
    obj = SimplexServer(server).export(CounterImpl(), binding)
    return env, server, obj


@pytest.fixture
def caching_world(counter_module):
    env = Environment(latency_us=0.0)
    server = env.create_domain("server-m", "server")
    client_machine = env.machine("client-m")
    env.install_cache_manager(client_machine)
    client = env.create_domain(client_machine, "client")
    binding = counter_module.binding("counter")
    exported = CachingServer(server).export(CounterImpl(), binding)
    # The interesting object is the *client-side* one, which holds a D2.
    obj = ship(env.kernel, server, client, exported, binding)
    assert obj._rep.cache_door is not None
    return env, client, obj


def composed(env, domain, obj):
    duplicate = obj._subcontract.copy(obj)
    buffer = MarshalBuffer(env.kernel)
    duplicate._subcontract.marshal(duplicate, buffer)
    buffer.discard()


def fused(env, domain, obj):
    buffer = MarshalBuffer(env.kernel)
    obj._subcontract.marshal_copy(obj, buffer)
    buffer.discard()


@pytest.mark.benchmark(group="E3-marshal-copy-simplex")
def bench_simplex_copy_then_marshal(benchmark, simplex_world):
    env, server, obj = simplex_world
    benchmark(composed, env, server, obj)


@pytest.mark.benchmark(group="E3-marshal-copy-simplex")
def bench_simplex_marshal_copy(benchmark, simplex_world):
    env, server, obj = simplex_world
    benchmark(fused, env, server, obj)


@pytest.mark.benchmark(group="E3-marshal-copy-caching")
def bench_caching_copy_then_marshal(benchmark, caching_world):
    env, client, obj = caching_world
    benchmark(composed, env, client, obj)


@pytest.mark.benchmark(group="E3-marshal-copy-caching")
def bench_caching_marshal_copy(benchmark, caching_world):
    env, client, obj = caching_world
    benchmark(fused, env, client, obj)


@pytest.mark.benchmark(group="E3-marshal-copy-simplex")
def bench_e3_shape_and_record(benchmark, simplex_world, caching_world, record):
    env_s, server, simplex_obj = simplex_world
    env_c, client, caching_obj = caching_world
    benchmark(fused, env_s, server, simplex_obj)

    s_composed = min(
        sim_us(env_s, lambda: composed(env_s, server, simplex_obj)) for _ in range(5)
    )
    s_fused = min(
        sim_us(env_s, lambda: fused(env_s, server, simplex_obj)) for _ in range(5)
    )
    c_composed = min(
        sim_us(env_c, lambda: composed(env_c, client, caching_obj)) for _ in range(5)
    )
    c_fused = min(
        sim_us(env_c, lambda: fused(env_c, client, caching_obj)) for _ in range(5)
    )

    record("E3", f"simplex copy+marshal: {s_composed:8.2f} sim-us; "
                 f"marshal_copy: {s_fused:8.2f} sim-us")
    record("E3", f"caching copy+marshal: {c_composed:8.2f} sim-us; "
                 f"marshal_copy: {c_fused:8.2f} sim-us "
                 f"(saves the D2 duplicate+delete)")

    # Shape: fused is never worse, and for caching it is strictly better
    # because the composed path pays a D2 door copy and delete for
    # nothing.
    assert s_fused <= s_composed
    assert c_fused < c_composed
    model = env_c.clock.model
    assert c_composed - c_fused >= (
        model.door_copy_us + model.door_delete_us
    ) - 1e-9
