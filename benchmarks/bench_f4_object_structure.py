"""F4 — Figure 4: a file object using the simplex subcontract.

The figure shows the three-part structure of a Spring object: a method
table of stub methods, a pointer to the subcontract, and a representation
holding a door identifier leading to the server's state.

The bench verifies the structure and measures its two construction
paths: server-side creation (export: door + object fabrication) and
client-side fabrication (unmarshal: read rep + plug parts together).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CounterImpl, sim_us
from repro.core.registry import SubcontractRegistry
from repro.kernel.nucleus import Kernel
from repro.marshal.buffer import MarshalBuffer
from repro.subcontracts import standard_subcontracts
from repro.subcontracts.common import SingleDoorRep
from repro.subcontracts.simplex import SimplexClient, SimplexServer


@pytest.fixture
def world(counter_module):
    kernel = Kernel()
    server = kernel.create_domain("FS")
    client = kernel.create_domain("app")
    for domain in (server, client):
        SubcontractRegistry(domain).register_many(standard_subcontracts())
    return kernel, server, client, counter_module.binding("counter")


@pytest.mark.benchmark(group="F4-structure")
def bench_server_side_creation(benchmark, world):
    kernel, server, _, binding = world
    exporter = SimplexServer(server)

    def create():
        exporter.export(CounterImpl(), binding).spring_consume()

    benchmark(create)


@pytest.mark.benchmark(group="F4-structure")
def bench_client_side_fabrication(benchmark, world):
    kernel, server, client, binding = world
    exporter = SimplexServer(server)

    def setup():
        obj = exporter.export(CounterImpl(), binding)
        buffer = MarshalBuffer(kernel)
        obj._subcontract.marshal(obj, buffer)
        buffer.seal_for_transmission(server)
        return (buffer,), {}

    def fabricate(buffer):
        binding.unmarshal_from(buffer, client).spring_consume()

    benchmark.pedantic(fabricate, setup=setup, rounds=200)


@pytest.mark.benchmark(group="F4-structure")
def bench_f4_shape_and_record(benchmark, world, record):
    kernel, server, client, binding = world
    exporter = SimplexServer(server)
    obj = exporter.export(CounterImpl(), binding)
    benchmark(obj.total)

    # Figure 4 structure: method table + subcontract pointer +
    # representation holding exactly one door identifier.
    assert isinstance(obj._subcontract, SimplexClient)
    assert obj._subcontract.id == "simplex"
    assert isinstance(obj._rep, SingleDoorRep)
    assert obj._rep.door.door.server is server
    assert set(obj._method_table) == set(binding.operations)
    record("F4", "object = method table + subcontract + door rep       [OK]")

    create_cost = sim_us(
        kernel, lambda: exporter.export(CounterImpl(), binding).spring_consume()
    )
    record("F4", f"server-side create (door + object): {create_cost:.2f} sim-us")
    # Door creation dominates server-side object creation.
    assert create_cost > kernel.clock.model.door_create_us

    def fabricate():
        fresh = exporter.export(CounterImpl(), binding)
        buffer = MarshalBuffer(kernel)
        fresh._subcontract.marshal(fresh, buffer)
        buffer.seal_for_transmission(server)
        binding.unmarshal_from(buffer, client).spring_consume()

    total = sim_us(kernel, fabricate)
    record("F4", f"marshal + client fabrication (incl. create): {total:.2f} sim-us")
    assert total > create_cost
