"""A6 (ablation) — §5: simple vs elaborate replication rules.

"In the case of replicon the clients are required to talk only to a
single server and the servers are required to perform their own state
synchronization.  (Other subcontracts for replication use more elaborate
rules.)"

Series regenerated: per-write and per-read cost vs replica count R for

* **replicon** — client sends one door call; servers synchronize
  themselves (free in simulated time: it models an out-of-band channel);
* **rowa** — the client subcontract fans writes out to all R replicas.

Shape: replicon's write cost is flat in R; rowa's grows linearly (R door
calls).  Reads cost one door call under both rules.  That is precisely
the trade surface that makes replication policy a per-object choice.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CounterImpl, sim_us
from repro.core.registry import SubcontractRegistry
from repro.kernel.nucleus import Kernel
from repro.runtime.transfer import transfer
from repro.subcontracts import standard_subcontracts
from repro.subcontracts.replicon import RepliconGroup
from repro.subcontracts.rowa import RowaGroup

REPLICAS = (1, 2, 4, 8)


class SyncedCounter(CounterImpl):
    def __init__(self, group):
        super().__init__()
        self._group = group

    def add(self, n):
        self._group.broadcast(lambda impl: impl._apply(n))
        return self.value

    def _apply(self, n):
        self.value += n


def _world(r, counter_module, flavour):
    kernel = Kernel()
    binding = counter_module.binding("counter")
    domains = []
    for i in range(r):
        domain = kernel.create_domain(f"replica-{i}")
        SubcontractRegistry(domain).register_many(standard_subcontracts())
        domains.append(domain)
    client = kernel.create_domain("client")
    SubcontractRegistry(client).register_many(standard_subcontracts())

    if flavour == "replicon":
        group = RepliconGroup(binding)
        for domain in domains:
            group.add_replica(domain, SyncedCounter(group))
    else:
        group = RowaGroup(binding, read_ops=("total",))
        for domain in domains:
            group.add_replica(domain, CounterImpl())
    obj = transfer(group.make_object(domains[0]), client)
    return kernel, obj


@pytest.mark.benchmark(group="A6-replication")
@pytest.mark.parametrize("r", REPLICAS)
def bench_replicon_write(benchmark, counter_module, r):
    kernel, obj = _world(r, counter_module, "replicon")
    benchmark(obj.add, 1)


@pytest.mark.benchmark(group="A6-replication")
@pytest.mark.parametrize("r", REPLICAS)
def bench_rowa_write(benchmark, counter_module, r):
    kernel, obj = _world(r, counter_module, "rowa")
    benchmark(obj.add, 1)


@pytest.mark.benchmark(group="A6-replication")
def bench_a6_shape_and_record(benchmark, counter_module, record):
    kernel0, obj0 = _world(2, counter_module, "rowa")
    benchmark(obj0.total)

    replicon_writes = []
    rowa_writes = []
    for r in REPLICAS:
        k1, replicon_obj = _world(r, counter_module, "replicon")
        k2, rowa_obj = _world(r, counter_module, "rowa")
        w_replicon = min(sim_us(k1, lambda: replicon_obj.add(1)) for _ in range(3))
        w_rowa = min(sim_us(k2, lambda: rowa_obj.add(1)) for _ in range(3))
        r_replicon = min(sim_us(k1, replicon_obj.total) for _ in range(3))
        r_rowa = min(sim_us(k2, rowa_obj.total) for _ in range(3))
        replicon_writes.append(w_replicon)
        rowa_writes.append(w_rowa)
        record(
            "A6",
            f"R={r}: write replicon {w_replicon:8.1f} / rowa {w_rowa:8.1f} "
            f"sim-us; read replicon {r_replicon:6.1f} / rowa {r_rowa:6.1f}",
        )
        # Reads cost one door call under both rules.
        assert abs(r_replicon - r_rowa) < 0.1 * r_replicon

    # Shape: replicon's write is flat in R; rowa's grows ~linearly.
    assert max(replicon_writes) - min(replicon_writes) < 0.1 * replicon_writes[0]
    assert rowa_writes[-1] > 6 * rowa_writes[0]
    for earlier, later in zip(rowa_writes, rowa_writes[1:]):
        assert later > earlier
