"""E10 — Section 2.1: marshalling styles.

The related-work section contrasts three ways of marshalling objects:

* marshal the internal state (by value) — right for "lightweight
  abstractions, such as an object representing a cartesian coordinate
  pair";
* marshal an identifying token (by reference, Eden-style) — right for
  "heavyweight objects, such as files or databases";
* let the object's own machinery choose — the subcontract answer.

Series regenerated: transmission cost by state size for by-value vs
by-reference, showing the crossover that motivates supporting both; plus
the post-transmission access cost, where by-value is free and
by-reference pays a remote call.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import ship, sim_us
from repro.idl.compiler import compile_idl
from repro.kernel.nucleus import Kernel
from repro.core.registry import SubcontractRegistry
from repro.marshal.buffer import MarshalBuffer
from repro.subcontracts import standard_subcontracts
from repro.subcontracts.singleton import SingletonServer

STYLES_IDL = """
struct payload {
    bytes state;
}

interface holder {
    bytes state();
}

interface sink {
    void take_value(payload p);
    void take_reference(holder h);
}
"""

SIZES = (16, 256, 4096, 65536)


@pytest.fixture
def world():
    module = compile_idl(STYLES_IDL, "marshal_styles")
    kernel = Kernel()
    server = kernel.create_domain("server")
    client = kernel.create_domain("client")
    for domain in (server, client):
        SubcontractRegistry(domain).register_many(standard_subcontracts())

    received = {}

    class SinkImpl:
        def take_value(self, p):
            received["value"] = p

        def take_reference(self, h):
            received["reference"] = h

    sink = ship(
        kernel,
        server,
        client,
        SingletonServer(server).export(SinkImpl(), module.binding("sink")),
        module.binding("sink"),
    )
    return kernel, client, sink, module, received


class HolderImpl:
    def __init__(self, state: bytes) -> None:
        self._state = state

    def state(self) -> bytes:
        return self._state


@pytest.mark.benchmark(group="E10-styles")
@pytest.mark.parametrize("size", SIZES)
def bench_transmit_by_value(benchmark, world, size):
    kernel, client, sink, module, _ = world
    payload = module.payload(state=b"s" * size)
    benchmark(sink.take_value, payload)


@pytest.mark.benchmark(group="E10-styles")
@pytest.mark.parametrize("size", SIZES)
def bench_transmit_by_reference(benchmark, world, size):
    kernel, client, sink, module, _ = world
    exporter = SingletonServer(client)

    def run():
        holder = exporter.export(HolderImpl(b"s" * size), module.binding("holder"))
        sink.take_reference(holder)

    benchmark(run)


@pytest.mark.benchmark(group="E10-styles")
def bench_e10_shape_and_record(benchmark, world, record):
    kernel, client, sink, module, received = world
    exporter = SingletonServer(client)
    benchmark(sink.take_value, module.payload(state=b"s" * 16))

    crossover_seen = False
    previous_delta = None
    for size in SIZES:
        state = b"s" * size
        value_cost = min(
            sim_us(kernel, lambda: sink.take_value(module.payload(state=state)))
            for _ in range(3)
        )

        def by_reference():
            holder = exporter.export(HolderImpl(state), module.binding("holder"))
            sink.take_reference(holder)

        reference_cost = min(sim_us(kernel, by_reference) for _ in range(3))
        record(
            "E10",
            f"state={size:6d}B: by-value {value_cost:9.1f} sim-us, "
            f"by-reference {reference_cost:9.1f} sim-us",
        )
        if value_cost > reference_cost:
            crossover_seen = True
        delta = value_cost - reference_cost
        if previous_delta is not None:
            assert delta > previous_delta  # by-value grows with state size
        previous_delta = delta

    # Shape: small states favour by-value; big states favour the token.
    small_value = sim_us(
        kernel, lambda: sink.take_value(module.payload(state=b"xy"))
    )
    small_ref = sim_us(
        kernel,
        lambda: sink.take_reference(
            exporter.export(HolderImpl(b"xy"), module.binding("holder"))
        ),
    )
    assert small_value < small_ref
    assert crossover_seen

    # Post-transmission access: the by-value copy is local and free; the
    # reference pays a remote call per access.
    holder = received["reference"]
    from repro.core import narrow

    remote_holder = narrow(holder, module.binding("holder"))
    access_reference = sim_us(kernel, remote_holder.state)
    access_value = sim_us(kernel, lambda: received["value"].state)
    record(
        "E10",
        f"post-transmit access: by-value {access_value:.1f} sim-us, "
        f"by-reference {access_reference:.1f} sim-us",
    )
    assert access_value < access_reference
