"""P4 — fault-plane overhead microbench (PR 4's robustness tentpole gate).

Measures what the chaos/deadline/retry machinery costs the P1 hot path,
in three configurations:

* **uninstalled** (every kernel's default ``kernel.chaos = None``, no
  deadline set): the hot path pays one attribute read and one branch per
  interception point.  The PR gate is that this regresses pre-chaos
  ``general_wall_us`` by at most 2% (same-session interleaved A/B, see
  :data:`PR_AB_VS_PRE_CHAOS`), and that uninstalled simulated time is
  *bit-for-bit* identical to the pre-chaos tree (asserted on every run
  against the pinned :data:`PRE_CHAOS_GENERAL_SIM_US`).
* **installed but quiet** (a ``FaultPlane`` with every rate at zero):
  a zero rate draws nothing from the RNG and charges nothing to the
  clock, so quiet-plane sim time must equal uninstalled sim time
  bit-for-bit — installing the plane buys fault *capability*, not fault
  *cost*.
* **degraded** (rawnet under 1% / 5% datagram loss): deterministic
  sim-us/call of the retransmission tax, asserted monotone in the loss
  rate — the numbers the fault plane exists to produce.

How the ≤2% uninstalled-wall gate was enforced honestly (same story as
P3): wall clocks recorded in a JSON measure the machine of the day, so
the gate was applied as a same-session interleaved A/B against the
pre-chaos commit; the per-round spread on this host was large (~20%,
shared machine), so the comparison statistic is the best-of across all
alternating rounds — the floor each tree can reach — committed below in
:data:`PR_AB_VS_PRE_CHAOS` and riding into ``BENCH_P4.json``.  What *is*
asserted on every run are the machine-independent invariants: the two
sim-time parities and the degraded-mode monotonicity.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_p1_hotpath import best_of, build_world
from benchmarks.conftest import COUNTER_IDL, CounterImpl, ship, sim_us
from repro.idl.compiler import compile_idl
from repro.kernel.clock import ClockWindow
from repro.kernel.errors import CommunicationError
from repro.runtime.chaos import install_chaos
from repro.runtime.env import Environment
from repro.subcontracts.rawnet import RawNetServer

#: chaos-uninstalled wall-us/call may regress at most this fraction
#: versus the pre-chaos tree measured in the same session
UNINSTALLED_OVERHEAD_GATE = 0.02

#: general-stub sim-us/call recorded by the PRE-chaos tree (the same
#: tracing-disabled figure PR 3 pinned; the fault plane and the deadline
#: gate charge nothing while idle, so it must not move).  The sim clock
#: is deterministic, so the check is machine-independent.
PRE_CHAOS_GENERAL_SIM_US = 111.61000000010245

#: the PR-time wall gate record: ten alternating best-of-6000 rounds of
#: the P1 general-stub probe on this tree versus a worktree at the
#: pre-chaos commit (ddecf03), same machine, same session.  Per-round
#: spread on either tree was ~20% (shared host drifting between rounds;
#: each tree both won and lost individual pairs), so the comparison is
#: floor-to-floor: best-of 9.19 instrumented vs 9.03 pre-chaos = +1.8%,
#: inside the 2% gate.
PR_AB_VS_PRE_CHAOS = {
    "pre_chaos_commit": "ddecf03",
    "rounds_per_sample": 6000,
    "pre_chaos_general_wall_us": [
        9.10, 9.23, 9.03, 9.20, 9.72, 10.97, 10.92, 11.56, 11.09, 11.96,
    ],
    "instrumented_general_wall_us": [
        15.70, 11.70, 9.43, 11.23, 11.09, 9.39, 9.19, 11.80, 11.32, 11.53,
    ],
    "best_of_overhead_pct": round(100.0 * (9.19 - 9.03) / 9.03, 1),
    "gate_pct": 100.0 * UNINSTALLED_OVERHEAD_GATE,
    "gate": "pass",
}

#: datagram loss rates for the degraded-mode sweep
DEGRADED_DROP_RATES = (0.0, 0.01, 0.05)


def degraded_rawnet(drop: float, calls: int = 300) -> dict:
    """Drive rawnet calls under ``drop`` datagram loss; sim-us/call.

    Everything here is simulated time under a fixed seed, so the numbers
    are deterministic and machine-independent: the retransmission tax is
    a property of the loss rate and the RTO schedule, not of the host.
    """
    env = Environment(latency_us=200.0)
    server = env.create_domain(env.machine("s"), "server")
    client = env.create_domain(env.machine("c"), "client")
    module = compile_idl(COUNTER_IDL, f"p4_rawnet_{int(drop * 1000)}")
    binding = module.binding("counter")
    exported = RawNetServer(server).export(CounterImpl(), binding)
    obj = ship(env.kernel, server, client, exported, binding)
    plane = env.install_chaos(seed=1)
    plane.default_link.drop = drop

    ok = failed = 0
    with ClockWindow(env.clock) as window:
        for _ in range(calls):
            try:
                obj.add(1)
            except CommunicationError:
                failed += 1
            else:
                ok += 1
    per_call = window.elapsed_us / calls
    return {
        "drop_rate": drop,
        "calls": calls,
        "ok": ok,
        "failed": failed,
        "sim_us_per_call": round(per_call, 2),
        "calls_per_sim_second": round(1e6 / per_call, 1),
        "datagrams_dropped": plane.injected.get("datagram_drop", 0),
    }


def run(rounds: int = 20000, warmup: int = 2000, degraded_calls: int = 300) -> dict:
    """Run the P4 overhead bench; returns the measurement dict."""
    # Two identical P1 worlds; only one gets a (quiet) fault plane.
    kernel_off, _, general_off, _ = build_world()
    kernel_quiet, _, general_quiet, _ = build_world()
    install_chaos(kernel_quiet, seed=0)  # every rate zero: capability only

    for _ in range(warmup):
        general_off.total()
        general_quiet.total()

    sim_off = min(sim_us(kernel_off, general_off.total) for _ in range(5))
    sim_quiet = min(sim_us(kernel_quiet, general_quiet.total) for _ in range(5))

    results = {
        "rounds": rounds,
        "uninstalled_general_wall_us": round(best_of(general_off.total, rounds), 2),
        "quiet_plane_general_wall_us": round(best_of(general_quiet.total, rounds), 2),
        "uninstalled_general_sim_us": sim_off,
        "quiet_plane_general_sim_us": sim_quiet,
        "degraded_rawnet": [
            degraded_rawnet(drop, degraded_calls) for drop in DEGRADED_DROP_RATES
        ],
    }
    results["quiet_plane_wall_overhead_pct"] = round(
        100.0
        * (results["quiet_plane_general_wall_us"] - results["uninstalled_general_wall_us"])
        / results["uninstalled_general_wall_us"],
        1,
    )

    # -- deterministic invariants (machine-independent) -----------------

    # Uninstalled mode charges not one simulated nanosecond: sim time
    # matches the recorded pre-chaos tree bit-for-bit.
    assert abs(sim_off - PRE_CHAOS_GENERAL_SIM_US) < 1e-6, (
        f"chaos-uninstalled sim time drifted: {sim_off} != pre-chaos "
        f"record {PRE_CHAOS_GENERAL_SIM_US}"
    )
    # A quiet plane draws nothing and charges nothing: installing it must
    # not move sim time at all.
    assert sim_quiet == sim_off, (
        f"quiet fault plane charged sim time: {sim_quiet} != {sim_off}"
    )
    # The retransmission tax grows with the loss rate, and the protocol
    # still gets (essentially) every call through at these rates.
    clean, light, heavy = results["degraded_rawnet"]
    assert clean["sim_us_per_call"] < light["sim_us_per_call"] < heavy["sim_us_per_call"]
    assert clean["failed"] == 0 and clean["datagrams_dropped"] == 0
    assert heavy["datagrams_dropped"] > light["datagrams_dropped"] > 0
    for entry in (light, heavy):
        assert entry["ok"] >= 0.95 * entry["calls"], (
            f"rawnet lost {entry['failed']} calls at drop={entry['drop_rate']}"
        )
    return results


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


@pytest.fixture
def worlds():
    kernel_off, _, general_off, _ = build_world()
    kernel_quiet, _, general_quiet, _ = build_world()
    install_chaos(kernel_quiet, seed=0)
    return general_off, general_quiet


@pytest.mark.benchmark(group="P4-chaos-overhead")
def bench_p4_uninstalled_general(benchmark, worlds):
    general_off, _ = worlds
    benchmark(general_off.total)


@pytest.mark.benchmark(group="P4-chaos-overhead")
def bench_p4_quiet_plane_general(benchmark, worlds):
    _, general_quiet = worlds
    benchmark(general_quiet.total)


@pytest.mark.bench_smoke
def bench_p4_shape_and_record(record):
    results = run(rounds=2000, warmup=500, degraded_calls=150)
    record("P4", f"uninstalled general: {results['uninstalled_general_wall_us']:8.2f} wall-us/call (best)")
    record("P4", f"quiet plane general: {results['quiet_plane_general_wall_us']:8.2f} wall-us/call (best)")
    record("P4", f"quiet plane overhead: {results['quiet_plane_wall_overhead_pct']:+.1f}%")
    for entry in results["degraded_rawnet"]:
        record(
            "P4",
            f"rawnet @ {entry['drop_rate']:.0%} loss: "
            f"{entry['sim_us_per_call']:8.2f} sim-us/call "
            f"({entry['calls_per_sim_second']:.0f} calls/sim-s, "
            f"{entry['failed']} failed)",
        )
