"""A3 (ablation) — Section 9.2: door transport vs raw-packet transport.

"In different operating system environments it may be appropriate ... to
operate at a lower level and build exclusively on raw network packets."

Rows regenerated: call latency via the kernel's (reliable) forwarded
door path vs the rawnet subcontract's datagram protocol, at packet loss
0 %, 20 %, 40 %.

Shape: loss-free rawnet is competitive with doors; under loss its mean
latency grows (retransmission timeouts) while the door path is unaffected
— and every call still completes, because the retransmit/duplicate-
suppression protocol absorbs the loss.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CounterImpl, ship, sim_us
from repro.marshal.buffer import MarshalBuffer
from repro.runtime.env import Environment
from repro.subcontracts.rawnet import RawNetServer
from repro.subcontracts.singleton import SingletonServer

LOSS_RATES = (0.0, 0.2, 0.4)


def _world(loss, counter_module):
    env = Environment(datagram_loss=loss, seed=2024)
    server = env.create_domain("east", "server")
    client = env.create_domain("west", "client")
    binding = counter_module.binding("counter")

    door_obj = ship(
        env.kernel,
        server,
        client,
        SingletonServer(server).export(CounterImpl(), binding),
        binding,
    )
    raw_obj = ship(
        env.kernel,
        server,
        client,
        RawNetServer(server).export(CounterImpl(), binding),
        binding,
    )
    # A lossy link warrants a patient retransmission budget.
    client.locals["rawnet_max_attempts"] = 24
    return env, door_obj, raw_obj


@pytest.mark.benchmark(group="A3-transport")
def bench_door_transport(benchmark, counter_module):
    env, door_obj, _ = _world(0.0, counter_module)
    benchmark(door_obj.total)


@pytest.mark.benchmark(group="A3-transport")
@pytest.mark.parametrize("loss", LOSS_RATES)
def bench_rawnet_transport(benchmark, counter_module, loss):
    env, _, raw_obj = _world(loss, counter_module)
    # Bounded rounds: with packet loss the (deterministic, seeded) drop
    # pattern must not be asked for hundreds of thousands of calls.
    benchmark.pedantic(raw_obj.total, rounds=60, iterations=1, warmup_rounds=2)


@pytest.mark.benchmark(group="A3-transport")
def bench_a3_shape_and_record(benchmark, counter_module, record):
    env0, door_obj, raw0 = _world(0.0, counter_module)
    benchmark(raw0.total)

    door = min(sim_us(env0, door_obj.total) for _ in range(5))
    record("A3", f"door transport (reliable):     {door:10.1f} sim-us")

    CALLS = 40
    means = []
    for loss in LOSS_RATES:
        env, _, raw_obj = _world(loss, counter_module)
        total = sum(sim_us(env, raw_obj.total) for _ in range(CALLS))
        mean = total / CALLS
        means.append(mean)
        record("A3", f"rawnet @ {loss:3.0%} loss: mean over {CALLS} calls "
                     f"{mean:10.1f} sim-us (all calls completed)")

    # Shape: loss-free rawnet in the same cost class as doors (same
    # network, no kernel door traversal) ...
    assert means[0] < 2 * door
    # ... and mean latency grows with loss (RTO-driven retransmits),
    # while correctness never wavers (asserted by completing all calls).
    assert means[0] < means[1] < means[2]
