"""E5 — Section 8.2, Figure 5: the caching subcontract.

Series regenerated:

* cold (remote) read vs warm (machine-local cache) read latency;
* effective mean read latency as the workload's re-read fraction rises
  (the benefit curve that justifies the "significant overhead to object
  unmarshalling" the paper concedes in Section 9.3);
* that registration overhead itself: unmarshal cost of a caching object
  vs a singleton object.

Shape: warm reads beat cold reads by roughly the network round-trip;
mean latency falls monotonically with the re-read fraction; caching's
unmarshal is markedly more expensive than singleton's.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import ship, sim_us
from repro.marshal.buffer import MarshalBuffer
from repro.runtime.env import Environment
from repro.services.fs import FileServer, fs_module


def _world():
    env = Environment()
    server_machine = env.machine("file-server")
    client_machine = env.machine("desk")
    env.install_cache_manager(client_machine)
    fs_domain = env.create_domain(server_machine, "fs")
    client = env.create_domain(client_machine, "user")
    file_server = FileServer(fs_domain)
    file_server.make_file("/data", bytes(range(256)) * 16)
    module = fs_module()
    fs = ship(
        env.kernel,
        fs_domain,
        client,
        file_server.root.spring_copy(),
        module.binding("file_system"),
    )
    return env, fs_domain, client, file_server, fs, module


@pytest.fixture
def world():
    return _world()


@pytest.mark.benchmark(group="E5-read")
def bench_remote_read_plain_file(benchmark, world):
    env, _, _, _, fs, _ = world
    handle = fs.open("/data")
    benchmark(handle.read, 0, 128)


@pytest.mark.benchmark(group="E5-read")
def bench_warm_cached_read(benchmark, world):
    env, _, _, _, fs, _ = world
    handle = fs.open_cached("/data")
    handle.read(0, 128)  # warm the cache
    benchmark(handle.read, 0, 128)


@pytest.mark.benchmark(group="E5-read")
def bench_e5_shape_and_record(benchmark, world, record):
    env, fs_domain, client, file_server, fs, module = world
    plain = fs.open("/data")
    cached = fs.open_cached("/data")
    benchmark(plain.size)

    remote = min(sim_us(env, lambda: plain.read(0, 128)) for _ in range(3))
    cold = sim_us(env, lambda: cached.read(0, 128))
    warm = min(sim_us(env, lambda: cached.read(0, 128)) for _ in range(3))
    record("E5", f"remote read: {remote:9.1f} sim-us")
    record("E5", f"cold cached read: {cold:9.1f} sim-us (miss: cache + server)")
    record("E5", f"warm cached read: {warm:9.1f} sim-us (machine-local)")
    record("E5", f"warm speedup over remote: {remote / warm:.1f}x")

    # Figure-5 shape: warm reads never leave the machine, so they beat
    # remote reads by at least the network round trip.
    assert warm < remote / 5
    assert cold >= remote  # a miss pays the front AND the server

    # Re-read fraction sweep: mean latency falls as locality rises.
    means = []
    for rereads in (0, 2, 8, 32):
        handle = fs.open_cached("/data")
        total = sim_us(env, lambda: handle.read(0, 64))
        for _ in range(rereads):
            total += sim_us(env, lambda: handle.read(0, 64))
        mean = total / (1 + rereads)
        means.append(mean)
        record("E5", f"re-reads={rereads:3d}: mean read latency {mean:9.1f} sim-us")
    assert all(means[i] > means[i + 1] for i in range(len(means) - 1))

    # Section 9.3: "the caching subcontract adds a significant overhead
    # to object unmarshalling".
    plain_unmarshal = sim_us(env, lambda: fs.open("/data").spring_consume())
    caching_unmarshal = sim_us(env, lambda: fs.open_cached("/data").spring_consume())
    record(
        "E5",
        f"unmarshal cost: singleton {plain_unmarshal:9.1f} sim-us, "
        f"caching {caching_unmarshal:9.1f} sim-us "
        f"({caching_unmarshal / plain_unmarshal:.1f}x)",
    )
    assert caching_unmarshal > 1.5 * plain_unmarshal
