"""Run the perf benches without pytest and emit machine-readable results.

Usage::

    PYTHONPATH=src:. python benchmarks/run_all.py [--rounds N] [--quick]

Writes ``benchmarks/BENCH_P1.json`` with three blocks:

* ``baseline`` — the seed tree's wall-µs/call figures (measured with this
  same harness before the PR-1 hot-path overhaul),
* ``current`` — this tree, measured now,
* ``improvement_pct`` — relative wall-time improvement per configuration.

Simulated-time figures ride along in ``current`` so accounting drift is
visible in the same artifact; the bench itself asserts the sim-time
shape (see :mod:`benchmarks.bench_p1_hotpath`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
OUT_PATH = BENCH_DIR / "BENCH_P1.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--rounds", type=int, default=20000, help="samples per configuration"
    )
    parser.add_argument(
        "--quick", action="store_true", help="small config (smoke-test sizing)"
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(BENCH_DIR.parent / "src"))
    sys.path.insert(0, str(BENCH_DIR.parent))
    from benchmarks.bench_p1_hotpath import SEED_BASELINE, run

    rounds = 2000 if args.quick else args.rounds
    warmup = 500 if args.quick else 2000
    print(f"P1 hot-path bench: {rounds} rounds per configuration ...")
    current = run(rounds=rounds, warmup=warmup)

    improvement = {}
    for key in ("raw_door_wall_us", "general_wall_us", "specialized_wall_us"):
        before = SEED_BASELINE[key]
        after = current[key]
        improvement[key] = round(100.0 * (before - after) / before, 1)

    payload = {
        "bench": "P1-hotpath",
        "baseline": SEED_BASELINE,
        "current": current,
        "improvement_pct": improvement,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    for key, pct in improvement.items():
        name = key.replace("_wall_us", "")
        print(
            f"  {name:12s} {SEED_BASELINE[key]:7.2f} -> {current[key]:7.2f} "
            f"wall-us/call  ({pct:+.1f}%)"
        )
    print(
        f"  buffer allocs/call (warm pool): "
        f"{current['general_buffer_allocs_per_call']:.3f} "
        f"(baseline {SEED_BASELINE['general_buffer_allocs_per_call']:.1f})"
    )
    print(f"wrote {OUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
