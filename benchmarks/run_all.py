"""Run the perf benches without pytest and emit machine-readable results.

Usage::

    PYTHONPATH=src:. python benchmarks/run_all.py [--rounds N] [--quick]

Writes ``benchmarks/BENCH_P1.json`` with three blocks:

* ``baseline`` — the seed tree's wall-µs/call figures (measured with this
  same harness before the PR-1 hot-path overhaul),
* ``current`` — this tree, measured now,
* ``improvement_pct`` — relative wall-time improvement per configuration.

Simulated-time figures ride along in ``current`` so accounting drift is
visible in the same artifact; the bench itself asserts the sim-time
shape (see :mod:`benchmarks.bench_p1_hotpath`).

Also writes ``benchmarks/BENCH_P3.json`` (the PR-3 observability
overhead bench): tracing disabled vs enabled on the same hot path,
the deterministic sim-parity gates (asserted inside the bench run),
the same-session cross-check of the disabled path against the P1
numbers just measured, and the committed PR-time A/B record of the
2% disabled-overhead wall gate (see
:mod:`benchmarks.bench_p3_obs_overhead`).

And ``benchmarks/BENCH_P4.json`` (the PR-4 fault-plane overhead bench):
chaos uninstalled vs installed-but-quiet on the same hot path (both
sim-parity gates asserted inside the run), the deterministic
degraded-mode retransmission tax at 1% / 5% datagram loss, and the
committed PR-time A/B record of the 2% uninstalled-overhead wall gate
(see :mod:`benchmarks.bench_p4_chaos_overhead`).

And ``benchmarks/BENCH_P5.json`` (the PR-5 admission-control bench):
admission uninstalled vs installed-but-ungoverned on the same hot path
(both sim-parity gates asserted inside the run), the deterministic
goodput curve at 1x / 2x / 5x offered load with shedding on vs off
(the ≥2x-at-5x gate asserted inside the run), and the committed
PR-time A/B record of the 2% uninstalled-overhead wall gate (see
:mod:`benchmarks.bench_p5_admission`).

And ``benchmarks/BENCH_P6.json`` (the PR-6 process-fabric bench): the
default transport's sim-parity gate (asserted inside the run), the
committed PR-time A/B record of the 2% default-transport wall gate, and
the multiprocess scaling legs — aggregate general-stub wall calls/sec
across 1 / 2 / 4 real worker processes, with the ≥2.5x 1→4 gate
asserted when the runner has ≥ 4 cores and recorded (with the core
count) otherwise (see :mod:`benchmarks.bench_p6_procfabric`).  Skipped
with a note on platforms without the ``fork`` start method.

And ``benchmarks/BENCH_P7.json`` (the PR-7 springtsan bench): detector
uninstalled vs enabled on the same hot path (uninstalled sim time
bit-for-bit the pre-P7 record, enabled sim time identical — the
detector charges nothing — both asserted inside the run), the enabled
wall-overhead record, the four canonical race classes replayed and
classified deterministically, the whole-program springlint timing over
src/ (serial and ``--jobs 4``, zero findings asserted), and the
committed PR-time A/B record of the 2% uninstalled-overhead wall gate
(see :mod:`benchmarks.bench_p7_tsan`).

And ``benchmarks/BENCH_P8.json`` (the PR-8 SLO-plane bench): windowed
feed uninstalled vs tracer+windows enabled on the same hot path
(uninstalled sim time bit-for-bit the pre-P8 record, enabled sim
surcharge deterministic across fresh worlds, snapshot p99 == live p99 —
all asserted inside the run), the raw sketch insert/quantile micro-leg,
the SLO-engine evaluation micro-leg with exact snapshot replay, and the
committed PR-time A/B record of the 2% uninstalled-overhead wall gate
(see :mod:`benchmarks.bench_p8_slo`).

And ``benchmarks/BENCH_P9.json`` (the PR-9 exactly-once bench): the
idempotency stamp gate uninstalled on the same hot path (general-stub
sim time bit-for-bit the pre-P9 record, asserted inside the run), the
committed PR-time A/B record of the 2% uninstalled-overhead wall gate,
the dedup-memo micro-leg, and the deterministic saga-overhead legs —
the same transfer workload at 0% / 1% / 5% crash-mid-call rates, each
leg replayed from its seed and asserted identical to the bit, with
money conservation asserted at every rate (see
:mod:`benchmarks.bench_p9_saga`).

And ``benchmarks/BENCH_P10.json`` (the PR-10 membership bench): the
membership plane uninstalled on the same hot path (general-stub sim
time bit-for-bit the pre-P10 record, asserted inside the run), the
committed PR-time A/B record of the 2% uninstalled-overhead wall gate,
and the deterministic failover legs — a five-member gossip + election
world per seed, leader crashed, crash-to-eviction and crash-to-new-term
distributions swept across twelve seeds, the whole sweep replayed and
asserted identical to the bit, every figure within the computable
protocol bound (see :mod:`benchmarks.bench_p10_membership`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
OUT_PATH = BENCH_DIR / "BENCH_P1.json"
P3_OUT_PATH = BENCH_DIR / "BENCH_P3.json"
P4_OUT_PATH = BENCH_DIR / "BENCH_P4.json"
P5_OUT_PATH = BENCH_DIR / "BENCH_P5.json"
P6_OUT_PATH = BENCH_DIR / "BENCH_P6.json"
P7_OUT_PATH = BENCH_DIR / "BENCH_P7.json"
P8_OUT_PATH = BENCH_DIR / "BENCH_P8.json"
P9_OUT_PATH = BENCH_DIR / "BENCH_P9.json"
P10_OUT_PATH = BENCH_DIR / "BENCH_P10.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--rounds", type=int, default=20000, help="samples per configuration"
    )
    parser.add_argument(
        "--quick", action="store_true", help="small config (smoke-test sizing)"
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(BENCH_DIR.parent / "src"))
    sys.path.insert(0, str(BENCH_DIR.parent))
    from benchmarks.bench_p1_hotpath import SEED_BASELINE, run

    rounds = 2000 if args.quick else args.rounds
    warmup = 500 if args.quick else 2000
    print(f"P1 hot-path bench: {rounds} rounds per configuration ...")
    current = run(rounds=rounds, warmup=warmup)

    improvement = {}
    for key in ("raw_door_wall_us", "general_wall_us", "specialized_wall_us"):
        before = SEED_BASELINE[key]
        after = current[key]
        improvement[key] = round(100.0 * (before - after) / before, 1)

    payload = {
        "bench": "P1-hotpath",
        "baseline": SEED_BASELINE,
        "current": current,
        "improvement_pct": improvement,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    for key, pct in improvement.items():
        name = key.replace("_wall_us", "")
        print(
            f"  {name:12s} {SEED_BASELINE[key]:7.2f} -> {current[key]:7.2f} "
            f"wall-us/call  ({pct:+.1f}%)"
        )
    print(
        f"  buffer allocs/call (warm pool): "
        f"{current['general_buffer_allocs_per_call']:.3f} "
        f"(baseline {SEED_BASELINE['general_buffer_allocs_per_call']:.1f})"
    )
    print(f"wrote {OUT_PATH}")

    from benchmarks.bench_p3_obs_overhead import PR_AB_VS_PRE_OBS
    from benchmarks.bench_p3_obs_overhead import run as run_p3

    print(f"P3 observability-overhead bench: {rounds} rounds per configuration ...")
    p3 = run_p3(rounds=rounds, warmup=warmup)

    # Same-session cross-check: the P1 general path *is* the
    # tracing-disabled path, so the two measurements of identical code
    # must agree within run-to-run noise.  The true overhead-vs-pre-obs
    # record is the committed PR-time A/B (pr_ab_vs_pre_obs).
    same_session_pct = round(
        100.0
        * (p3["disabled_general_wall_us"] - current["general_wall_us"])
        / current["general_wall_us"],
        1,
    )
    p3_payload = {
        "bench": "P3-obs-overhead",
        "current": p3,
        "same_session_p1_general_wall_us": current["general_wall_us"],
        "disabled_vs_same_session_p1_pct": same_session_pct,
        "pr_ab_vs_pre_obs": PR_AB_VS_PRE_OBS,
    }
    P3_OUT_PATH.write_text(json.dumps(p3_payload, indent=2) + "\n")

    print(
        f"  disabled     {p3['disabled_general_wall_us']:7.2f} wall-us/call "
        f"(same-session P1 general: {current['general_wall_us']:.2f}, "
        f"{same_session_pct:+.1f}%)"
    )
    print(
        f"  enabled      {p3['enabled_general_wall_us']:7.2f} wall-us/call "
        f"({p3['enabled_wall_overhead_pct']:+.1f}% over disabled)"
    )
    print(
        f"  sim parity: disabled general {p3['disabled_general_sim_us']:.2f} "
        f"sim-us/call == pre-observability record (asserted)"
    )
    print(f"wrote {P3_OUT_PATH}")

    from benchmarks.bench_p4_chaos_overhead import PR_AB_VS_PRE_CHAOS
    from benchmarks.bench_p4_chaos_overhead import run as run_p4

    print(f"P4 fault-plane overhead bench: {rounds} rounds per configuration ...")
    p4 = run_p4(rounds=rounds, warmup=warmup)
    p4_payload = {
        "bench": "P4-chaos-overhead",
        "current": p4,
        "pr_ab_vs_pre_chaos": PR_AB_VS_PRE_CHAOS,
    }
    P4_OUT_PATH.write_text(json.dumps(p4_payload, indent=2) + "\n")

    print(
        f"  uninstalled  {p4['uninstalled_general_wall_us']:7.2f} wall-us/call; "
        f"quiet plane {p4['quiet_plane_general_wall_us']:.2f} "
        f"({p4['quiet_plane_wall_overhead_pct']:+.1f}%)"
    )
    for entry in p4["degraded_rawnet"]:
        print(
            f"  rawnet @ {entry['drop_rate']:4.0%} loss: "
            f"{entry['sim_us_per_call']:8.2f} sim-us/call "
            f"({entry['calls_per_sim_second']:.0f} calls/sim-s)"
        )
    print(f"wrote {P4_OUT_PATH}")

    from benchmarks.bench_p5_admission import PR_AB_VS_PRE_ADMISSION
    from benchmarks.bench_p5_admission import run as run_p5

    print(f"P5 admission-control bench: {rounds} rounds per configuration ...")
    p5 = run_p5(rounds=rounds, warmup=warmup)
    p5_payload = {
        "bench": "P5-admission",
        "current": p5,
        "pr_ab_vs_pre_admission": PR_AB_VS_PRE_ADMISSION,
    }
    P5_OUT_PATH.write_text(json.dumps(p5_payload, indent=2) + "\n")

    print(
        f"  uninstalled  {p5['uninstalled_general_wall_us']:7.2f} wall-us/call; "
        f"ungoverned {p5['ungoverned_general_wall_us']:.2f} "
        f"({p5['ungoverned_wall_overhead_pct']:+.1f}%)"
    )
    for leg in p5["goodput"]:
        mode = "shed" if leg["shedding"] else "wait"
        print(
            f"  goodput @ {leg['factor']}x [{mode}]: "
            f"{leg['goodput_per_sim_s']:8.1f} ok-calls/sim-s "
            f"({leg['ok']} ok, {leg['busy']} busy)"
        )
    print(
        f"  goodput ratio at 5x: {p5['goodput_ratio_at_5x']:.2f}x (gate >= 2x)"
    )
    print(f"wrote {P5_OUT_PATH}")

    import multiprocessing

    from benchmarks.bench_p6_procfabric import PR_AB_VS_PRE_P6
    from benchmarks.bench_p6_procfabric import run as run_p6

    if "fork" not in multiprocessing.get_all_start_methods():
        print("P6 process-fabric bench: skipped (no fork start method)")
        return run_p7_bench(rounds, warmup)
    calls = 60 if args.quick else 300
    print(f"P6 process-fabric bench: {calls} calls/worker per scaling leg ...")
    p6 = run_p6(rounds=rounds, warmup=warmup, calls_per_worker=calls)
    p6_payload = {
        "bench": "P6-procfabric",
        "current": p6,
        "pr_ab_vs_pre_p6": PR_AB_VS_PRE_P6,
    }
    P6_OUT_PATH.write_text(json.dumps(p6_payload, indent=2) + "\n")

    print(
        f"  default transport  {p6['default_transport_general_wall_us']:7.2f} "
        f"wall-us/call; sim {p6['default_transport_general_sim_us']:.2f} "
        f"sim-us/call == pre-P6 record (asserted)"
    )
    for leg in p6["scaling"]:
        print(
            f"  procfabric @ {leg['workers']} worker(s): "
            f"{leg['wall_calls_per_s']:8.1f} wall calls/s "
            f"({leg['wall_us_per_call']:.0f} wall-us/call)"
        )
    gate_note = (
        "asserted"
        if p6["scaling_gate_checked"]
        else f"recorded only ({p6['cores']} core(s); gate needs >= 4)"
    )
    print(
        f"  scaling {p6['scaling_span']}: {p6['scaling_ratio']:.2f}x "
        f"(gate >= {p6['scaling_gate']}x, {gate_note})"
    )
    print(f"wrote {P6_OUT_PATH}")
    return run_p7_bench(rounds, warmup)


def run_p7_bench(rounds: int, warmup: int) -> int:
    from benchmarks.bench_p7_tsan import PR_AB_VS_PRE_TSAN
    from benchmarks.bench_p7_tsan import run as run_p7

    print(f"P7 springtsan bench: {rounds} rounds per configuration ...")
    p7 = run_p7(rounds=rounds, warmup=warmup)
    p7_payload = {
        "bench": "P7-tsan",
        "current": p7,
        "pr_ab_vs_pre_tsan": PR_AB_VS_PRE_TSAN,
    }
    P7_OUT_PATH.write_text(json.dumps(p7_payload, indent=2) + "\n")

    print(
        f"  uninstalled  {p7['uninstalled_general_wall_us']:7.2f} wall-us/call; "
        f"enabled {p7['enabled_general_wall_us']:.2f} "
        f"({p7['enabled_wall_overhead_pct']:+.1f}% wall, sim bit-for-bit)"
    )
    detected = sum(1 for hit in p7["race_classes"].values() if hit)
    print(
        f"  race classes: {detected}/{len(p7['race_classes'])} classified "
        f"correctly (asserted)"
    )
    lint = p7["springlint_whole_program"]
    print(
        f"  springlint whole-program: {lint['findings']} findings in "
        f"{lint['files']} files ({lint['jobs_1_wall_ms']:.0f} ms serial, "
        f"{lint['jobs_4_wall_ms']:.0f} ms at --jobs 4)"
    )
    print(f"wrote {P7_OUT_PATH}")
    return run_p8_bench(rounds, warmup)


def run_p8_bench(rounds: int, warmup: int) -> int:
    from benchmarks.bench_p8_slo import PR_AB_VS_PRE_P8
    from benchmarks.bench_p8_slo import run as run_p8

    print(f"P8 SLO-plane bench: {rounds} rounds per configuration ...")
    p8 = run_p8(rounds=rounds, warmup=warmup)
    p8_payload = {
        "bench": "P8-slo",
        "current": p8,
        "pr_ab_vs_pre_p8": PR_AB_VS_PRE_P8,
    }
    P8_OUT_PATH.write_text(json.dumps(p8_payload, indent=2) + "\n")

    print(
        f"  uninstalled  {p8['uninstalled_general_wall_us']:7.2f} wall-us/call; "
        f"enabled {p8['enabled_general_wall_us']:.2f} "
        f"({p8['enabled_wall_overhead_pct']:+.1f}% wall, "
        f"+{p8['enabled_sim_surcharge_us']:.2f} sim-us/call tariff)"
    )
    micro = p8["sketch_micro"]
    print(
        f"  sketch: {micro['insert_ns']:.0f} ns/insert, p99 read "
        f"{micro['quantile_p99_us']:.2f} us at {micro['values']} values "
        f"({micro['buckets']} buckets)"
    )
    slo = p8["slo_eval_micro"]
    print(
        f"  slo engine: {slo['evaluate_us']:.0f} us/evaluation over "
        f"{slo['windows']} windows (snapshot replay exact, asserted)"
    )
    print(f"wrote {P8_OUT_PATH}")
    return run_p9_bench(rounds, warmup)


def run_p9_bench(rounds: int, warmup: int) -> int:
    from benchmarks.bench_p9_saga import PR_AB_VS_PRE_P9
    from benchmarks.bench_p9_saga import run as run_p9

    print(f"P9 exactly-once bench: {rounds} rounds per configuration ...")
    p9 = run_p9(rounds=rounds, warmup=warmup)
    p9_payload = {
        "bench": "P9-saga",
        "current": p9,
        "pr_ab_vs_pre_p9": PR_AB_VS_PRE_P9,
    }
    P9_OUT_PATH.write_text(json.dumps(p9_payload, indent=2) + "\n")

    print(
        f"  uninstalled  {p9['uninstalled_general_wall_us']:7.2f} wall-us/call "
        f"(sim bit-for-bit pre-P9, asserted)"
    )
    micro = p9["dedup_micro"]
    print(
        f"  dedup memo: {micro['miss_lookup_ns']:.0f} ns miss, "
        f"{micro['record_ns']:.0f} ns record, {micro['hit_lookup_ns']:.0f} ns "
        f"hit at {micro['entries']} entries"
    )
    for leg in p9["saga_legs"]:
        print(
            f"  saga @ {leg['crash_rate']:4.0%} crash: "
            f"{leg['sim_us_per_transfer']:9.2f} sim-us/transfer, "
            f"{leg['committed']}/{leg['transfers']} committed "
            f"(deterministic, asserted)"
        )
    print(f"wrote {P9_OUT_PATH}")
    return run_p10_bench(rounds, warmup)


def run_p10_bench(rounds: int, warmup: int) -> int:
    from benchmarks.bench_p10_membership import PR_AB_VS_PRE_P10
    from benchmarks.bench_p10_membership import run as run_p10

    print(f"P10 membership bench: {rounds} rounds per configuration ...")
    p10 = run_p10(rounds=rounds, warmup=warmup)
    p10_payload = {
        "bench": "P10-membership",
        "current": p10,
        "pr_ab_vs_pre_p10": PR_AB_VS_PRE_P10,
    }
    P10_OUT_PATH.write_text(json.dumps(p10_payload, indent=2) + "\n")

    print(
        f"  uninstalled  {p10['uninstalled_general_wall_us']:7.2f} wall-us/call "
        f"(sim bit-for-bit pre-P10, asserted)"
    )
    detection, failover = p10["detection"], p10["failover"]
    print(
        f"  detection over {p10['failover_seeds']} seeds: "
        f"{detection['min_us']:.0f} / {detection['median_us']:.0f} / "
        f"{detection['max_us']:.0f} us (min/median/max)"
    )
    print(
        f"  failover  over {p10['failover_seeds']} seeds: "
        f"{failover['min_us']:.0f} / {failover['median_us']:.0f} / "
        f"{failover['max_us']:.0f} us (deterministic, within bound, asserted)"
    )
    print(f"wrote {P10_OUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
