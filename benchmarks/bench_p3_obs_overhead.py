"""P3 — observability overhead microbench (PR 3's tentpole gate).

Measures the tracing layer's cost on the P1 hot path in both modes:

* **disabled** (every kernel's default ``NULL_TRACER``): the hot path
  pays exactly one attribute load and one branch per layer.  The PR gate
  is that this regresses pre-observability ``general_wall_us`` by at
  most 2%, and that disabled simulated time is *bit-for-bit* identical
  to the pre-observability tree (asserted on every run against the
  pinned :data:`PRE_OBS_GENERAL_SIM_US`).
* **enabled** (``install_tracer``): every call opens the invoke, door,
  handler, and skeleton spans.  Enabled sim time must exceed disabled by
  exactly ``spans_per_call * trace_span_us`` — the tracer is honest
  about its own probe cost and charges nothing else.

How the ≤2% disabled-wall gate is enforced honestly: re-measuring the
*seed* tree (zero code change) on the same machine at PR time came out
10% above the walls recorded in BENCH_P1.json — comparing today's wall
clock against a JSON recorded under different machine load measures the
machine, not the code.  So the wall gate was applied as a same-session
interleaved A/B against the pre-observability commit; the result is
committed below as :data:`PR_AB_VS_PRE_OBS` and rides into
``BENCH_P3.json``.  What *is* asserted on every run (and in tier-1 via
the bench_smoke tests) are the machine-independent invariants: disabled
sim time bit-for-bit equal to the recorded pre-observability figure,
and the enabled delta exactly the tracer's own probes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.bench_p1_hotpath import best_of, build_world
from benchmarks.conftest import sim_us
from repro.obs.tracer import install_tracer

BENCH_P1_PATH = Path(__file__).parent / "BENCH_P1.json"

#: tracing-disabled wall-us/call may regress at most this fraction
#: versus the pre-observability tree measured in the same session
DISABLED_OVERHEAD_GATE = 0.02

#: general-stub sim-us/call recorded by the PRE-observability tree
#: (BENCH_P1.json as committed by PR 1, before any tracer existed).
#: Pinned here as a constant so the bit-for-bit disabled-mode parity
#: gate survives BENCH_P1.json regenerations on this tree.  The sim
#: clock is deterministic, so the check is machine-independent.
PRE_OBS_GENERAL_SIM_US = 111.61000000010245

#: spans opened per general-stub call on the single-machine P1 path:
#: invoke + door + handler + skeleton
SPANS_PER_GENERAL_CALL = 4

#: the PR-time wall gate record: three interleaved best-of-8000 rounds of
#: bench_p1 on this tree versus a worktree at the pre-observability
#: commit (324467b), same machine, same session.  Best-of general wall:
#: 8.76 instrumented vs 8.79 seed — the disabled path is at parity,
#: inside the 2% gate (per-round spread on *either* tree was ~3%).
PR_AB_VS_PRE_OBS = {
    "pre_obs_commit": "324467b",
    "rounds_per_sample": 8000,
    "seed_general_wall_us": [8.80, 8.79, 8.94],
    "instrumented_general_wall_us": [9.06, 8.76, 9.04],
    "best_of_overhead_pct": round(100.0 * (8.76 - 8.79) / 8.79, 1),
    "gate_pct": 100.0 * DISABLED_OVERHEAD_GATE,
    "gate": "pass",
}


def recorded_p1() -> dict:
    """The ``current`` block of the committed BENCH_P1.json, or ``{}``."""
    if not BENCH_P1_PATH.exists():
        return {}
    return json.loads(BENCH_P1_PATH.read_text()).get("current", {})


def run(rounds: int = 20000, warmup: int = 2000) -> dict:
    """Run the P3 overhead bench; returns the measurement dict."""
    # Two identical worlds; only one gets a live tracer.
    kernel_off, _, general_off, special_off = build_world()
    kernel_on, _, general_on, special_on = build_world()
    tracer = install_tracer(kernel_on)

    for _ in range(warmup):
        general_off.total()
        special_off.total()
        general_on.total()
        special_on.total()

    model = kernel_on.clock.model
    sim_off = min(sim_us(kernel_off, general_off.total) for _ in range(5))
    sim_on = min(sim_us(kernel_on, general_on.total) for _ in range(5))

    results = {
        "rounds": rounds,
        "disabled_general_wall_us": round(best_of(general_off.total, rounds), 2),
        "enabled_general_wall_us": round(best_of(general_on.total, rounds), 2),
        "disabled_specialized_wall_us": round(best_of(special_off.total, rounds), 2),
        "enabled_specialized_wall_us": round(best_of(special_on.total, rounds), 2),
        "disabled_general_sim_us": sim_off,
        "enabled_general_sim_us": sim_on,
        "spans_per_general_call": SPANS_PER_GENERAL_CALL,
        "trace_span_us": model.trace_span_us,
    }
    results["enabled_wall_overhead_pct"] = round(
        100.0
        * (results["enabled_general_wall_us"] - results["disabled_general_wall_us"])
        / results["disabled_general_wall_us"],
        1,
    )

    baseline = recorded_p1()
    baseline_wall = baseline.get("general_wall_us")
    if baseline_wall:
        results["baseline_general_wall_us"] = baseline_wall
        results["disabled_vs_baseline_pct"] = round(
            100.0
            * (results["disabled_general_wall_us"] - baseline_wall)
            / baseline_wall,
            1,
        )

    # -- deterministic invariants (machine-independent) -----------------

    # Disabled mode charges not one simulated nanosecond for tracing:
    # sim time matches the recorded pre-observability tree bit-for-bit.
    assert abs(sim_off - PRE_OBS_GENERAL_SIM_US) < 1e-6, (
        f"tracing-disabled sim time drifted: {sim_off} != pre-observability "
        f"record {PRE_OBS_GENERAL_SIM_US}"
    )
    # Enabled mode charges exactly its own probes, nothing else.
    expected_probe = SPANS_PER_GENERAL_CALL * model.trace_span_us
    assert sim_on - sim_off == pytest.approx(expected_probe), (
        f"enabled-mode sim delta {sim_on - sim_off} != "
        f"{SPANS_PER_GENERAL_CALL} spans * {model.trace_span_us}us"
    )
    # The enabled world really traced: spans were recorded (ring wraps).
    assert tracer.spans(), "enabled world recorded no spans"
    return results


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


@pytest.fixture
def worlds():
    kernel_off, _, general_off, _ = build_world()
    kernel_on, _, general_on, _ = build_world()
    install_tracer(kernel_on)
    return general_off, general_on


@pytest.mark.benchmark(group="P3-obs-overhead")
def bench_p3_disabled_general(benchmark, worlds):
    general_off, _ = worlds
    benchmark(general_off.total)


@pytest.mark.benchmark(group="P3-obs-overhead")
def bench_p3_enabled_general(benchmark, worlds):
    _, general_on = worlds
    benchmark(general_on.total)


@pytest.mark.bench_smoke
def bench_p3_shape_and_record(record):
    results = run(rounds=2000, warmup=500)
    record("P3", f"disabled general: {results['disabled_general_wall_us']:8.2f} wall-us/call (best)")
    record("P3", f"enabled general:  {results['enabled_general_wall_us']:8.2f} wall-us/call (best)")
    record("P3", f"enabled overhead: {results['enabled_wall_overhead_pct']:+.1f}%")
    if "disabled_vs_baseline_pct" in results:
        record("P3", f"disabled vs BENCH_P1: {results['disabled_vs_baseline_pct']:+.1f}%")
