"""E2 — Section 9.3: the object-transmission overhead of subcontract.

"Transmitting an object requires an extra pair of calls for marshalling
and unmarshalling and typically also involves the cost of marshalling and
unmarshalling a subcontract ID."

Rows regenerated:

    raw door-identifier transmission   (no subcontract, no ID)
    subcontract object transmission    (marshal + ID + unmarshal)

Shape: the subcontract form adds a small constant (the ID bytes and the
marshal/unmarshal call pair) on top of the kernel-mediated door move that
both forms pay.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CounterImpl, sim_us
from repro.core.registry import SubcontractRegistry
from repro.kernel.nucleus import Kernel
from repro.marshal.buffer import MarshalBuffer
from repro.subcontracts import standard_subcontracts
from repro.subcontracts.singleton import SingletonServer


@pytest.fixture
def world(counter_module):
    kernel = Kernel()
    server = kernel.create_domain("server")
    client = kernel.create_domain("client")
    for domain in (server, client):
        SubcontractRegistry(domain).register_many(standard_subcontracts())
    binding = counter_module.binding("counter")
    subcontract_server = SingletonServer(server)
    return kernel, server, client, subcontract_server, binding


def _raw_transmit(kernel, server, client):
    """Move a bare door identifier: what transmission costs without any
    subcontract involvement."""
    ident = kernel.create_door(server, lambda request: MarshalBuffer(kernel))
    buffer = MarshalBuffer(kernel)
    buffer.put_door_id(server, ident)
    buffer.seal_for_transmission(server)
    received = buffer.get_door_id(client)
    kernel.delete_door_id(client, received)


def _subcontract_transmit(kernel, server, client, subcontract_server, binding):
    """Move a full Spring object: marshal (with subcontract ID), then
    unmarshal into a fabricated object."""
    obj = subcontract_server.export(CounterImpl(), binding)
    buffer = MarshalBuffer(kernel)
    obj._subcontract.marshal(obj, buffer)
    buffer.seal_for_transmission(server)
    received = binding.unmarshal_from(buffer, client)
    received.spring_consume()


@pytest.mark.benchmark(group="E2-transmission")
def bench_raw_door_move(benchmark, world):
    kernel, server, client, _, _ = world
    benchmark(_raw_transmit, kernel, server, client)


@pytest.mark.benchmark(group="E2-transmission")
def bench_subcontract_object_move(benchmark, world):
    kernel, server, client, subcontract_server, binding = world
    benchmark(
        _subcontract_transmit, kernel, server, client, subcontract_server, binding
    )


@pytest.mark.benchmark(group="E2-transmission")
def bench_e2_shape_and_record(benchmark, world, record):
    kernel, server, client, subcontract_server, binding = world
    benchmark(_raw_transmit, kernel, server, client)

    raw = min(
        sim_us(kernel, lambda: _raw_transmit(kernel, server, client))
        for _ in range(5)
    )
    full = min(
        sim_us(
            kernel,
            lambda: _subcontract_transmit(
                kernel, server, client, subcontract_server, binding
            ),
        )
        for _ in range(5)
    )
    added = full - raw
    record("E2", f"raw door move:              {raw:8.2f} sim-us")
    record("E2", f"subcontract object move:    {full:8.2f} sim-us")
    record("E2", f"subcontract adds:           {added:8.2f} sim-us per transmission")

    # Shape: a small positive constant — the subcontract ID bytes plus
    # the marshal/unmarshal pair — not a multiple of the base cost.
    assert added > 0
    assert added < raw  # well under doubling the cost of a transmission
