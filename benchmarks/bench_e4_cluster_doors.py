"""E4 — Section 8.1: the cluster subcontract's resource economics.

"Some servers export large numbers of objects where if a client is
granted access to any of the objects, it might as well be granted access
to all of them.  In this case a subcontract can reduce system overhead by
using a single door to provide access to a set of objects."

Series regenerated: kernel doors consumed when exporting N objects,
N in {16, 64, 256, 1024}, singleton vs cluster; plus invocation latency
parity (the tag costs a few bytes, not a door traversal).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CounterImpl, ship, sim_us
from repro.core.registry import SubcontractRegistry
from repro.kernel.nucleus import Kernel
from repro.subcontracts import standard_subcontracts
from repro.subcontracts.cluster import ClusterServer
from repro.subcontracts.singleton import SingletonServer

SWEEP = (16, 64, 256, 1024)


def _world(counter_module):
    kernel = Kernel()
    server = kernel.create_domain("server")
    client = kernel.create_domain("client")
    for domain in (server, client):
        SubcontractRegistry(domain).register_many(standard_subcontracts())
    return kernel, server, client, counter_module.binding("counter")


@pytest.mark.benchmark(group="E4-export")
@pytest.mark.parametrize("n", SWEEP)
def bench_export_singleton(benchmark, counter_module, n):
    def run():
        kernel, server, _, binding = _world(counter_module)
        subcontract_server = SingletonServer(server)
        for _ in range(n):
            subcontract_server.export(CounterImpl(), binding)
        return kernel.live_door_count()

    doors = benchmark(run)
    assert doors == n


@pytest.mark.benchmark(group="E4-export")
@pytest.mark.parametrize("n", SWEEP)
def bench_export_cluster(benchmark, counter_module, n):
    def run():
        kernel, server, _, binding = _world(counter_module)
        cluster = ClusterServer(server)
        for _ in range(n):
            cluster.export(CounterImpl(), binding)
        return kernel.live_door_count()

    doors = benchmark(run)
    assert doors == 1


@pytest.mark.benchmark(group="E4-invoke")
def bench_invoke_singleton(benchmark, counter_module):
    kernel, server, client, binding = _world(counter_module)
    obj = ship(
        kernel,
        server,
        client,
        SingletonServer(server).export(CounterImpl(), binding),
        binding,
    )
    benchmark(obj.total)


@pytest.mark.benchmark(group="E4-invoke")
def bench_invoke_cluster(benchmark, counter_module):
    kernel, server, client, binding = _world(counter_module)
    obj = ship(
        kernel,
        server,
        client,
        ClusterServer(server).export(CounterImpl(), binding),
        binding,
    )
    benchmark(obj.total)


@pytest.mark.benchmark(group="E4-invoke")
def bench_e4_shape_and_record(benchmark, counter_module, record):
    kernel, server, client, binding = _world(counter_module)
    cluster = ClusterServer(server)
    singleton = SingletonServer(server)

    for n in SWEEP:
        k1, s1, _, b1 = _world(counter_module)
        sub = SingletonServer(s1)
        before = k1.live_door_count()
        for _ in range(n):
            sub.export(CounterImpl(), b1)
        singleton_doors = k1.live_door_count() - before

        k2, s2, _, b2 = _world(counter_module)
        clu = ClusterServer(s2)
        before = k2.live_door_count()
        for _ in range(n):
            clu.export(CounterImpl(), b2)
        cluster_doors = k2.live_door_count() - before

        record(
            "E4",
            f"N={n:5d}: singleton doors={singleton_doors:5d}  "
            f"cluster doors={cluster_doors}",
        )
        assert singleton_doors == n  # O(N)
        assert cluster_doors == 1  # O(1)

    # Invocation latency parity: the tag adds bytes, not door hops.
    singleton_obj = ship(
        kernel, server, client, singleton.export(CounterImpl(), binding), binding
    )
    cluster_obj = ship(
        kernel, server, client, cluster.export(CounterImpl(), binding), binding
    )
    benchmark(cluster_obj.total)
    s = min(sim_us(kernel, singleton_obj.total) for _ in range(5))
    c = min(sim_us(kernel, cluster_obj.total) for _ in range(5))
    record("E4", f"invoke latency: singleton {s:.2f} sim-us, cluster {c:.2f} sim-us")
    assert abs(c - s) < 0.05 * s
