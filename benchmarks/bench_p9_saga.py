"""P9 — exactly-once bench (saga coordinator + idempotency-key dedup).

Two questions, in the P3–P8 style:

1. **What does the uninstalled exactly-once plane cost the hot path?**
   Nothing measurable: with no ``idempotency_key`` context live anywhere
   in the process, ``door_call``'s stamp gate is one plain attribute
   read (``kernel._idem_depth``) + one branch, and delivery's key-
   hygiene gate is one ``__slots__`` read (``buffer.idem_key``) + one
   branch.  The PR gates are the usual pair — the general-stub simulated
   time stays *bit-for-bit* the pre-P9 figure (asserted on every run
   against :data:`PRE_P9_GENERAL_SIM_US`), and the PR-time interleaved
   A/B against a worktree at the pre-P9 commit stays inside the 2% wall
   gate (committed in :data:`PR_AB_VS_PRE_P9`).

2. **What does a saga cost, and what does chaos add?**  The saga leg
   runs a fixed transfer workload (debit one durable bank, credit
   another, both journalled through stable storage) at 0% / 1% / 5%
   crash-mid-call rates with a periodic repair action reviving dead
   banks.  Per leg it records simulated us/transfer, journal commits,
   and commit/abort outcomes — and asserts the whole leg is
   deterministic by running it twice from the same seed and requiring
   identical results, including the sim-time figure to the bit.  Money
   conservation (no lost updates, no doubled updates) is asserted at
   every rate.  A dedup micro-leg records the raw memo lookup/record
   cost so the keyed path's constituents are visible in the artifact.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.bench_p1_hotpath import best_of, build_world
from benchmarks.conftest import sim_us

#: exactly-once-uninstalled wall-us/call may regress at most this
#: fraction versus the pre-P9 tree measured in the same session
UNINSTALLED_OVERHEAD_GATE = 0.02

#: general-stub sim-us/call recorded by the PRE-P9 tree (the same figure
#: P3–P8 pinned: every uninstalled plane, now including the idempotency
#: stamp gate and the delivery key-hygiene gate, charges nothing).
PRE_P9_GENERAL_SIM_US = 111.61000000010245

#: the PR-time wall gate record: ten alternating best-of-6000 rounds of
#: the P1 general-stub probe on this tree versus a worktree at the
#: pre-P9 commit (f59c6d5), same machine, same session.  Floor-to-floor
#: across the alternating rounds (the P3–P8 statistic): best-of 10.77
#: instrumented vs 10.68 pre-P9 = +0.8%, inside the 2% gate.
PR_AB_VS_PRE_P9 = {
    "pre_p9_commit": "f59c6d5",
    "rounds_per_sample": 6000,
    "pre_p9_general_wall_us": [
        10.95, 10.68, 10.90, 10.91, 11.63, 10.68, 10.82, 10.81, 10.93, 10.81,
    ],
    "instrumented_general_wall_us": [
        10.90, 11.02, 11.08, 10.94, 10.81, 10.87, 10.77, 11.10, 11.06, 10.83,
    ],
    "best_of_overhead_pct": round(100.0 * (10.77 - 10.68) / 10.68, 1),
    "gate_pct": 100.0 * UNINSTALLED_OVERHEAD_GATE,
    "gate": "pass",
}

#: transfers per saga leg and the per-transfer amount
SAGA_TRANSFERS = 40
SAGA_AMOUNT = 10
SAGA_SEED_BALANCE = 10_000
#: crash-mid-call rates the saga leg sweeps
SAGA_CRASH_RATES = (0.0, 0.01, 0.05)
#: repair cadence for crashed banks (simulated us)
REPAIR_PERIOD_US = 150_000.0


def dedup_micro(entries: int = 10_000) -> dict:
    """Raw memo cost: ns per miss-lookup, record, and hit-lookup."""
    from repro.runtime.env import Environment
    from repro.runtime.idem import DedupMemo

    env = Environment()
    domain = env.create_domain("m", "bench")
    memo = DedupMemo(entries=entries)
    reply = domain.acquire_buffer()
    reply.data.extend(b"x" * 64)

    start = time.perf_counter()
    for key in range(entries):
        memo.lookup(key)
    miss_ns = 1e9 * (time.perf_counter() - start) / entries

    start = time.perf_counter()
    for key in range(entries):
        memo.record(key, reply)
    record_ns = 1e9 * (time.perf_counter() - start) / entries

    start = time.perf_counter()
    for key in range(entries):
        memo.lookup(key)
    hit_ns = 1e9 * (time.perf_counter() - start) / entries
    reply.release()
    return {
        "entries": entries,
        "miss_lookup_ns": round(miss_ns, 1),
        "record_ns": round(record_ns, 1),
        "hit_lookup_ns": round(hit_ns, 1),
    }


def saga_leg(crash_rate: float, seed: int = 11) -> dict:
    """One deterministic saga workload at a crash-mid-call rate.

    Builds a fresh two-bank world, runs :data:`SAGA_TRANSFERS` transfer
    sagas, recovers any saga whose own compensation was interrupted,
    and asserts money conservation before reporting.
    """
    from repro.kernel.errors import CommunicationError
    from repro.runtime.env import Environment
    from repro.runtime.saga import SagaAborted, SagaCoordinator
    from repro.services.stable import DurableKVService

    env = Environment(seed=seed)
    bank_a = DurableKVService(env, "bank-a", "/services/acct-a")
    bank_b = DurableKVService(env, "bank-b", "/services/acct-b")
    teller = env.create_domain("clients", "teller")
    acct_a = bank_a.client_for(teller)
    acct_b = bank_b.client_for(teller)
    acct_a.put("balance", str(SAGA_SEED_BALANCE))
    acct_b.put("balance", str(SAGA_SEED_BALANCE))
    coord = SagaCoordinator(teller, name="bench")

    if crash_rate:
        env.name_service.domain.locals["chaos_immune"] = True
        plane = env.install_chaos(seed=seed)
        plane.crash_mid_call_rate = crash_rate
        banks = (bank_a, bank_b)

        def repair() -> None:
            plane.schedule(
                env.clock.now_us + REPAIR_PERIOD_US, repair, "repair-banks"
            )
            for bank in banks:
                if bank.domain is None or not bank.domain.alive:
                    try:
                        bank.restart()
                    except CommunicationError:
                        bank.crash()

        plane.schedule(
            env.clock.now_us + REPAIR_PERIOD_US, repair, "repair-banks"
        )

    journal_commits_before = coord.store.commits
    sim_before = env.clock.now_us
    committed = aborted = 0
    for i in range(SAGA_TRANSFERS):
        try:
            with coord.begin(f"transfer-{i}") as saga:
                saga.run(
                    "debit-a",
                    lambda: acct_a.adjust("balance", -SAGA_AMOUNT),
                    compensation=lambda token: acct_a.adjust(
                        "balance", int(token)
                    ),
                    comp_token=str(SAGA_AMOUNT),
                )
                saga.run(
                    "credit-b",
                    lambda: acct_b.adjust("balance", SAGA_AMOUNT),
                    compensation=lambda token: acct_b.adjust(
                        "balance", -int(token)
                    ),
                    comp_token=str(SAGA_AMOUNT),
                )
        except SagaAborted:
            aborted += 1
        else:
            committed += 1

    # Finish any saga whose compensation was itself interrupted: a
    # replacement coordinator works purely from the journal.
    replacement = SagaCoordinator(
        env.create_domain("clients", "teller-recovery"),
        name="bench",
        store=coord.store,
    )
    compensators = {
        "debit-a": lambda token: acct_a.adjust("balance", int(token)),
        "credit-b": lambda token: acct_b.adjust("balance", -int(token)),
    }
    journal = coord.journal_snapshot()
    for _ in range(4):
        sids = {key.partition(".")[0] for key in journal}
        if all(f"{sid}.end" in journal for sid in sids):
            break
        replacement.recover(compensators)
        journal = coord.journal_snapshot()

    sim_total = env.clock.now_us - sim_before

    # Money conservation: exactly-once at every rate, with attribution.
    ended = sum(
        1
        for key, value in journal.items()
        if key.endswith(".end") and value == "committed"
    )
    a = int(bank_a.store._records["/services/acct-a"]["balance"])
    b = int(bank_b.store._records["/services/acct-b"]["balance"])
    assert a + b == 2 * SAGA_SEED_BALANCE, f"money not conserved: {a} + {b}"
    assert a == SAGA_SEED_BALANCE - SAGA_AMOUNT * ended
    assert b == SAGA_SEED_BALANCE + SAGA_AMOUNT * ended
    assert committed == ended

    return {
        "crash_rate": crash_rate,
        "transfers": SAGA_TRANSFERS,
        "committed": committed,
        "aborted": aborted,
        "sim_us_per_transfer": sim_total / SAGA_TRANSFERS,
        "journal_commits": coord.store.commits - journal_commits_before,
    }


def run(rounds: int = 20000, warmup: int = 2000) -> dict:
    """Run the P9 exactly-once bench; returns the measurement dict."""
    # Uninstalled leg: no key context anywhere — the default posture of
    # every kernel in the tree.
    kernel_off, _, general_off, _ = build_world()
    for _ in range(warmup):
        general_off.total()
    sim_off = min(sim_us(kernel_off, general_off.total) for _ in range(5))
    wall_off = round(best_of(general_off.total, rounds), 2)

    # Saga legs: deterministic, asserted by replaying each leg.
    legs = []
    for rate in SAGA_CRASH_RATES:
        leg = saga_leg(rate)
        again = saga_leg(rate)
        assert leg == again, (
            f"saga leg at crash rate {rate} nondeterministic:\n"
            f"{leg}\n{again}"
        )
        legs.append(
            {**leg, "sim_us_per_transfer": round(leg["sim_us_per_transfer"], 2)}
        )

    results = {
        "rounds": rounds,
        "uninstalled_general_wall_us": wall_off,
        "uninstalled_general_sim_us": sim_off,
        "dedup_micro": dedup_micro(),
        "saga_legs": legs,
    }

    # -- deterministic invariants (machine-independent) -----------------

    # Uninstalled mode charges not one simulated nanosecond: sim time
    # matches the recorded pre-P9 tree bit-for-bit.
    assert abs(sim_off - PRE_P9_GENERAL_SIM_US) < 1e-6, (
        f"exactly-once-uninstalled sim time drifted: {sim_off} != pre-P9 "
        f"record {PRE_P9_GENERAL_SIM_US}"
    )
    # Chaos must make the workload strictly more expensive per transfer
    # (retries, journal replays, repair scans) — and the quiet leg must
    # commit everything.
    assert legs[0]["committed"] == SAGA_TRANSFERS
    assert legs[0]["aborted"] == 0
    for quiet, faulted in zip(legs, legs[1:]):
        assert faulted["sim_us_per_transfer"] > quiet["sim_us_per_transfer"]
    return results


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


@pytest.mark.benchmark(group="P9-saga")
def bench_p9_uninstalled_general(benchmark):
    _, _, general_off, _ = build_world()
    benchmark(general_off.total)


@pytest.mark.bench_smoke
def bench_p9_shape_and_record(record):
    results = run(rounds=2000, warmup=500)
    record("P9", f"uninstalled general: {results['uninstalled_general_wall_us']:8.2f} wall-us/call (best; sim bit-for-bit pre-P9)")
    micro = results["dedup_micro"]
    record("P9", f"dedup memo: {micro['miss_lookup_ns']:.0f} ns miss, {micro['record_ns']:.0f} ns record, {micro['hit_lookup_ns']:.0f} ns hit at {micro['entries']} entries")
    for leg in results["saga_legs"]:
        record(
            "P9",
            f"saga @ {leg['crash_rate']:4.0%} crash: "
            f"{leg['sim_us_per_transfer']:9.2f} sim-us/transfer, "
            f"{leg['committed']}/{leg['transfers']} committed, "
            f"{leg['journal_commits']} journal commits (deterministic, asserted)",
        )
